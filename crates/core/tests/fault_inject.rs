//! Serving-side fault-injection matrix (requires the `fault-inject`
//! feature): a deterministically poisoned decoder trajectory must degrade
//! to the CurRank baseline — flagged and counted, all outputs finite, every
//! healthy trajectory bit-identical to a fault-free run. Zero panics.
#![cfg(feature = "fault-inject")]

use ranknet_core::features::extract_sequences;
use ranknet_core::{DecodeBackend, ForecastEngine, RankNet, RankNetConfig, RankNetVariant};
use rpf_nn::fault::{self, FaultPlan};
use rpf_racesim::{simulate_race, Event, EventConfig};
use std::sync::Mutex;

// The fault plan is process-global: tests installing plans serialize here.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    match TEST_LOCK.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

const ORIGIN: usize = 60;
const HORIZON: usize = 3;
const N_SAMPLES: usize = 4;

#[test]
fn poisoned_decoder_trajectory_degrades_to_cur_rank() {
    let _g = locked();
    let ctx = extract_sequences(&simulate_race(
        &EventConfig::for_race(Event::Indy500, 2016),
        11,
    ));
    let mut cfg = RankNetConfig::tiny();
    cfg.max_epochs = 1;
    let (model, _) = RankNet::fit(
        vec![ctx.clone()],
        vec![ctx.clone()],
        cfg,
        RankNetVariant::Oracle,
        40,
    );

    // Fault-free baseline with the same seed.
    fault::clear();
    let engine = ForecastEngine::new(&model, 7);
    let healthy = engine
        .try_forecast(&ctx, ORIGIN, HORIZON, N_SAMPLES)
        .expect("baseline forecast");
    assert!(!healthy.degraded, "baseline must be healthy");

    // Poison global trajectory row 1: active-car slot 0, sample 1.
    fault::install(FaultPlan::new().poison_decoder_row(1));
    let engine = ForecastEngine::new(&model, 7);
    let faulty = engine.try_forecast(&ctx, ORIGIN, HORIZON, N_SAMPLES);
    fault::clear();
    let faulty = faulty.expect("a poisoned trajectory must still be served");

    assert!(faulty.degraded, "the fault must be flagged");
    assert_eq!(faulty.degraded_trajectories, 1, "exactly one row poisoned");
    assert_eq!(engine.timings().degraded_trajectories, 1);

    // Every served value is finite even though the decoder emitted NaN.
    let mut diffs = Vec::new();
    for (car, (h, f)) in healthy.samples.iter().zip(&faulty.samples).enumerate() {
        assert_eq!(h.len(), f.len());
        for (sample, (hp, fp)) in h.iter().zip(f).enumerate() {
            assert!(fp.iter().all(|v| v.is_finite()), "non-finite output");
            if hp != fp {
                diffs.push((car, sample, fp.clone()));
            }
        }
    }

    // Exactly one trajectory changed, and it is the CurRank fallback:
    // the car's last observed rank, repeated across the horizon.
    assert_eq!(diffs.len(), 1, "only the poisoned row may change");
    let (car, sample, path) = &diffs[0];
    assert_eq!(*sample, 1, "row 1 is sample 1 of the first active car");
    let cur = ctx.sequences[*car].rank[ORIGIN - 1];
    assert_eq!(path, &vec![cur; HORIZON]);
}

/// Backend-mismatch regression gate under the fault matrix: with the same
/// poisoned row, the batched and reference backends must degrade the
/// *same* trajectory to the identical CurRank fallback, and every healthy
/// trajectory must agree within the pinned decode tolerance. A kernel
/// change that drives the backends apart — or shifts which row a fault key
/// hits — fails here loudly.
#[test]
fn batched_and_reference_backends_agree_under_faults() {
    let _g = locked();
    let ctx = extract_sequences(&simulate_race(
        &EventConfig::for_race(Event::Indy500, 2016),
        13,
    ));
    let mut cfg = RankNetConfig::tiny();
    cfg.max_epochs = 1;
    let (model, _) = RankNet::fit(
        vec![ctx.clone()],
        vec![ctx.clone()],
        cfg,
        RankNetVariant::Oracle,
        40,
    );

    // Same decode-tolerance bound the decode_parity suite pins.
    const RANK_TOL: f32 = 0.05;

    fault::install(FaultPlan::new().poison_decoder_row(1));
    let reference = ForecastEngine::new(&model, 7).with_backend(DecodeBackend::PerRow);
    let f_ref = reference.try_forecast(&ctx, ORIGIN, HORIZON, N_SAMPLES);
    let batched = ForecastEngine::new(&model, 7).with_backend(DecodeBackend::Batched);
    let f_bat = batched.try_forecast(&ctx, ORIGIN, HORIZON, N_SAMPLES);
    fault::clear();
    let f_ref = f_ref.expect("reference backend must serve through the fault");
    let f_bat = f_bat.expect("batched backend must serve through the fault");

    assert!(f_ref.degraded && f_bat.degraded);
    assert_eq!(f_ref.degraded_trajectories, 1);
    assert_eq!(
        f_bat.degraded_trajectories, 1,
        "the fault key must hit the same single row in the batched layout"
    );

    let mut worst = 0.0f32;
    for (h, f) in f_ref.samples.iter().zip(&f_bat.samples) {
        assert_eq!(h.len(), f.len());
        for (hp, fp) in h.iter().zip(f) {
            for (x, y) in hp.iter().zip(fp) {
                assert!(x.is_finite() && y.is_finite());
                worst = worst.max((x - y).abs());
            }
        }
    }
    assert!(
        worst <= RANK_TOL,
        "backends diverged by {worst} rank units under faults (bound {RANK_TOL})"
    );

    // The degraded row itself is the deterministic CurRank fallback, so the
    // two backends serve it bit-identically.
    let cur = ctx.sequences[0].rank[ORIGIN - 1];
    assert_eq!(f_ref.samples[0][1], vec![cur; HORIZON]);
    assert_eq!(f_bat.samples[0][1], vec![cur; HORIZON]);
}
