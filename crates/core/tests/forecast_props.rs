//! Property tests over the forecast post-processing layer: sorting samples
//! into rank positions must always yield permutations, and empirical
//! forecast quantiles must be monotone in the probability level.

use proptest::prelude::*;
use ranknet_core::metrics::quantile;
use ranknet_core::rank_model::ForecastSamples;
use ranknet_core::ranknet::ranks_by_sorting;

/// A full-field sample set: `n_cars` cars, each with `n_samples` paths of
/// `n_steps` bounded rank-like values.
fn samples_strategy() -> impl Strategy<Value = ForecastSamples> {
    (2usize..8, 1usize..5, 1usize..4).prop_flat_map(|(n_cars, n_samples, n_steps)| {
        prop::collection::vec(
            prop::collection::vec(
                prop::collection::vec(-5.0f32..40.0, n_steps..n_steps + 1),
                n_samples..n_samples + 1,
            ),
            n_cars..n_cars + 1,
        )
        .prop_map(|rows| rows as ForecastSamples)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// §III-C: "the final rank positions of the cars are calculated by
    /// sorting the sampled outputs" — for every sample index, the assigned
    /// positions must be exactly the permutation `1..=n_cars`.
    #[test]
    fn ranks_by_sorting_yields_permutations(samples in samples_strategy(), step in 0usize..4) {
        let n_cars = samples.len();
        let n_samples = samples[0].len();
        let step = step % samples[0][0].len();
        let ranked = ranks_by_sorting(&samples, step);
        prop_assert_eq!(ranked.len(), n_cars);
        for s in 0..n_samples {
            let mut positions: Vec<f32> = ranked.iter().map(|car| car[s]).collect();
            positions.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let expect: Vec<f32> = (1..=n_cars).map(|r| r as f32).collect();
            prop_assert_eq!(
                &positions, &expect,
                "sample {} must be a permutation of 1..={}", s, n_cars
            );
        }
    }

    /// Retired cars (empty sample lists) are skipped: the remaining cars
    /// still get a dense permutation of `1..=active`.
    #[test]
    fn ranks_by_sorting_skips_retired_cars(
        samples in samples_strategy(),
        retire in prop::collection::vec((0u8..2).prop_map(|v| v == 1), 8),
    ) {
        let mut samples = samples;
        for (c, car) in samples.iter_mut().enumerate() {
            if retire[c % retire.len()] {
                car.clear();
            }
        }
        let active = samples.iter().filter(|s| !s.is_empty()).count();
        let ranked = ranks_by_sorting(&samples, 0);
        for (c, car) in samples.iter().enumerate() {
            prop_assert_eq!(ranked[c].is_empty(), car.is_empty());
            for &r in &ranked[c] {
                prop_assert!(r >= 1.0 && r <= active as f32);
            }
        }
    }

    /// Forecast quantiles must be monotone: p10 ≤ p50 ≤ p90 on any
    /// non-empty per-car sample vector (and any ordered level pair).
    #[test]
    fn forecast_quantiles_are_monotone(
        vals in prop::collection::vec(-10.0f32..50.0, 1..40),
        lo in 0.0f64..1.0,
        hi in 0.0f64..1.0,
    ) {
        let p10 = quantile(&vals, 0.1);
        let p50 = quantile(&vals, 0.5);
        let p90 = quantile(&vals, 0.9);
        prop_assert!(p10 <= p50 && p50 <= p90, "p10 {} p50 {} p90 {}", p10, p50, p90);
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        prop_assert!(quantile(&vals, lo as f32) <= quantile(&vals, hi as f32));
    }
}
