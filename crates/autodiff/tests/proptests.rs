//! Property-based gradient checks on randomly composed graphs — the
//! backstop that catches wrong backward rules that a fixed test might miss.

use proptest::prelude::*;
use rpf_autodiff::{gradcheck, Tape, Var};
use rpf_tensor::Matrix;

/// A small op language for random graph generation. Every op maps a single
/// matrix to a same-shaped matrix, so chains compose freely.
#[derive(Clone, Copy, Debug)]
enum UnaryOp {
    Sigmoid,
    Tanh,
    Softplus,
    Square,
    Scale(i8),
    AddScalar(i8),
    Neg,
}

fn apply(op: UnaryOp, t: &Tape, x: Var) -> Var {
    match op {
        UnaryOp::Sigmoid => t.sigmoid(x),
        UnaryOp::Tanh => t.tanh(x),
        UnaryOp::Softplus => t.softplus(x),
        UnaryOp::Square => t.square(x),
        UnaryOp::Scale(s) => t.scale(x, s as f32 / 4.0),
        UnaryOp::AddScalar(s) => t.add_scalar(x, s as f32 / 4.0),
        UnaryOp::Neg => t.neg(x),
    }
}

fn unary_op() -> impl Strategy<Value = UnaryOp> {
    prop_oneof![
        Just(UnaryOp::Sigmoid),
        Just(UnaryOp::Tanh),
        Just(UnaryOp::Softplus),
        Just(UnaryOp::Square),
        (-6i8..6).prop_map(UnaryOp::Scale),
        (-6i8..6).prop_map(UnaryOp::AddScalar),
        Just(UnaryOp::Neg),
    ]
}

fn small_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
        prop::collection::vec(-1.5f32..1.5, r * c).prop_map(move |v| Matrix::from_vec(r, c, v))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_unary_chains_gradcheck(x in small_matrix(), ops in prop::collection::vec(unary_op(), 1..6)) {
        let err = gradcheck(&x, 1e-2, |t, x| {
            let mut h = x;
            for &op in &ops {
                h = apply(op, t, h);
            }
            t.sum(h)
        });
        prop_assert!(err < 5e-2, "ops {ops:?}: err {err}");
    }

    #[test]
    fn random_diamond_graphs_gradcheck(
        x in small_matrix(),
        op_a in unary_op(),
        op_b in unary_op(),
    ) {
        // Diamond: x feeds two branches that merge — exercises gradient
        // accumulation at the shared input.
        let err = gradcheck(&x, 1e-2, |t, x| {
            let a = apply(op_a, t, x);
            let b = apply(op_b, t, x);
            t.sum(t.mul(a, b))
        });
        prop_assert!(err < 5e-2, "{op_a:?}*{op_b:?}: err {err}");
    }

    #[test]
    fn matmul_sandwich_gradcheck(
        rows in 1usize..4,
        inner in 1usize..4,
        cols in 1usize..4,
        seed in 0u64..100,
        op in unary_op(),
    ) {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        };
        let x = Matrix::from_fn(rows, inner, |_, _| next());
        let w = Matrix::from_fn(inner, cols, |_, _| next());
        let err = gradcheck(&x, 1e-2, |t, x| {
            let w = t.leaf(w.clone());
            let y = t.matmul(x, w);
            let z = apply(op, t, y);
            t.sum(z)
        });
        prop_assert!(err < 5e-2, "matmul+{op:?}: err {err}");
    }

    #[test]
    fn value_of_sum_matches_manual(x in small_matrix()) {
        let t = Tape::new();
        let v = t.leaf(x.clone());
        let s = t.sum(v);
        let manual: f32 = x.as_slice().iter().sum();
        prop_assert!((t.scalar(s) - manual).abs() < 1e-4 * (1.0 + manual.abs()));
    }

    #[test]
    fn gradient_of_linear_fn_is_input_independent(x in small_matrix()) {
        // d(sum(3x + 1))/dx = 3 everywhere regardless of x.
        let t = Tape::new();
        let v = t.leaf(x.clone());
        let y = t.add_scalar(t.scale(v, 3.0), 1.0);
        let loss = t.sum(y);
        let grads = t.backward(loss);
        let g = grads.get(v).unwrap();
        prop_assert!(g.as_slice().iter().all(|&gv| (gv - 3.0).abs() < 1e-6));
    }
}
