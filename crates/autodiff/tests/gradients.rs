//! Gradient correctness for every op on the tape, checked against central
//! finite differences.

use rpf_autodiff::{gradcheck, Tape};
use rpf_tensor::Matrix;

fn pseudo_random(rows: usize, cols: usize, seed: u64, lo: f32, hi: f32) -> Matrix {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(12345);
    Matrix::from_fn(rows, cols, |_, _| {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        lo + (hi - lo) * ((s >> 40) as f32 / (1u64 << 24) as f32)
    })
}

const TOL: f32 = 2e-2; // f32 central differences are noisy; this is ample to catch wrong rules

#[test]
fn grad_matmul_lhs() {
    let x = pseudo_random(3, 4, 1, -1.0, 1.0);
    let w = pseudo_random(4, 5, 2, -1.0, 1.0);
    let err = gradcheck(&x, 1e-2, |t, x| {
        let w = t.leaf(w.clone());
        let y = t.matmul(x, w);
        t.sum(t.mul(y, y))
    });
    assert!(err < TOL, "{err}");
}

#[test]
fn grad_matmul_rhs() {
    let w = pseudo_random(4, 5, 3, -1.0, 1.0);
    let x = pseudo_random(3, 4, 4, -1.0, 1.0);
    let err = gradcheck(&w, 1e-2, |t, w| {
        let x = t.leaf(x.clone());
        let y = t.matmul(x, w);
        t.sum(t.mul(y, y))
    });
    assert!(err < TOL, "{err}");
}

#[test]
fn grad_add_sub_mul() {
    let x = pseudo_random(2, 3, 5, -1.0, 1.0);
    let other = pseudo_random(2, 3, 6, -1.0, 1.0);
    let err = gradcheck(&x, 1e-2, |t, x| {
        let o = t.leaf(other.clone());
        let a = t.add(x, o);
        let b = t.sub(a, x);
        let c = t.mul(b, x);
        t.sum(c)
    });
    assert!(err < TOL, "{err}");
}

#[test]
fn grad_div() {
    let x = pseudo_random(2, 3, 7, 0.5, 2.0);
    let denom = pseudo_random(2, 3, 8, 1.0, 3.0);
    let err = gradcheck(&x, 1e-3, |t, x| {
        let d = t.leaf(denom.clone());
        t.sum(t.div(x, d))
    });
    assert!(err < TOL, "{err}");
    // also as the denominator
    let err = gradcheck(&denom, 1e-3, |t, d| {
        let x = t.leaf(x.clone());
        t.sum(t.div(x, d))
    });
    assert!(err < TOL, "{err}");
}

#[test]
fn grad_add_row_bias() {
    let bias = pseudo_random(1, 4, 9, -1.0, 1.0);
    let x = pseudo_random(5, 4, 10, -1.0, 1.0);
    let err = gradcheck(&bias, 1e-2, |t, b| {
        let x = t.leaf(x.clone());
        let y = t.add_row(x, b);
        t.sum(t.mul(y, y))
    });
    assert!(err < TOL, "{err}");
}

#[test]
fn grad_activations() {
    let x = pseudo_random(3, 3, 11, -2.0, 2.0);
    for (name, f) in [
        (
            "sigmoid",
            (&|t: &Tape, x| t.sigmoid(x)) as &dyn Fn(&Tape, rpf_autodiff::Var) -> rpf_autodiff::Var,
        ),
        ("tanh", &|t, x| t.tanh(x)),
        ("softplus", &|t, x| t.softplus(x)),
        ("exp", &|t, x| t.exp(x)),
        ("square", &|t, x| t.square(x)),
    ] {
        let err = gradcheck(&x, 1e-2, |t, x| {
            let y = f(t, x);
            t.sum(y)
        });
        assert!(err < TOL, "{name}: {err}");
    }
}

#[test]
fn grad_relu_away_from_kink() {
    // Keep inputs away from 0 where ReLU is not differentiable.
    let mut x = pseudo_random(3, 3, 12, -2.0, 2.0);
    for v in x.as_mut_slice() {
        if v.abs() < 0.3 {
            *v += 0.5_f32.copysign(*v + 1e-6);
        }
    }
    let err = gradcheck(&x, 1e-3, |t, x| t.sum(t.relu(x)));
    assert!(err < TOL, "{err}");
}

#[test]
fn grad_log_sqrt_positive_domain() {
    let x = pseudo_random(3, 3, 13, 0.5, 3.0);
    let err = gradcheck(&x, 1e-3, |t, x| t.sum(t.log(x)));
    assert!(err < TOL, "log: {err}");
    let err = gradcheck(&x, 1e-3, |t, x| t.sum(t.sqrt(x)));
    assert!(err < TOL, "sqrt: {err}");
}

#[test]
fn grad_transpose_and_softmax() {
    let x = pseudo_random(3, 4, 14, -1.0, 1.0);
    let err = gradcheck(&x, 1e-2, |t, x| {
        let y = t.transpose(x);
        t.sum(t.mul(y, y))
    });
    assert!(err < TOL, "transpose: {err}");

    let w = pseudo_random(3, 4, 140, -1.0, 1.0);
    let err = gradcheck(&x, 1e-2, |t, x| {
        let s = t.softmax_rows(x);
        let w = t.leaf(w.clone());
        t.sum(t.mul(s, w))
    });
    assert!(err < TOL, "softmax: {err}");
}

#[test]
fn grad_hstack_and_slices() {
    let x = pseudo_random(3, 4, 15, -1.0, 1.0);
    let other = pseudo_random(3, 2, 16, -1.0, 1.0);
    let err = gradcheck(&x, 1e-2, |t, x| {
        let o = t.leaf(other.clone());
        let h = t.hstack(&[x, o, x]); // x used twice: tests grad accumulation
        let s = t.slice_cols(h, 1, 9);
        t.sum(t.mul(s, s))
    });
    assert!(err < TOL, "{err}");

    let err = gradcheck(&x, 1e-2, |t, x| {
        let s = t.slice_rows(x, 1, 3);
        t.sum(t.mul(s, s))
    });
    assert!(err < TOL, "slice_rows: {err}");
}

#[test]
fn grad_gather_rows_accumulates_repeats() {
    let emb = pseudo_random(5, 3, 17, -1.0, 1.0);
    let err = gradcheck(&emb, 1e-2, |t, e| {
        let g = t.gather_rows(e, &[0, 2, 2, 4]);
        t.sum(t.mul(g, g))
    });
    assert!(err < TOL, "{err}");
}

#[test]
fn grad_mean_and_sum_rows() {
    let x = pseudo_random(4, 3, 18, -1.0, 1.0);
    let err = gradcheck(&x, 1e-2, |t, x| t.mean(t.square(x)));
    assert!(err < TOL, "mean: {err}");

    let w = pseudo_random(1, 3, 19, -1.0, 1.0);
    let err = gradcheck(&x, 1e-2, |t, x| {
        let sr = t.sum_rows(x);
        let w = t.leaf(w.clone());
        t.sum(t.mul(sr, w))
    });
    assert!(err < TOL, "sum_rows: {err}");
}

#[test]
fn grad_gaussian_nll_composition() {
    // The exact loss the RankNet training uses, composed from primitives:
    // L = mean( log(sigma) + (z - mu)^2 / (2 sigma^2) )
    let mu = pseudo_random(6, 1, 20, -1.0, 1.0);
    let z = pseudo_random(6, 1, 21, -1.0, 1.0);
    let raw_sigma = pseudo_random(6, 1, 22, -1.0, 1.0);

    let err = gradcheck(&mu, 1e-2, |t, mu| {
        let z = t.leaf(z.clone());
        let rs = t.leaf(raw_sigma.clone());
        let sigma = t.softplus(rs);
        let diff = t.sub(z, mu);
        let sq = t.square(diff);
        let var2 = t.scale(t.square(sigma), 2.0);
        let term = t.add(t.log(sigma), t.div(sq, var2));
        t.mean(term)
    });
    assert!(err < TOL, "d/dmu: {err}");

    let err = gradcheck(&raw_sigma, 1e-2, |t, rs| {
        let z = t.leaf(z.clone());
        let mu = t.leaf(mu.clone());
        let sigma = t.softplus(rs);
        let diff = t.sub(z, mu);
        let sq = t.square(diff);
        let var2 = t.scale(t.square(sigma), 2.0);
        let term = t.add(t.log(sigma), t.div(sq, var2));
        t.mean(term)
    });
    assert!(err < TOL, "d/draw_sigma: {err}");
}

#[test]
fn grad_lstm_like_cell() {
    // One LSTM-style gate computation end to end, the composite gradient the
    // whole RankModel depends on.
    let x = pseudo_random(2, 3, 23, -1.0, 1.0);
    let wf = pseudo_random(3, 4, 24, -0.5, 0.5);
    let wi = pseudo_random(3, 4, 25, -0.5, 0.5);
    let wc = pseudo_random(3, 4, 26, -0.5, 0.5);
    let c_prev = pseudo_random(2, 4, 27, -1.0, 1.0);

    let err = gradcheck(&x, 1e-2, |t, x| {
        let wf = t.leaf(wf.clone());
        let wi = t.leaf(wi.clone());
        let wc = t.leaf(wc.clone());
        let c_prev = t.leaf(c_prev.clone());
        let f = t.sigmoid(t.matmul(x, wf));
        let i = t.sigmoid(t.matmul(x, wi));
        let c_tilde = t.tanh(t.matmul(x, wc));
        let c = t.add(t.mul(f, c_prev), t.mul(i, c_tilde));
        let h = t.mul(t.sigmoid(c), t.tanh(c));
        t.sum(t.square(h))
    });
    assert!(err < TOL, "{err}");
}

#[test]
fn value_and_shape_accessors() {
    let t = Tape::new();
    let x = t.leaf(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
    assert_eq!(t.shape(x), (2, 2));
    assert_eq!(t.value(x).as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    let s = t.sum(x);
    assert_eq!(t.scalar(s), 10.0);
    assert_eq!(t.len(), 2);
}

#[test]
#[should_panic(expected = "scalar node")]
fn backward_on_non_scalar_panics() {
    let t = Tape::new();
    let x = t.leaf(Matrix::zeros(2, 2));
    let _ = t.backward(x);
}

#[test]
fn grad_reused_node_accumulates() {
    // y = x * x + x  => dy/dx = 2x + 1
    let t = Tape::new();
    let x = t.leaf(Matrix::from_vec(1, 2, vec![3.0, -2.0]));
    let y = t.add(t.mul(x, x), x);
    let s = t.sum(y);
    let g = t.backward(s);
    let gx = g.get(x).unwrap();
    assert_eq!(gx.as_slice(), &[7.0, -3.0]);
}
