//! Finite-difference gradient checking utilities.
//!
//! Used heavily in this crate's tests and re-exported so downstream layers
//! (LSTM cell, attention, likelihood heads) can verify their composite
//! gradients too.

use crate::tape::{Tape, Var};
use rpf_tensor::Matrix;

/// Numerically estimate `d f / d input` by central differences.
///
/// `f` must rebuild the full forward computation from scratch given the
/// perturbed input and return the scalar output.
pub fn finite_difference_grad(
    input: &Matrix,
    eps: f32,
    mut f: impl FnMut(&Matrix) -> f32,
) -> Matrix {
    let mut grad = Matrix::zeros(input.rows(), input.cols());
    for r in 0..input.rows() {
        for c in 0..input.cols() {
            let mut plus = input.clone();
            plus.set(r, c, input.get(r, c) + eps);
            let mut minus = input.clone();
            minus.set(r, c, input.get(r, c) - eps);
            grad.set(r, c, (f(&plus) - f(&minus)) / (2.0 * eps));
        }
    }
    grad
}

/// Check the analytic gradient of a scalar-valued tape program against
/// central differences, for one designated input.
///
/// `build` receives a fresh tape and the (possibly perturbed) input value and
/// must return the scalar output node. Returns the maximum relative error.
pub fn gradcheck(input: &Matrix, eps: f32, build: impl Fn(&Tape, Var) -> Var) -> f32 {
    // Analytic gradient.
    let tape = Tape::new();
    let x = tape.leaf(input.clone());
    let out = build(&tape, x);
    let grads = tape.backward(out);
    let analytic = grads
        .get(x)
        .expect("input did not influence the output")
        .clone();

    // Numeric gradient.
    let numeric = finite_difference_grad(input, eps, |m| {
        let tape = Tape::new();
        let x = tape.leaf(m.clone());
        let out = build(&tape, x);
        tape.scalar(out)
    });

    let mut max_rel = 0.0f32;
    for (a, n) in analytic.as_slice().iter().zip(numeric.as_slice()) {
        let denom = a.abs().max(n.abs()).max(1e-3);
        max_rel = max_rel.max((a - n).abs() / denom);
    }
    max_rel
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_grad_of_square_is_2x() {
        let x = Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        let g = finite_difference_grad(&x, 1e-3, |m| m.as_slice().iter().map(|v| v * v).sum());
        for (gv, xv) in g.as_slice().iter().zip(x.as_slice()) {
            assert!((gv - 2.0 * xv).abs() < 1e-2, "{gv} vs {}", 2.0 * xv);
        }
    }

    #[test]
    fn gradcheck_simple_chain() {
        let x = Matrix::from_vec(2, 2, vec![0.5, -0.3, 0.8, 0.1]);
        let err = gradcheck(&x, 1e-3, |t, x| {
            let y = t.tanh(x);
            let z = t.mul(y, y);
            t.sum(z)
        });
        assert!(err < 1e-2, "relative error {err}");
    }
}
