//! Tape-based reverse-mode automatic differentiation over [`rpf_tensor`]
//! matrices.
//!
//! The paper trains its models by maximising a Gaussian log-likelihood with
//! Adam (Algorithm 1); everything upstream of the optimizer needs gradients
//! of matrix expressions — LSTM cells, dense heads, attention. This crate
//! provides exactly that: a [`Tape`] on which forward operations are
//! recorded, and a single [`Tape::backward`] sweep that accumulates
//! gradients for every recorded node in reverse topological order.
//!
//! Design notes:
//!
//! * A fresh tape is built per forward pass (per minibatch). Nodes are
//!   appended in creation order, which is automatically a topological order
//!   of the DAG, so backward is a simple reverse iteration — no sorting.
//! * [`Var`] is a `Copy` handle (tape index); all state lives in the tape.
//! * Gradients are dense matrices; unused nodes simply never materialise a
//!   gradient.
//!
//! ```
//! use rpf_autodiff::Tape;
//! use rpf_tensor::Matrix;
//!
//! let tape = Tape::new();
//! let x = tape.leaf(Matrix::from_vec(1, 2, vec![3.0, -1.0]));
//! let y = tape.mul(x, x);        // y = x^2 elementwise
//! let loss = tape.sum(y);        // scalar
//! let grads = tape.backward(loss);
//! let gx = grads.get(x).unwrap();
//! assert_eq!(gx.as_slice(), &[6.0, -2.0]); // d/dx x^2 = 2x
//! ```

mod gradcheck;
mod tape;

pub use gradcheck::{finite_difference_grad, gradcheck};
pub use tape::{Gradients, Tape, Var};
