//! The tape: forward op recording and the reverse gradient sweep.

use rpf_tensor::matmul::{matmul, matmul_at, matmul_bt};
use rpf_tensor::{ops, Matrix};
use std::cell::RefCell;

/// Handle to a node on a [`Tape`]. Only valid for the tape that created it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

/// How a node was produced; drives its backward rule.
enum Op {
    /// Input / parameter — no parents.
    Leaf,
    MatMul(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Div(Var, Var),
    /// Broadcast-add of a 1xC row vector (bias) to every row.
    AddRow(Var, Var),
    Scale(Var, f32),
    AddScalar(Var),
    Neg(Var),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    Softplus(Var),
    Exp(Var),
    Log(Var),
    Square(Var),
    Sqrt(Var),
    Transpose(Var),
    SoftmaxRows(Var),
    /// Horizontal concatenation; stores each part and its column offset.
    HStack(Vec<(Var, usize, usize)>),
    SliceCols(Var, usize, usize),
    SliceRows(Var, usize, usize),
    /// Row gather (embedding lookup); backward scatter-adds.
    GatherRows(Var, Vec<usize>),
    Sum(Var),
    Mean(Var),
    /// Column-wise sum producing a 1xC vector.
    SumRows(Var),
}

struct Node {
    value: Matrix,
    op: Op,
}

/// Records a computation DAG and differentiates it.
///
/// Not `Sync`: a tape belongs to one worker. Batch-level parallelism is done
/// with one tape per thread (see `rpf-nn`'s trainer).
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    pub fn new() -> Self {
        Tape {
            nodes: RefCell::new(Vec::with_capacity(256)),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, value: Matrix, op: Op) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { value, op });
        Var(nodes.len() - 1)
    }

    /// Clone out the value of a node.
    pub fn value(&self, v: Var) -> Matrix {
        self.nodes.borrow()[v.0].value.clone()
    }

    /// Shape of a node's value without cloning.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes.borrow()[v.0].value.shape()
    }

    /// Scalar value of a 1x1 node.
    pub fn scalar(&self, v: Var) -> f32 {
        let nodes = self.nodes.borrow();
        let m = &nodes[v.0].value;
        assert_eq!(
            m.shape(),
            (1, 1),
            "scalar() on non-scalar node {:?}",
            m.shape()
        );
        m.get(0, 0)
    }

    // ---- graph construction -------------------------------------------

    /// Record an input or parameter value.
    pub fn leaf(&self, m: Matrix) -> Var {
        self.push(m, Op::Leaf)
    }

    /// Matrix product.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            matmul(&nodes[a.0].value, &nodes[b.0].value)
        };
        self.push(v, Op::MatMul(a, b))
    }

    pub fn add(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            ops::add(&nodes[a.0].value, &nodes[b.0].value)
        };
        self.push(v, Op::Add(a, b))
    }

    pub fn sub(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            ops::sub(&nodes[a.0].value, &nodes[b.0].value)
        };
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            ops::mul(&nodes[a.0].value, &nodes[b.0].value)
        };
        self.push(v, Op::Mul(a, b))
    }

    /// Elementwise division.
    pub fn div(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let bm = &nodes[b.0].value;
            let mut out = nodes[a.0].value.clone();
            for (o, &x) in out.as_mut_slice().iter_mut().zip(bm.as_slice()) {
                *o /= x;
            }
            out
        };
        self.push(v, Op::Div(a, b))
    }

    /// Broadcast-add a 1xC bias row to every row of `a`.
    pub fn add_row(&self, a: Var, bias: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            ops::add_row(&nodes[a.0].value, &nodes[bias.0].value)
        };
        self.push(v, Op::AddRow(a, bias))
    }

    pub fn scale(&self, a: Var, s: f32) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            ops::scale(&nodes[a.0].value, s)
        };
        self.push(v, Op::Scale(a, s))
    }

    pub fn add_scalar(&self, a: Var, s: f32) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            ops::add_scalar(&nodes[a.0].value, s)
        };
        self.push(v, Op::AddScalar(a))
    }

    pub fn neg(&self, a: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            ops::scale(&nodes[a.0].value, -1.0)
        };
        self.push(v, Op::Neg(a))
    }

    pub fn sigmoid(&self, a: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            ops::sigmoid(&nodes[a.0].value)
        };
        self.push(v, Op::Sigmoid(a))
    }

    pub fn tanh(&self, a: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            ops::tanh(&nodes[a.0].value)
        };
        self.push(v, Op::Tanh(a))
    }

    pub fn relu(&self, a: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            ops::relu(&nodes[a.0].value)
        };
        self.push(v, Op::Relu(a))
    }

    /// Softplus `log(1+e^x)` — the paper's positivity link for sigma.
    pub fn softplus(&self, a: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            ops::softplus(&nodes[a.0].value)
        };
        self.push(v, Op::Softplus(a))
    }

    pub fn exp(&self, a: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            ops::exp(&nodes[a.0].value)
        };
        self.push(v, Op::Exp(a))
    }

    /// Elementwise natural log. Inputs must be positive.
    pub fn log(&self, a: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            ops::map(&nodes[a.0].value, f32::ln)
        };
        self.push(v, Op::Log(a))
    }

    pub fn square(&self, a: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            ops::map(&nodes[a.0].value, |x| x * x)
        };
        self.push(v, Op::Square(a))
    }

    /// Elementwise square root. Inputs must be non-negative.
    pub fn sqrt(&self, a: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            ops::map(&nodes[a.0].value, f32::sqrt)
        };
        self.push(v, Op::Sqrt(a))
    }

    pub fn transpose(&self, a: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.0].value.transpose()
        };
        self.push(v, Op::Transpose(a))
    }

    /// Row-wise softmax (attention weights).
    pub fn softmax_rows(&self, a: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            ops::softmax_rows(&nodes[a.0].value)
        };
        self.push(v, Op::SoftmaxRows(a))
    }

    /// Concatenate along columns. All parts must share a row count.
    pub fn hstack(&self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "hstack of nothing");
        let (v, spans) = {
            let nodes = self.nodes.borrow();
            let mats: Vec<&Matrix> = parts.iter().map(|p| &nodes[p.0].value).collect();
            let v = Matrix::hstack(&mats);
            let mut spans = Vec::with_capacity(parts.len());
            let mut off = 0;
            for (p, m) in parts.iter().zip(&mats) {
                spans.push((*p, off, off + m.cols()));
                off += m.cols();
            }
            (v, spans)
        };
        self.push(v, Op::HStack(spans))
    }

    /// Columns `[start, end)` of `a`.
    pub fn slice_cols(&self, a: Var, start: usize, end: usize) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.0].value.slice_cols(start, end)
        };
        self.push(v, Op::SliceCols(a, start, end))
    }

    /// Rows `[start, end)` of `a`.
    pub fn slice_rows(&self, a: Var, start: usize, end: usize) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.0].value.slice_rows(start, end)
        };
        self.push(v, Op::SliceRows(a, start, end))
    }

    /// Row gather: output row `i` is `a`'s row `indices[i]` (embedding lookup).
    pub fn gather_rows(&self, a: Var, indices: &[usize]) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.0].value.gather_rows(indices)
        };
        self.push(v, Op::GatherRows(a, indices.to_vec()))
    }

    /// Sum of all elements, as a 1x1 node.
    pub fn sum(&self, a: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            Matrix::from_vec(1, 1, vec![nodes[a.0].value.sum()])
        };
        self.push(v, Op::Sum(a))
    }

    /// Mean of all elements, as a 1x1 node.
    pub fn mean(&self, a: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            Matrix::from_vec(1, 1, vec![nodes[a.0].value.mean()])
        };
        self.push(v, Op::Mean(a))
    }

    /// Column-wise sum producing a 1xC node.
    pub fn sum_rows(&self, a: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            ops::sum_rows(&nodes[a.0].value)
        };
        self.push(v, Op::SumRows(a))
    }

    // ---- backward ------------------------------------------------------

    /// Run the reverse sweep from `root` (must be 1x1) and return all
    /// gradients. The tape itself is left intact so values can still be read.
    pub fn backward(&self, root: Var) -> Gradients {
        assert_eq!(
            self.shape(root),
            (1, 1),
            "backward root must be a scalar node"
        );
        self.backward_keeping_all(root)
    }

    /// Reverse sweep that retains the gradient of every node. Used both as
    /// the public result and in tests that inspect interior gradients.
    fn backward_keeping_all(&self, root: Var) -> Gradients {
        let nodes = self.nodes.borrow();
        let mut grads: Vec<Option<Matrix>> = vec![None; nodes.len()];
        grads[root.0] = Some(Matrix::ones(1, 1));

        for i in (0..=root.0).rev() {
            let Some(g) = grads[i].clone() else { continue };
            let node = &nodes[i];
            match &node.op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let da = matmul_bt(&g, &nodes[b.0].value);
                    let db = matmul_at(&nodes[a.0].value, &g);
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *b, db);
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g.clone());
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, ops::scale(&g, -1.0));
                }
                Op::Mul(a, b) => {
                    accumulate(&mut grads, *a, ops::mul(&g, &nodes[b.0].value));
                    accumulate(&mut grads, *b, ops::mul(&g, &nodes[a.0].value));
                }
                Op::Div(a, b) => {
                    let bm = &nodes[b.0].value;
                    let mut da = g.clone();
                    for (o, &x) in da.as_mut_slice().iter_mut().zip(bm.as_slice()) {
                        *o /= x;
                    }
                    let mut db = ops::mul(&g, &node.value);
                    for (o, &x) in db.as_mut_slice().iter_mut().zip(bm.as_slice()) {
                        *o = -*o / x;
                    }
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *b, db);
                }
                Op::AddRow(a, bias) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *bias, ops::sum_rows(&g));
                }
                Op::Scale(a, s) => accumulate(&mut grads, *a, ops::scale(&g, *s)),
                Op::AddScalar(a) => accumulate(&mut grads, *a, g.clone()),
                Op::Neg(a) => accumulate(&mut grads, *a, ops::scale(&g, -1.0)),
                Op::Sigmoid(a) => {
                    let mut da = g.clone();
                    for (o, &y) in da.as_mut_slice().iter_mut().zip(node.value.as_slice()) {
                        *o *= y * (1.0 - y);
                    }
                    accumulate(&mut grads, *a, da);
                }
                Op::Tanh(a) => {
                    let mut da = g.clone();
                    for (o, &y) in da.as_mut_slice().iter_mut().zip(node.value.as_slice()) {
                        *o *= 1.0 - y * y;
                    }
                    accumulate(&mut grads, *a, da);
                }
                Op::Relu(a) => {
                    let mut da = g.clone();
                    for (o, &x) in da
                        .as_mut_slice()
                        .iter_mut()
                        .zip(nodes[a.0].value.as_slice())
                    {
                        if x <= 0.0 {
                            *o = 0.0;
                        }
                    }
                    accumulate(&mut grads, *a, da);
                }
                Op::Softplus(a) => {
                    let mut da = g.clone();
                    for (o, &x) in da
                        .as_mut_slice()
                        .iter_mut()
                        .zip(nodes[a.0].value.as_slice())
                    {
                        *o *= 1.0 / (1.0 + (-x).exp());
                    }
                    accumulate(&mut grads, *a, da);
                }
                Op::Exp(a) => accumulate(&mut grads, *a, ops::mul(&g, &node.value)),
                Op::Log(a) => {
                    let mut da = g.clone();
                    for (o, &x) in da
                        .as_mut_slice()
                        .iter_mut()
                        .zip(nodes[a.0].value.as_slice())
                    {
                        *o /= x;
                    }
                    accumulate(&mut grads, *a, da);
                }
                Op::Square(a) => {
                    let mut da = g.clone();
                    for (o, &x) in da
                        .as_mut_slice()
                        .iter_mut()
                        .zip(nodes[a.0].value.as_slice())
                    {
                        *o *= 2.0 * x;
                    }
                    accumulate(&mut grads, *a, da);
                }
                Op::Sqrt(a) => {
                    let mut da = g.clone();
                    for (o, &y) in da.as_mut_slice().iter_mut().zip(node.value.as_slice()) {
                        *o *= 0.5 / y.max(1e-12);
                    }
                    accumulate(&mut grads, *a, da);
                }
                Op::Transpose(a) => accumulate(&mut grads, *a, g.transpose()),
                Op::SoftmaxRows(a) => {
                    let s = &node.value;
                    let mut da = g.clone();
                    for r in 0..s.rows() {
                        let s_row = s.row(r);
                        let g_row = da.row_mut(r);
                        let dot: f32 = g_row.iter().zip(s_row).map(|(&gv, &sv)| gv * sv).sum();
                        for (gv, &sv) in g_row.iter_mut().zip(s_row) {
                            *gv = sv * (*gv - dot);
                        }
                    }
                    accumulate(&mut grads, *a, da);
                }
                Op::HStack(spans) => {
                    for (p, start, end) in spans {
                        accumulate(&mut grads, *p, g.slice_cols(*start, *end));
                    }
                }
                Op::SliceCols(a, start, end) => {
                    let (rows, cols) = nodes[a.0].value.shape();
                    let mut da = Matrix::zeros(rows, cols);
                    for r in 0..rows {
                        da.row_mut(r)[*start..*end].copy_from_slice(g.row(r));
                    }
                    accumulate(&mut grads, *a, da);
                }
                Op::SliceRows(a, start, end) => {
                    let (rows, cols) = nodes[a.0].value.shape();
                    let mut da = Matrix::zeros(rows, cols);
                    for (gr, r) in (*start..*end).enumerate() {
                        da.row_mut(r).copy_from_slice(g.row(gr));
                    }
                    accumulate(&mut grads, *a, da);
                }
                Op::GatherRows(a, indices) => {
                    let (rows, cols) = nodes[a.0].value.shape();
                    let mut da = Matrix::zeros(rows, cols);
                    for (out_r, &src_r) in indices.iter().enumerate() {
                        for (o, &x) in da.row_mut(src_r).iter_mut().zip(g.row(out_r)) {
                            *o += x;
                        }
                    }
                    let _ = cols;
                    accumulate(&mut grads, *a, da);
                }
                Op::Sum(a) => {
                    let (rows, cols) = nodes[a.0].value.shape();
                    accumulate(&mut grads, *a, Matrix::full(rows, cols, g.get(0, 0)));
                }
                Op::Mean(a) => {
                    let (rows, cols) = nodes[a.0].value.shape();
                    let n = (rows * cols).max(1) as f32;
                    accumulate(&mut grads, *a, Matrix::full(rows, cols, g.get(0, 0) / n));
                }
                Op::SumRows(a) => {
                    let (rows, cols) = nodes[a.0].value.shape();
                    let mut da = Matrix::zeros(rows, cols);
                    for r in 0..rows {
                        da.row_mut(r).copy_from_slice(g.row(0));
                    }
                    accumulate(&mut grads, *a, da);
                }
            }
        }
        Gradients { grads }
    }
}

fn accumulate(grads: &mut [Option<Matrix>], v: Var, g: Matrix) {
    match &mut grads[v.0] {
        Some(existing) => ops::axpy(existing, 1.0, &g),
        slot @ None => *slot = Some(g),
    }
}

/// Gradients returned by [`Tape::backward`], indexed by [`Var`].
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// Gradient of the root with respect to `v`, if `v` participated in the
    /// computation.
    pub fn get(&self, v: Var) -> Option<&Matrix> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    /// Take ownership of a gradient, leaving `None` behind.
    pub fn take(&mut self, v: Var) -> Option<Matrix> {
        self.grads.get_mut(v.0).and_then(|g| g.take())
    }
}
