//! One race shard: an actor owning a forked engine, its model slot and
//! encoder cache, behind a bounded [`Mailbox`](crate::mailbox::Mailbox).
//!
//! A shard *is* the flat scheduler scoped to a subset of the key space:
//! its [`Shared`] region is the same struct `serve` builds, its workers
//! run the same `worker_loop`, and its admission is the same all-or-
//! nothing mailbox. What sharding adds is ownership — no two shards share
//! an engine, a cache, a metrics registry or a queue, so a shard can die,
//! be drained and be restarted without the others noticing — plus a
//! [`Monitor`](crate::supervisor::Monitor) the supervisor watches for
//! worker deaths.

use crate::config::ServeConfig;
use crate::mailbox::Entry;
use crate::server::{deliver_fallback, FallbackReason, Shared};
use crate::supervisor::Monitor;
use ranknet_core::engine::ForecastEngine;
use ranknet_core::features::RaceContext;

/// One shard's state: the serving region plus its supervisor's monitor.
/// The shard's index lives in `shared.shard`.
pub(crate) struct Shard<'a> {
    pub(crate) shared: Shared<'a>,
    pub(crate) monitor: Monitor,
}

impl<'a> Shard<'a> {
    /// Build shard `id` over its own forked `engine`. The fork carries the
    /// live seed, backend, thread count and cache capacity, so the shard's
    /// answers are bit-identical to the flat region's (the determinism
    /// contract: draws key on request identity, never on placement).
    pub(crate) fn new(
        id: usize,
        engine: &'a ForecastEngine,
        contexts: &'a [&'a RaceContext],
        cfg: ServeConfig,
    ) -> Shard<'a> {
        Shard {
            shared: Shared::new(engine, contexts, cfg, None, Some(id)),
            monitor: Monitor::new(),
        }
    }

    /// Containment drain after a worker death: answer every queued entry
    /// with the CurRank fallback, flagged [`FallbackReason::ShardFailure`].
    /// Accepted always implies answered, even across a shard crash.
    pub(crate) fn fallback_drain(&self) {
        let backlog: Vec<Entry> = self.shared.mailbox.drain_all();
        for e in backlog {
            deliver_fallback(&self.shared, e, FallbackReason::ShardFailure, 1);
        }
    }
}
