//! Serving metrics on the shared observability registry: the scheduler
//! records through `rpf-obs` counter/histogram handles, snapshotted into
//! a plain struct for reporting and golden tests.
//!
//! Histograms use *fixed* bucket edges (powers-of-ten latency ladder,
//! powers-of-two batch sizes — the workspace-wide ladders re-exported
//! from [`rpf_obs`]) so a snapshot is comparable across runs and
//! machines, and so the deterministic replay harness
//! ([`crate::replay`]) can pin exact bucket counts in a checked-in file.
//! [`MetricsSnapshot::render`] is byte-stable: migrating the backing
//! store onto the registry changed no output line.

use rpf_obs::{Counter, Gauge, Histogram, Registry};

/// Latency bucket upper edges in nanoseconds; a final overflow bucket
/// catches everything slower. Bucket `i` counts responses with
/// `latency <= LATENCY_EDGES_NS[i]` that missed every earlier bucket.
pub const LATENCY_EDGES_NS: [u64; 11] = rpf_obs::LATENCY_EDGES_NS;

/// Batch-size bucket upper edges; final overflow bucket beyond.
pub const BATCH_EDGES: [u64; 6] = rpf_obs::BATCH_EDGES;

/// Shadow-evaluation divergence edges (milli-rank units); final overflow
/// bucket beyond.
pub const DIVERGENCE_EDGES_MILLI: [u64; 8] = rpf_obs::DIVERGENCE_EDGES_MILLI;

const LAT_BUCKETS: usize = LATENCY_EDGES_NS.len() + 1;
const BATCH_BUCKETS: usize = BATCH_EDGES.len() + 1;
const DIV_BUCKETS: usize = DIVERGENCE_EDGES_MILLI.len() + 1;

/// Shared scheduler counters, backed by an owned [`Registry`] so the
/// serving layer reports through the same snapshot type as the engine
/// and the training loop. Every mutation is a relaxed atomic on a
/// thread-sharded cell: the counters are monotone tallies, not
/// synchronization.
pub struct ServeMetrics {
    registry: Registry,
    submitted: Counter,
    accepted: Counter,
    rejected_queue_full: Counter,
    rejected_shutdown: Counter,
    completed: Counter,
    ok_responses: Counter,
    invalid: Counter,
    fallback_deadline: Counter,
    fallback_panic: Counter,
    fallback_shard: Counter,
    worker_panics: Counter,
    shard_restarts: Counter,
    queue_poison_recoveries: Counter,
    batches: Counter,
    batched_requests: Counter,
    swaps: Counter,
    rollbacks: Counter,
    shadow_comparisons: Counter,
    queue_depth_max: Gauge,
    model_version: Gauge,
    latency: Histogram,
    batch_sizes: Histogram,
    shadow_divergence: Histogram,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

impl ServeMetrics {
    pub fn new() -> ServeMetrics {
        let registry = Registry::new();
        ServeMetrics {
            submitted: registry.counter("serve_submitted"),
            accepted: registry.counter("serve_accepted"),
            rejected_queue_full: registry.counter("serve_rejected_queue_full"),
            rejected_shutdown: registry.counter("serve_rejected_shutdown"),
            completed: registry.counter("serve_completed"),
            ok_responses: registry.counter("serve_ok_responses"),
            invalid: registry.counter("serve_invalid"),
            fallback_deadline: registry.counter("serve_fallback_deadline"),
            fallback_panic: registry.counter("serve_fallback_panic"),
            fallback_shard: registry.counter("serve_fallback_shard"),
            worker_panics: registry.counter("serve_worker_panics"),
            shard_restarts: registry.counter("serve_shard_restarts"),
            queue_poison_recoveries: registry.counter("serve_queue_poison_recoveries"),
            batches: registry.counter("serve_batches"),
            batched_requests: registry.counter("serve_batched_requests"),
            swaps: registry.counter("serve_swaps"),
            rollbacks: registry.counter("serve_rollbacks"),
            shadow_comparisons: registry.counter("serve_shadow_comparisons"),
            queue_depth_max: registry.gauge("serve_queue_depth_max"),
            model_version: registry.gauge("rpf_model_version"),
            batch_sizes: registry.histogram("serve_batch_size", &BATCH_EDGES),
            latency: registry.histogram("serve_latency_ns", &LATENCY_EDGES_NS),
            shadow_divergence: registry
                .histogram("serve_shadow_divergence_milli", &DIVERGENCE_EDGES_MILLI),
            registry,
        }
    }

    pub(crate) fn record_submitted(&self) {
        self.submitted.inc();
    }

    pub(crate) fn record_accepted(&self, queue_depth: u64) {
        self.accepted.inc();
        self.queue_depth_max.set_max(queue_depth);
    }

    pub(crate) fn record_rejected_full(&self) {
        self.rejected_queue_full.inc();
    }

    pub(crate) fn record_rejected_shutdown(&self) {
        self.rejected_shutdown.inc();
    }

    pub(crate) fn record_batch(&self, size: u64) {
        self.batches.inc();
        self.batched_requests.add(size);
        self.batch_sizes.observe(size);
    }

    pub(crate) fn record_response(&self, outcome: ResponseKind, latency_ns: u64) {
        self.completed.inc();
        match outcome {
            ResponseKind::Ok => &self.ok_responses,
            ResponseKind::Invalid => &self.invalid,
            ResponseKind::FallbackDeadline => &self.fallback_deadline,
            ResponseKind::FallbackPanic => &self.fallback_panic,
            ResponseKind::FallbackShard => &self.fallback_shard,
        }
        .inc();
        self.latency.observe(latency_ns);
    }

    pub(crate) fn record_worker_panic(&self) {
        self.worker_panics.inc();
    }

    pub(crate) fn record_queue_poison_recovery(&self) {
        self.queue_poison_recoveries.inc();
    }

    /// A shard supervisor restarted this region's worker after a death.
    pub(crate) fn record_shard_restart(&self) {
        self.shard_restarts.inc();
    }

    /// Fold a lifecycle controller's tallies into this region's metrics
    /// (see `LifecycleController::flush_into`).
    pub(crate) fn record_lifecycle(
        &self,
        swaps: u64,
        rollbacks: u64,
        comparisons: u64,
        divergences: &[u64],
    ) {
        self.swaps.add(swaps);
        self.rollbacks.add(rollbacks);
        self.shadow_comparisons.add(comparisons);
        for &d in divergences {
            self.shadow_divergence.observe(d);
        }
    }

    /// Stamp the serving model's lifecycle version (0 = unversioned).
    pub(crate) fn set_model_version(&self, version: u64) {
        self.model_version.set(version);
    }

    /// The backing registry, for scraping alongside other subsystems.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mergeable snapshot in the workspace-wide form — combine with the
    /// engine's and the training report's via
    /// [`rpf_obs::MetricsSnapshot::merge`].
    pub fn obs_snapshot(&self) -> rpf_obs::MetricsSnapshot {
        self.registry.snapshot()
    }

    fn hist_array<const N: usize>(h: &Histogram) -> [u64; N] {
        let mut out = [0u64; N];
        for (slot, v) in out.iter_mut().zip(h.buckets()) {
            *slot = v;
        }
        out
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.submitted.value(),
            accepted: self.accepted.value(),
            rejected_queue_full: self.rejected_queue_full.value(),
            rejected_shutdown: self.rejected_shutdown.value(),
            completed: self.completed.value(),
            ok_responses: self.ok_responses.value(),
            invalid: self.invalid.value(),
            fallback_deadline: self.fallback_deadline.value(),
            fallback_panic: self.fallback_panic.value(),
            fallback_shard: self.fallback_shard.value(),
            worker_panics: self.worker_panics.value(),
            shard_restarts: self.shard_restarts.value(),
            queue_poison_recoveries: self.queue_poison_recoveries.value(),
            batches: self.batches.value(),
            batched_requests: self.batched_requests.value(),
            swaps: self.swaps.value(),
            rollbacks: self.rollbacks.value(),
            shadow_comparisons: self.shadow_comparisons.value(),
            queue_depth_max: self.queue_depth_max.value(),
            model_version: self.model_version.value(),
            latency: Self::hist_array(&self.latency),
            batch_sizes: Self::hist_array(&self.batch_sizes),
            shadow_divergence: Self::hist_array(&self.shadow_divergence),
        }
    }
}

/// How a response left the scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ResponseKind {
    Ok,
    Invalid,
    FallbackDeadline,
    FallbackPanic,
    FallbackShard,
}

/// A plain copy of every counter, taken at one instant.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub submitted: u64,
    pub accepted: u64,
    pub rejected_queue_full: u64,
    pub rejected_shutdown: u64,
    pub completed: u64,
    pub ok_responses: u64,
    pub invalid: u64,
    pub fallback_deadline: u64,
    pub fallback_panic: u64,
    /// Fallback answers produced by a supervisor draining a failed shard.
    pub fallback_shard: u64,
    pub worker_panics: u64,
    /// Worker respawns performed by shard supervisors.
    pub shard_restarts: u64,
    pub queue_poison_recoveries: u64,
    pub batches: u64,
    pub batched_requests: u64,
    /// Model hot-swaps performed by a lifecycle controller.
    pub swaps: u64,
    /// Candidate rollbacks (divergence gate or a panicked swap).
    pub rollbacks: u64,
    /// Shadow live-vs-candidate comparisons run.
    pub shadow_comparisons: u64,
    pub queue_depth_max: u64,
    /// Lifecycle version of the serving model (0 = unversioned).
    pub model_version: u64,
    /// Latency histogram: one count per [`LATENCY_EDGES_NS`] bucket plus a
    /// final overflow bucket.
    pub latency: [u64; LAT_BUCKETS],
    /// Batch-size histogram: one count per [`BATCH_EDGES`] bucket plus a
    /// final overflow bucket.
    pub batch_sizes: [u64; BATCH_BUCKETS],
    /// Shadow-divergence histogram: one count per
    /// [`DIVERGENCE_EDGES_MILLI`] bucket plus a final overflow bucket.
    pub shadow_divergence: [u64; DIV_BUCKETS],
}

impl MetricsSnapshot {
    /// Mean formed-batch size, the batching efficiency headline.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Stable text rendering, one counter per line — the golden-test
    /// format. Any widening of the counter set shows up as a diff.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut line = |k: &str, v: u64| out.push_str(&format!("{k:<28} {v}\n"));
        line("submitted", self.submitted);
        line("accepted", self.accepted);
        line("rejected_queue_full", self.rejected_queue_full);
        line("rejected_shutdown", self.rejected_shutdown);
        line("completed", self.completed);
        line("ok_responses", self.ok_responses);
        line("invalid", self.invalid);
        line("fallback_deadline", self.fallback_deadline);
        line("fallback_panic", self.fallback_panic);
        line("fallback_shard", self.fallback_shard);
        line("worker_panics", self.worker_panics);
        line("shard_restarts", self.shard_restarts);
        line("queue_poison_recoveries", self.queue_poison_recoveries);
        line("batches", self.batches);
        line("batched_requests", self.batched_requests);
        line("swaps", self.swaps);
        line("rollbacks", self.rollbacks);
        line("shadow_comparisons", self.shadow_comparisons);
        line("queue_depth_max", self.queue_depth_max);
        line("model_version", self.model_version);
        for (i, &count) in self.batch_sizes.iter().enumerate() {
            let label = match BATCH_EDGES.get(i) {
                Some(e) => format!("batch_size<={e}"),
                None => "batch_size_overflow".to_string(),
            };
            line(&label, count);
        }
        for (i, &count) in self.latency.iter().enumerate() {
            let label = match LATENCY_EDGES_NS.get(i) {
                Some(e) => format!("latency_ns<={e}"),
                None => "latency_overflow".to_string(),
            };
            line(&label, count);
        }
        for (i, &count) in self.shadow_divergence.iter().enumerate() {
            let label = match DIVERGENCE_EDGES_MILLI.get(i) {
                Some(e) => format!("shadow_divergence<={e}"),
                None => "shadow_divergence_overflow".to_string(),
            };
            line(&label, count);
        }
        out
    }

    /// The same snapshot in the workspace-wide mergeable form, for callers
    /// holding the typed struct rather than live [`ServeMetrics`].
    pub fn to_obs(&self) -> rpf_obs::MetricsSnapshot {
        let counter = |name: &str, value: u64| rpf_obs::CounterSample {
            name: name.to_string(),
            value,
        };
        rpf_obs::MetricsSnapshot {
            counters: vec![
                counter("serve_submitted", self.submitted),
                counter("serve_accepted", self.accepted),
                counter("serve_rejected_queue_full", self.rejected_queue_full),
                counter("serve_rejected_shutdown", self.rejected_shutdown),
                counter("serve_completed", self.completed),
                counter("serve_ok_responses", self.ok_responses),
                counter("serve_invalid", self.invalid),
                counter("serve_fallback_deadline", self.fallback_deadline),
                counter("serve_fallback_panic", self.fallback_panic),
                counter("serve_fallback_shard", self.fallback_shard),
                counter("serve_worker_panics", self.worker_panics),
                counter("serve_shard_restarts", self.shard_restarts),
                counter(
                    "serve_queue_poison_recoveries",
                    self.queue_poison_recoveries,
                ),
                counter("serve_batches", self.batches),
                counter("serve_batched_requests", self.batched_requests),
                counter("serve_swaps", self.swaps),
                counter("serve_rollbacks", self.rollbacks),
                counter("serve_shadow_comparisons", self.shadow_comparisons),
            ],
            gauges: vec![
                rpf_obs::GaugeSample {
                    name: "serve_queue_depth_max".to_string(),
                    value: self.queue_depth_max,
                },
                rpf_obs::GaugeSample {
                    name: "rpf_model_version".to_string(),
                    value: self.model_version,
                },
            ],
            histograms: vec![
                rpf_obs::HistogramSample {
                    name: "serve_batch_size".to_string(),
                    edges: BATCH_EDGES.to_vec(),
                    buckets: self.batch_sizes.to_vec(),
                    count: self.batch_sizes.iter().sum(),
                    sum: 0,
                },
                rpf_obs::HistogramSample {
                    name: "serve_latency_ns".to_string(),
                    edges: LATENCY_EDGES_NS.to_vec(),
                    buckets: self.latency.to_vec(),
                    count: self.latency.iter().sum(),
                    sum: 0,
                },
                rpf_obs::HistogramSample {
                    name: "serve_shadow_divergence_milli".to_string(),
                    edges: DIVERGENCE_EDGES_MILLI.to_vec(),
                    buckets: self.shadow_divergence.to_vec(),
                    count: self.shadow_divergence.iter().sum(),
                    sum: 0,
                },
            ],
            ops: Vec::new(),
            spans: Vec::new(),
        }
    }

    /// Fold another region's counters into this one: counters and
    /// histogram buckets add; `queue_depth_max` and `model_version` take
    /// the max (depth is a high-water mark; versions only move forward
    /// under rolling swaps, so the max is the fleet's newest).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.submitted += other.submitted;
        self.accepted += other.accepted;
        self.rejected_queue_full += other.rejected_queue_full;
        self.rejected_shutdown += other.rejected_shutdown;
        self.completed += other.completed;
        self.ok_responses += other.ok_responses;
        self.invalid += other.invalid;
        self.fallback_deadline += other.fallback_deadline;
        self.fallback_panic += other.fallback_panic;
        self.fallback_shard += other.fallback_shard;
        self.worker_panics += other.worker_panics;
        self.shard_restarts += other.shard_restarts;
        self.queue_poison_recoveries += other.queue_poison_recoveries;
        self.batches += other.batches;
        self.batched_requests += other.batched_requests;
        self.swaps += other.swaps;
        self.rollbacks += other.rollbacks;
        self.shadow_comparisons += other.shadow_comparisons;
        self.queue_depth_max = self.queue_depth_max.max(other.queue_depth_max);
        self.model_version = self.model_version.max(other.model_version);
        for (a, b) in self.latency.iter_mut().zip(other.latency) {
            *a += b;
        }
        for (a, b) in self.batch_sizes.iter_mut().zip(other.batch_sizes) {
            *a += b;
        }
        for (a, b) in self
            .shadow_divergence
            .iter_mut()
            .zip(other.shadow_divergence)
        {
            *a += b;
        }
    }

    /// [`MetricsSnapshot::to_obs`] with every sample name labelled
    /// `name{shard="i"}` — the exposition form of one shard's region, so a
    /// scrape can tell shards apart while `rpf_obs` renders the label
    /// inside the metric's brace set (see `rpf_obs::render_prometheus`).
    pub fn to_obs_labeled(&self, shard: usize) -> rpf_obs::MetricsSnapshot {
        let mut obs = self.to_obs();
        let tag = |name: &str| format!("{name}{{shard=\"{shard}\"}}");
        for c in &mut obs.counters {
            c.name = tag(&c.name);
        }
        for g in &mut obs.gauges {
            g.name = tag(&g.name);
        }
        for h in &mut obs.histograms {
            h.name = tag(&h.name);
        }
        obs
    }
}

/// The metrics of one sharded serving region: every shard's snapshot in
/// shard order, merged on demand. Returned by [`crate::serve_sharded`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardedSnapshot {
    pub per_shard: Vec<MetricsSnapshot>,
}

impl ShardedSnapshot {
    /// The fleet-wide totals (see [`MetricsSnapshot::merge`]).
    pub fn merged(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for s in &self.per_shard {
            out.merge(s);
        }
        out
    }

    /// Golden-stable rendering: the merged block first, then one block per
    /// shard, each introduced by a `-- merged --` / `-- shard N --` header.
    pub fn render(&self) -> String {
        let mut out = String::from("-- merged --\n");
        out.push_str(&self.merged().render());
        for (i, s) in self.per_shard.iter().enumerate() {
            out.push_str(&format!("-- shard {i} --\n"));
            out.push_str(&s.render());
        }
        out
    }

    /// Workspace-wide exposition form: merged samples unlabelled (the
    /// fleet totals, name-compatible with the unsharded region) plus every
    /// shard's samples labelled `{shard="i"}`.
    pub fn to_obs(&self) -> rpf_obs::MetricsSnapshot {
        let mut obs = self.merged().to_obs();
        for (i, s) in self.per_shard.iter().enumerate() {
            obs.merge(&s.to_obs_labeled(i));
        }
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpf_obs::registry::bucket_index;

    #[test]
    fn bucket_index_walks_the_ladder() {
        assert_eq!(bucket_index(&BATCH_EDGES, 1), 0);
        assert_eq!(bucket_index(&BATCH_EDGES, 2), 1);
        assert_eq!(bucket_index(&BATCH_EDGES, 3), 2);
        assert_eq!(bucket_index(&BATCH_EDGES, 32), 5);
        assert_eq!(bucket_index(&BATCH_EDGES, 33), 6);
        assert_eq!(bucket_index(&LATENCY_EDGES_NS, 0), 0);
        assert_eq!(bucket_index(&LATENCY_EDGES_NS, 2_000_000_000), 11);
    }

    #[test]
    fn render_covers_every_bucket_and_roundtrips_counts() {
        let m = ServeMetrics::new();
        m.record_submitted();
        m.record_accepted(3);
        m.record_batch(4);
        m.record_response(ResponseKind::Ok, 7_000);
        let snap = m.snapshot();
        assert_eq!(snap.submitted, 1);
        assert_eq!(snap.queue_depth_max, 3);
        assert_eq!(snap.batch_sizes[2], 1);
        assert_eq!(snap.latency[0], 1);
        let text = snap.render();
        assert_eq!(
            text.lines().count(),
            20 + BATCH_EDGES.len()
                + 1
                + LATENCY_EDGES_NS.len()
                + 1
                + DIVERGENCE_EDGES_MILLI.len()
                + 1
        );
        assert!(text.contains("latency_ns<=10000"));
    }

    #[test]
    fn obs_snapshot_carries_the_same_tallies() {
        let m = ServeMetrics::new();
        m.record_submitted();
        m.record_accepted(2);
        m.record_batch(3);
        m.record_response(ResponseKind::Ok, 60_000);
        let obs = m.obs_snapshot();
        let submitted = obs
            .counters
            .iter()
            .find(|c| c.name == "serve_submitted")
            .map(|c| c.value);
        assert_eq!(submitted, Some(1));
        let lat = obs
            .histograms
            .iter()
            .find(|h| h.name == "serve_latency_ns")
            .expect("latency histogram registered");
        assert_eq!(lat.count, 1);
        assert_eq!(lat.buckets[2], 1, "60 µs lands in the <=100 µs bucket");
        // The typed snapshot converts to the same bucket counts.
        let typed = m.snapshot().to_obs();
        let lat2 = typed
            .histograms
            .iter()
            .find(|h| h.name == "serve_latency_ns")
            .expect("latency histogram in typed conversion");
        assert_eq!(lat2.buckets, lat.buckets);
    }

    #[test]
    fn merge_adds_counters_and_maxes_gauges() {
        let mut a = MetricsSnapshot {
            submitted: 3,
            queue_depth_max: 2,
            model_version: 7,
            ..MetricsSnapshot::default()
        };
        a.latency[0] = 1;
        let mut b = MetricsSnapshot {
            submitted: 4,
            queue_depth_max: 5,
            model_version: 6,
            ..MetricsSnapshot::default()
        };
        b.latency[0] = 2;
        a.merge(&b);
        assert_eq!(a.submitted, 7);
        assert_eq!(a.queue_depth_max, 5, "depth is a high-water mark");
        assert_eq!(a.model_version, 7, "version takes the newest");
        assert_eq!(a.latency[0], 3);
    }

    #[test]
    fn sharded_snapshot_renders_merged_then_per_shard() {
        let s0 = MetricsSnapshot {
            submitted: 1,
            ..MetricsSnapshot::default()
        };
        let s1 = MetricsSnapshot {
            submitted: 2,
            ..MetricsSnapshot::default()
        };
        let sharded = ShardedSnapshot {
            per_shard: vec![s0, s1],
        };
        assert_eq!(sharded.merged().submitted, 3);
        let text = sharded.render();
        assert!(text.starts_with("-- merged --\n"));
        assert!(text.contains("-- shard 0 --\n"));
        assert!(text.contains("-- shard 1 --\n"));
        let obs = sharded.to_obs();
        assert!(obs
            .counters
            .iter()
            .any(|c| c.name == "serve_submitted" && c.value == 3));
        assert!(obs
            .counters
            .iter()
            .any(|c| c.name == "serve_submitted{shard=\"1\"}" && c.value == 2));
    }
}
