//! Serving metrics: lock-free counters the scheduler updates on the hot
//! path, snapshotted into a plain struct for reporting and golden tests.
//!
//! Histograms use *fixed* bucket edges (powers-of-ten latency ladder,
//! powers-of-two batch sizes) so a snapshot is comparable across runs and
//! machines, and so the deterministic replay harness
//! ([`crate::replay`]) can pin exact bucket counts in a checked-in file.

use std::sync::atomic::{AtomicU64, Ordering};

/// Latency bucket upper edges in nanoseconds; a final overflow bucket
/// catches everything slower. Bucket `i` counts responses with
/// `latency <= LATENCY_EDGES_NS[i]` that missed every earlier bucket.
pub const LATENCY_EDGES_NS: [u64; 11] = [
    10_000,        // 10 µs
    50_000,        // 50 µs
    100_000,       // 100 µs
    500_000,       // 500 µs
    1_000_000,     // 1 ms
    5_000_000,     // 5 ms
    10_000_000,    // 10 ms
    50_000_000,    // 50 ms
    100_000_000,   // 100 ms
    500_000_000,   // 500 ms
    1_000_000_000, // 1 s
];

/// Batch-size bucket upper edges; final overflow bucket beyond.
pub const BATCH_EDGES: [u64; 6] = [1, 2, 4, 8, 16, 32];

const LAT_BUCKETS: usize = LATENCY_EDGES_NS.len() + 1;
const BATCH_BUCKETS: usize = BATCH_EDGES.len() + 1;

fn bucket_index(edges: &[u64], value: u64) -> usize {
    edges
        .iter()
        .position(|&e| value <= e)
        .unwrap_or(edges.len())
}

/// Shared scheduler counters. Every mutation is a relaxed atomic: the
/// counters are monotone tallies, not synchronization.
#[derive(Default)]
pub struct ServeMetrics {
    submitted: AtomicU64,
    accepted: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_shutdown: AtomicU64,
    completed: AtomicU64,
    ok_responses: AtomicU64,
    invalid: AtomicU64,
    fallback_deadline: AtomicU64,
    fallback_panic: AtomicU64,
    worker_panics: AtomicU64,
    queue_poison_recoveries: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    queue_depth_max: AtomicU64,
    latency: [AtomicU64; LAT_BUCKETS],
    batch_sizes: [AtomicU64; BATCH_BUCKETS],
}

impl ServeMetrics {
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    pub(crate) fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_accepted(&self, queue_depth: u64) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.queue_depth_max
            .fetch_max(queue_depth, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected_full(&self) {
        self.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected_shutdown(&self) {
        self.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self, size: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(size, Ordering::Relaxed);
        self.batch_sizes[bucket_index(&BATCH_EDGES, size)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_response(&self, outcome: ResponseKind, latency_ns: u64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        match outcome {
            ResponseKind::Ok => &self.ok_responses,
            ResponseKind::Invalid => &self.invalid,
            ResponseKind::FallbackDeadline => &self.fallback_deadline,
            ResponseKind::FallbackPanic => &self.fallback_panic,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.latency[bucket_index(&LATENCY_EDGES_NS, latency_ns)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_queue_poison_recovery(&self) {
        self.queue_poison_recoveries.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted: load(&self.submitted),
            accepted: load(&self.accepted),
            rejected_queue_full: load(&self.rejected_queue_full),
            rejected_shutdown: load(&self.rejected_shutdown),
            completed: load(&self.completed),
            ok_responses: load(&self.ok_responses),
            invalid: load(&self.invalid),
            fallback_deadline: load(&self.fallback_deadline),
            fallback_panic: load(&self.fallback_panic),
            worker_panics: load(&self.worker_panics),
            queue_poison_recoveries: load(&self.queue_poison_recoveries),
            batches: load(&self.batches),
            batched_requests: load(&self.batched_requests),
            queue_depth_max: load(&self.queue_depth_max),
            latency: self.latency.each_ref().map(load),
            batch_sizes: self.batch_sizes.each_ref().map(load),
        }
    }
}

/// How a response left the scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ResponseKind {
    Ok,
    Invalid,
    FallbackDeadline,
    FallbackPanic,
}

/// A plain copy of every counter, taken at one instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub submitted: u64,
    pub accepted: u64,
    pub rejected_queue_full: u64,
    pub rejected_shutdown: u64,
    pub completed: u64,
    pub ok_responses: u64,
    pub invalid: u64,
    pub fallback_deadline: u64,
    pub fallback_panic: u64,
    pub worker_panics: u64,
    pub queue_poison_recoveries: u64,
    pub batches: u64,
    pub batched_requests: u64,
    pub queue_depth_max: u64,
    /// Latency histogram: one count per [`LATENCY_EDGES_NS`] bucket plus a
    /// final overflow bucket.
    pub latency: [u64; LAT_BUCKETS],
    /// Batch-size histogram: one count per [`BATCH_EDGES`] bucket plus a
    /// final overflow bucket.
    pub batch_sizes: [u64; BATCH_BUCKETS],
}

impl MetricsSnapshot {
    /// Mean formed-batch size, the batching efficiency headline.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Stable text rendering, one counter per line — the golden-test
    /// format. Any widening of the counter set shows up as a diff.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut line = |k: &str, v: u64| out.push_str(&format!("{k:<28} {v}\n"));
        line("submitted", self.submitted);
        line("accepted", self.accepted);
        line("rejected_queue_full", self.rejected_queue_full);
        line("rejected_shutdown", self.rejected_shutdown);
        line("completed", self.completed);
        line("ok_responses", self.ok_responses);
        line("invalid", self.invalid);
        line("fallback_deadline", self.fallback_deadline);
        line("fallback_panic", self.fallback_panic);
        line("worker_panics", self.worker_panics);
        line("queue_poison_recoveries", self.queue_poison_recoveries);
        line("batches", self.batches);
        line("batched_requests", self.batched_requests);
        line("queue_depth_max", self.queue_depth_max);
        for (i, &count) in self.batch_sizes.iter().enumerate() {
            let label = match BATCH_EDGES.get(i) {
                Some(e) => format!("batch_size<={e}"),
                None => "batch_size_overflow".to_string(),
            };
            line(&label, count);
        }
        for (i, &count) in self.latency.iter().enumerate() {
            let label = match LATENCY_EDGES_NS.get(i) {
                Some(e) => format!("latency_ns<={e}"),
                None => "latency_overflow".to_string(),
            };
            line(&label, count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_walks_the_ladder() {
        assert_eq!(bucket_index(&BATCH_EDGES, 1), 0);
        assert_eq!(bucket_index(&BATCH_EDGES, 2), 1);
        assert_eq!(bucket_index(&BATCH_EDGES, 3), 2);
        assert_eq!(bucket_index(&BATCH_EDGES, 32), 5);
        assert_eq!(bucket_index(&BATCH_EDGES, 33), 6);
        assert_eq!(bucket_index(&LATENCY_EDGES_NS, 0), 0);
        assert_eq!(bucket_index(&LATENCY_EDGES_NS, 2_000_000_000), 11);
    }

    #[test]
    fn render_covers_every_bucket_and_roundtrips_counts() {
        let m = ServeMetrics::new();
        m.record_submitted();
        m.record_accepted(3);
        m.record_batch(4);
        m.record_response(ResponseKind::Ok, 7_000);
        let snap = m.snapshot();
        assert_eq!(snap.submitted, 1);
        assert_eq!(snap.queue_depth_max, 3);
        assert_eq!(snap.batch_sizes[2], 1);
        assert_eq!(snap.latency[0], 1);
        let text = snap.render();
        assert_eq!(
            text.lines().count(),
            14 + BATCH_EDGES.len() + 1 + LATENCY_EDGES_NS.len() + 1
        );
        assert!(text.contains("latency_ns<=10000"));
    }
}
