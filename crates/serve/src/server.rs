//! The scheduler: bounded admission, dynamic micro-batching, worker
//! threads, per-request deadlines, and panic containment.
//!
//! # Determinism contract
//!
//! The engine derives every random draw from `(engine seed, race, origin)`
//! — request identity, never batch position or worker id. The scheduler
//! therefore has one hard invariant to preserve and it preserves it by
//! construction: a request's result is bit-identical to a direct
//! [`ForecastEngine::try_forecast_keyed`] call no matter which batch it
//! lands in, which worker runs it, or in what order requests arrived.
//! Batching, worker count and arrival jitter move *time*, never bits.
//! The same invariant extends to shard placement: the sharded front
//! ([`crate::serve_sharded`]) runs this exact scheduler once per shard
//! over a forked engine with the same seed, so which shard a request
//! hashes to is equally invisible in the output bits.
//!
//! # Failure model
//!
//! * **Queue full** — admission rejects with [`SubmitError::QueueFull`];
//!   the queue never exceeds its configured depth.
//! * **Deadline expiry** — a request still queued past its deadline is
//!   answered with the CurRank persistence fallback, flagged
//!   [`FallbackReason::DeadlineExpired`]; it never blocks the caller
//!   further and never runs the model.
//! * **Worker panic mid-batch** — the engine call runs under
//!   `catch_unwind`; on a panic the batch is retried one request at a
//!   time, so the poisoned request degrades to a flagged CurRank fallback
//!   while its neighbours still get real forecasts. Nothing hangs, nothing
//!   is dropped.
//! * **Poisoned queue mutex** — every queue lock recovers a poisoned
//!   guard (`into_inner`); queue state is plain data, so recovery is safe.
//! * **Shard worker death** — under sharded serving, a panic that escapes
//!   the containment above (only an injected kill can produce one — every
//!   real unwind path inside a batch is caught) reaches the shard's
//!   supervisor, which fallback-drains the backlog with
//!   [`FallbackReason::ShardFailure`] and respawns the worker
//!   (`supervisor.rs`); other shards are untouched.
//! * **Shutdown** — when the body closure returns, admission closes
//!   ([`SubmitError::ShuttingDown`]) and workers drain every queued
//!   request before exiting: accepted always implies answered.

use crate::config::ServeConfig;
use crate::lifecycle::LifecycleController;
use crate::mailbox::{Entry, Mailbox, Pending};
use crate::metrics::{MetricsSnapshot, ResponseKind, ServeMetrics};
use ranknet_core::engine::{
    currank_forecast, EngineError, EngineForecast, ForecastEngine, ForecastRequest,
};
use ranknet_core::features::RaceContext;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// A forecast query addressed to the serving layer. `race` indexes the
/// context slice handed to [`serve`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ServeRequest {
    pub race: usize,
    pub origin: usize,
    pub horizon: usize,
    pub n_samples: usize,
    /// Time budget measured from submission. A request still queued once
    /// this much time has passed degrades to the CurRank fallback instead
    /// of blocking the caller on the model. `Some(ZERO)` always degrades —
    /// useful for forcing the fallback path in tests. `None` never expires.
    pub deadline: Option<Duration>,
}

impl ServeRequest {
    pub fn new(race: usize, origin: usize, horizon: usize, n_samples: usize) -> ServeRequest {
        ServeRequest {
            race,
            origin,
            horizon,
            n_samples,
            deadline: None,
        }
    }

    pub fn with_deadline(mut self, deadline: Duration) -> ServeRequest {
        self.deadline = Some(deadline);
        self
    }
}

/// Why a response carries the CurRank fallback instead of a model forecast.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FallbackReason {
    /// The request sat in the queue past its deadline.
    DeadlineExpired,
    /// The worker panicked while forecasting this request.
    WorkerPanic,
    /// The request was queued on a shard whose worker died; the
    /// supervisor answered the backlog while restarting the shard.
    ShardFailure,
}

/// A served forecast.
#[derive(Clone, Debug)]
pub struct ServeResponse {
    /// Admission id — unique within its region (per shard, under sharded
    /// serving), assigned in submission order.
    pub id: u64,
    pub forecast: EngineForecast,
    /// `Some` when the model never ran and the CurRank fallback answered.
    pub fallback: Option<FallbackReason>,
    /// How many requests shared this response's engine batch.
    pub batch_size: usize,
}

/// A request the scheduler could not answer at all.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// Engine validation rejected the request (also returned when a
    /// fallback was needed but the request was too malformed to build one).
    Invalid(EngineError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Invalid(e) => write!(f, "invalid request: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

pub type ServeResult = Result<ServeResponse, ServeError>;

/// Why a submission was refused at the door (the request never entered the
/// queue and will get no response).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control: the queue is at capacity.
    QueueFull { capacity: usize },
    /// The serving scope is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One serving region's shared state: the flat region or one race shard.
pub(crate) struct Shared<'a> {
    pub(crate) engine: &'a ForecastEngine,
    pub(crate) contexts: &'a [&'a RaceContext],
    pub(crate) cfg: ServeConfig,
    pub(crate) mailbox: Mailbox,
    pub(crate) metrics: ServeMetrics,
    /// Shadow-evaluation / hot-swap controller, when serving under
    /// [`serve_with_lifecycle`].
    pub(crate) lifecycle: Option<&'a LifecycleController>,
    /// Shard index under sharded serving; `None` in the flat region. Used
    /// only for fault targeting — never for scheduling decisions, which is
    /// what keeps placement invisible in the output bits.
    #[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
    pub(crate) shard: Option<usize>,
}

impl<'a> Shared<'a> {
    pub(crate) fn new(
        engine: &'a ForecastEngine,
        contexts: &'a [&'a RaceContext],
        cfg: ServeConfig,
        lifecycle: Option<&'a LifecycleController>,
        shard: Option<usize>,
    ) -> Shared<'a> {
        Shared {
            engine,
            contexts,
            cfg,
            mailbox: Mailbox::new(cfg.queue_capacity),
            metrics: ServeMetrics::new(),
            lifecycle,
            shard,
        }
    }
}

/// Submission handle passed to the [`serve`] body; `Copy`, so it can be
/// handed to any number of client threads inside the scope.
#[derive(Clone, Copy)]
pub struct ServeClient<'s, 'a> {
    shared: &'s Shared<'a>,
}

impl ServeClient<'_, '_> {
    /// Submit without blocking on the forecast. Admission is all-or-nothing:
    /// `Ok` means the request is queued and will be answered; `Err` means
    /// it never entered the queue.
    pub fn submit(&self, req: ServeRequest) -> Result<Pending, SubmitError> {
        self.shared.mailbox.submit(req, &self.shared.metrics)
    }

    /// Submit and block until the response arrives.
    pub fn forecast(&self, req: ServeRequest) -> Result<ServeResult, SubmitError> {
        self.submit(req).map(Pending::wait)
    }

    /// Live counter snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Current submission-queue depth (requests admitted, not yet picked
    /// up by a worker).
    pub fn queue_depth(&self) -> usize {
        self.shared.mailbox.depth()
    }
}

/// Has `entry` outlived its deadline after waiting `waited`? Shared by the
/// threaded scheduler and the deterministic replay so the two agree.
pub(crate) fn deadline_expired(waited: Duration, deadline: Option<Duration>) -> bool {
    deadline.is_some_and(|d| waited >= d)
}

/// Run a serving scope: spawn `cfg.workers` scheduler threads over
/// `engine`, hand the body a [`ServeClient`], and on return close
/// admission, drain the queue, join the workers, and report the final
/// metrics. Requests reference `contexts` by index, exactly like
/// [`ForecastEngine::try_forecast_batch`].
pub fn serve<R>(
    engine: &ForecastEngine,
    contexts: &[&RaceContext],
    cfg: &ServeConfig,
    body: impl FnOnce(ServeClient<'_, '_>) -> R,
) -> (R, MetricsSnapshot) {
    serve_inner(engine, contexts, cfg, None, body)
}

/// [`serve`] with a model-lifecycle controller attached: while a candidate
/// is staged, sampled healthy responses are shadow-compared against it,
/// and the controller's promote / rollback decisions (including hot-swaps
/// of `engine`'s model slot) happen inside the region. The controller's
/// swap / rollback / divergence tallies are folded into the returned
/// metrics, and the `rpf_model_version` gauge reports the version serving
/// at region end.
pub fn serve_with_lifecycle<R>(
    engine: &ForecastEngine,
    contexts: &[&RaceContext],
    cfg: &ServeConfig,
    lifecycle: &LifecycleController,
    body: impl FnOnce(ServeClient<'_, '_>) -> R,
) -> (R, MetricsSnapshot) {
    serve_inner(engine, contexts, cfg, Some(lifecycle), body)
}

fn serve_inner<R>(
    engine: &ForecastEngine,
    contexts: &[&RaceContext],
    cfg: &ServeConfig,
    lifecycle: Option<&LifecycleController>,
    body: impl FnOnce(ServeClient<'_, '_>) -> R,
) -> (R, MetricsSnapshot) {
    let cfg = cfg.normalized();
    let shared = Shared::new(engine, contexts, cfg, lifecycle, None);

    let out = std::thread::scope(|s| {
        for _ in 0..cfg.workers {
            s.spawn(|| worker_loop(&shared));
        }
        let out = body(ServeClient { shared: &shared });
        shared.mailbox.close();
        out
    });
    if let Some(lc) = lifecycle {
        lc.flush_into(&shared.metrics, engine);
    } else {
        shared.metrics.set_model_version(engine.model_version());
    }
    (out, shared.metrics.snapshot())
}

/// What a worker found when it asked the mailbox for work.
pub(crate) enum NextStep {
    Batch(Vec<Entry>),
    Shutdown,
    /// An injected shard-kill fault targets this worker: the entries it
    /// was about to drain stay queued, and the worker must die *outside*
    /// the poison-recovery catch so the supervisor sees a real death.
    #[cfg(feature = "fault-inject")]
    Kill,
}

pub(crate) fn worker_loop(shared: &Shared<'_>) {
    loop {
        // `next_batch` can only panic via an injected queue-lock fault (the
        // fault-inject matrix); it mutates nothing before its final drain,
        // so catching here loses no entries — the mutex is merely poisoned,
        // and the next lock recovers it.
        let step = match catch_unwind(AssertUnwindSafe(|| next_batch(shared))) {
            Ok(step) => step,
            Err(_) => {
                shared.metrics.record_queue_poison_recovery();
                continue;
            }
        };
        match step {
            NextStep::Batch(batch) => serve_batch(shared, batch),
            NextStep::Shutdown => return,
            #[cfg(feature = "fault-inject")]
            NextStep::Kill => panic!("injected fault: shard worker killed"),
        }
    }
}

/// Block until a batch can be formed (or shutdown empties the world).
/// Dynamic micro-batching: once at least one request is queued, hold the
/// batch open until it reaches `max_batch` or the oldest request has
/// waited `max_delay`, then drain up to `max_batch` entries. During
/// shutdown the hold is skipped so the queue drains immediately.
fn next_batch(shared: &Shared<'_>) -> NextStep {
    let mut q = shared.mailbox.lock();
    #[cfg(feature = "fault-inject")]
    crate::fault::maybe_poison_queue_lock(shared.shard);
    'outer: loop {
        while q.entries.is_empty() {
            if q.shutdown {
                return NextStep::Shutdown;
            }
            q = shared
                .mailbox
                .wakeup
                .wait(q)
                .unwrap_or_else(|p| p.into_inner());
        }
        while q.entries.len() < shared.cfg.max_batch && !q.shutdown {
            let oldest = match q.entries.front() {
                Some(e) => e.enqueued,
                None => continue 'outer,
            };
            let waited = oldest.elapsed();
            if waited >= shared.cfg.max_delay {
                break;
            }
            q = shared
                .mailbox
                .wakeup
                .wait_timeout(q, shared.cfg.max_delay - waited)
                .unwrap_or_else(|p| p.into_inner())
                .0;
            if q.entries.is_empty() {
                // A sibling worker drained the queue while we waited.
                continue 'outer;
            }
        }
        let n = q.entries.len().min(shared.cfg.max_batch);
        #[cfg(feature = "fault-inject")]
        {
            let ids: Vec<u64> = q.entries.iter().take(n).map(|e| e.id).collect();
            if crate::fault::should_kill_worker(shared.shard, &ids) {
                return NextStep::Kill;
            }
        }
        return NextStep::Batch(q.entries.drain(..n).collect());
    }
}

fn serve_batch(shared: &Shared<'_>, batch: Vec<Entry>) {
    let batch_size = batch.len();
    shared.metrics.record_batch(batch_size as u64);

    // Deadline triage: expired requests answer immediately with the
    // fallback instead of holding a seat in the engine batch.
    let mut live: Vec<Entry> = Vec::with_capacity(batch_size);
    for e in batch {
        if deadline_expired(e.enqueued.elapsed(), e.req.deadline) {
            deliver_fallback(shared, e, FallbackReason::DeadlineExpired, batch_size);
        } else {
            live.push(e);
        }
    }
    if live.is_empty() {
        return;
    }

    let requests: Vec<ForecastRequest> = live
        .iter()
        .map(|e| ForecastRequest {
            race: e.req.race,
            origin: e.req.origin,
            horizon: e.req.horizon,
            n_samples: e.req.n_samples,
        })
        .collect();

    // Lifecycle fault hook: fire a planned swap while this batch is
    // between formation and its engine call ("swap mid-batch" /
    // "swap during shutdown-drain" in the fault matrix). The hook runs
    // outside the catch_unwind below, so a hook that lets a swap panic
    // escape would kill the worker — planned hooks guard their own swaps
    // (see `LifecycleController::swap_now_slot`).
    #[cfg(feature = "fault-inject")]
    for e in &live {
        crate::fault::maybe_fire_swap(e.id);
    }

    let attempt = catch_unwind(AssertUnwindSafe(|| {
        #[cfg(feature = "fault-inject")]
        for e in &live {
            crate::fault::maybe_panic_request(e.id);
        }
        shared
            .engine
            .forecast_batch_entries(shared.contexts, &requests)
    }));

    match attempt {
        Ok(results) => {
            for (e, res) in live.into_iter().zip(results) {
                deliver_engine_result(shared, e, res, batch_size);
            }
        }
        Err(_) => {
            // A panic mid-batch: contain it, then retry one request at a
            // time so only the poisoned request degrades.
            shared.metrics.record_worker_panic();
            for e in live {
                let single = catch_unwind(AssertUnwindSafe(|| {
                    #[cfg(feature = "fault-inject")]
                    crate::fault::maybe_panic_request(e.id);
                    let req = &e.req;
                    if req.race >= shared.contexts.len() {
                        Err(EngineError::RaceOutOfRange {
                            race: req.race,
                            n_contexts: shared.contexts.len(),
                        })
                    } else {
                        shared.engine.try_forecast_keyed(
                            req.race,
                            shared.contexts[req.race],
                            req.origin,
                            req.horizon,
                            req.n_samples,
                        )
                    }
                }));
                match single {
                    Ok(res) => deliver_engine_result(shared, e, res, 1),
                    Err(_) => {
                        shared.metrics.record_worker_panic();
                        deliver_fallback(shared, e, FallbackReason::WorkerPanic, 1);
                    }
                }
            }
        }
    }
}

fn deliver_engine_result(
    shared: &Shared<'_>,
    e: Entry,
    res: Result<EngineForecast, EngineError>,
    batch_size: usize,
) {
    // Shadow evaluation (sampled): compare the live answer against a
    // staged candidate before delivery, so the decision sequence is a pure
    // function of the admission order. Only sampled admissions pay the
    // candidate's inline forecast.
    if let (Some(lc), Ok(forecast)) = (shared.lifecycle, &res) {
        lc.observe(shared.engine, shared.contexts, e.id, &e.req, forecast);
    }
    let (kind, result) = match res {
        Ok(forecast) => (
            ResponseKind::Ok,
            Ok(ServeResponse {
                id: e.id,
                forecast,
                fallback: None,
                batch_size,
            }),
        ),
        Err(err) => (ResponseKind::Invalid, Err(ServeError::Invalid(err))),
    };
    shared
        .metrics
        .record_response(kind, e.enqueued.elapsed().as_nanos() as u64);
    e.slot.deliver(result);
}

/// Answer with the model-free CurRank persistence forecast, flagged with
/// `reason`. If even the fallback is impossible (malformed request), the
/// typed validation error goes out instead — the caller is never left
/// waiting.
pub(crate) fn deliver_fallback(
    shared: &Shared<'_>,
    e: Entry,
    reason: FallbackReason,
    batch_size: usize,
) {
    let req = &e.req;
    let built = if req.race >= shared.contexts.len() {
        Err(EngineError::RaceOutOfRange {
            race: req.race,
            n_contexts: shared.contexts.len(),
        })
    } else {
        currank_forecast(
            shared.contexts[req.race],
            req.origin,
            req.horizon,
            req.n_samples,
        )
    };
    let (kind, result) = match built {
        Ok(forecast) => (
            match reason {
                FallbackReason::DeadlineExpired => ResponseKind::FallbackDeadline,
                FallbackReason::WorkerPanic => ResponseKind::FallbackPanic,
                FallbackReason::ShardFailure => ResponseKind::FallbackShard,
            },
            Ok(ServeResponse {
                id: e.id,
                forecast,
                fallback: Some(reason),
                batch_size,
            }),
        ),
        Err(err) => (ResponseKind::Invalid, Err(ServeError::Invalid(err))),
    };
    shared
        .metrics
        .record_response(kind, e.enqueued.elapsed().as_nanos() as u64);
    e.slot.deliver(result);
}
