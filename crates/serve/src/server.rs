//! The scheduler: bounded admission, dynamic micro-batching, worker
//! threads, per-request deadlines, and panic containment.
//!
//! # Determinism contract
//!
//! The engine derives every random draw from `(engine seed, race, origin)`
//! — request identity, never batch position or worker id. The scheduler
//! therefore has one hard invariant to preserve and it preserves it by
//! construction: a request's result is bit-identical to a direct
//! [`ForecastEngine::try_forecast_keyed`] call no matter which batch it
//! lands in, which worker runs it, or in what order requests arrived.
//! Batching, worker count and arrival jitter move *time*, never bits.
//!
//! # Failure model
//!
//! * **Queue full** — admission rejects with [`SubmitError::QueueFull`];
//!   the queue never exceeds its configured depth.
//! * **Deadline expiry** — a request still queued past its deadline is
//!   answered with the CurRank persistence fallback, flagged
//!   [`FallbackReason::DeadlineExpired`]; it never blocks the caller
//!   further and never runs the model.
//! * **Worker panic mid-batch** — the engine call runs under
//!   `catch_unwind`; on a panic the batch is retried one request at a
//!   time, so the poisoned request degrades to a flagged CurRank fallback
//!   while its neighbours still get real forecasts. Nothing hangs, nothing
//!   is dropped.
//! * **Poisoned queue mutex** — every queue lock recovers a poisoned
//!   guard (`into_inner`); queue state is plain data, so recovery is safe.
//! * **Shutdown** — when the body closure returns, admission closes
//!   ([`SubmitError::ShuttingDown`]) and workers drain every queued
//!   request before exiting: accepted always implies answered.

use crate::config::ServeConfig;
use crate::lifecycle::LifecycleController;
use crate::metrics::{MetricsSnapshot, ResponseKind, ServeMetrics};
use ranknet_core::engine::{
    currank_forecast, EngineError, EngineForecast, ForecastEngine, ForecastRequest,
};
use ranknet_core::features::RaceContext;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// A forecast query addressed to the serving layer. `race` indexes the
/// context slice handed to [`serve`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ServeRequest {
    pub race: usize,
    pub origin: usize,
    pub horizon: usize,
    pub n_samples: usize,
    /// Time budget measured from submission. A request still queued once
    /// this much time has passed degrades to the CurRank fallback instead
    /// of blocking the caller on the model. `Some(ZERO)` always degrades —
    /// useful for forcing the fallback path in tests. `None` never expires.
    pub deadline: Option<Duration>,
}

impl ServeRequest {
    pub fn new(race: usize, origin: usize, horizon: usize, n_samples: usize) -> ServeRequest {
        ServeRequest {
            race,
            origin,
            horizon,
            n_samples,
            deadline: None,
        }
    }

    pub fn with_deadline(mut self, deadline: Duration) -> ServeRequest {
        self.deadline = Some(deadline);
        self
    }
}

/// Why a response carries the CurRank fallback instead of a model forecast.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FallbackReason {
    /// The request sat in the queue past its deadline.
    DeadlineExpired,
    /// The worker panicked while forecasting this request.
    WorkerPanic,
}

/// A served forecast.
#[derive(Clone, Debug)]
pub struct ServeResponse {
    /// Admission id — unique, assigned in submission order.
    pub id: u64,
    pub forecast: EngineForecast,
    /// `Some` when the model never ran and the CurRank fallback answered.
    pub fallback: Option<FallbackReason>,
    /// How many requests shared this response's engine batch.
    pub batch_size: usize,
}

/// A request the scheduler could not answer at all.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// Engine validation rejected the request (also returned when a
    /// fallback was needed but the request was too malformed to build one).
    Invalid(EngineError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Invalid(e) => write!(f, "invalid request: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

pub type ServeResult = Result<ServeResponse, ServeError>;

/// Why a submission was refused at the door (the request never entered the
/// queue and will get no response).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control: the queue is at capacity.
    QueueFull { capacity: usize },
    /// The serving scope is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One-shot response slot a worker fills and a caller waits on.
struct Slot {
    state: Mutex<Option<ServeResult>>,
    ready: Condvar,
}

impl Slot {
    fn deliver(&self, result: ServeResult) {
        let mut guard = self.state.lock().unwrap_or_else(|p| p.into_inner());
        *guard = Some(result);
        self.ready.notify_all();
    }
}

/// Handle to a submitted request; [`Pending::wait`] blocks until the
/// scheduler answers (workers drain the queue on shutdown, so an accepted
/// request is always answered).
pub struct Pending {
    id: u64,
    slot: Arc<Slot>,
}

impl Pending {
    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn wait(self) -> ServeResult {
        let mut guard = self.slot.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = self
                .slot
                .ready
                .wait(guard)
                .unwrap_or_else(|p| p.into_inner());
        }
    }
}

struct Entry {
    id: u64,
    req: ServeRequest,
    enqueued: Instant,
    slot: Arc<Slot>,
}

struct QueueState {
    entries: VecDeque<Entry>,
    shutdown: bool,
    next_id: u64,
}

struct Shared<'a> {
    engine: &'a ForecastEngine,
    contexts: &'a [&'a RaceContext],
    cfg: ServeConfig,
    queue: Mutex<QueueState>,
    wakeup: Condvar,
    metrics: ServeMetrics,
    /// Shadow-evaluation / hot-swap controller, when serving under
    /// [`serve_with_lifecycle`].
    lifecycle: Option<&'a LifecycleController>,
}

impl<'a> Shared<'a> {
    /// Queue state is plain data; recover a poisoned guard instead of
    /// propagating — one crashed lock-holder must not wedge the scheduler.
    fn lock_queue(&self) -> MutexGuard<'_, QueueState> {
        self.queue.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Submission handle passed to the [`serve`] body; `Copy`, so it can be
/// handed to any number of client threads inside the scope.
#[derive(Clone, Copy)]
pub struct ServeClient<'s, 'a> {
    shared: &'s Shared<'a>,
}

impl ServeClient<'_, '_> {
    /// Submit without blocking on the forecast. Admission is all-or-nothing:
    /// `Ok` means the request is queued and will be answered; `Err` means
    /// it never entered the queue.
    pub fn submit(&self, req: ServeRequest) -> Result<Pending, SubmitError> {
        let shared = self.shared;
        shared.metrics.record_submitted();
        let mut q = shared.lock_queue();
        if q.shutdown {
            shared.metrics.record_rejected_shutdown();
            return Err(SubmitError::ShuttingDown);
        }
        if q.entries.len() >= shared.cfg.queue_capacity {
            shared.metrics.record_rejected_full();
            return Err(SubmitError::QueueFull {
                capacity: shared.cfg.queue_capacity,
            });
        }
        q.next_id += 1;
        let id = q.next_id;
        let slot = Arc::new(Slot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        });
        q.entries.push_back(Entry {
            id,
            req,
            enqueued: Instant::now(),
            slot: Arc::clone(&slot),
        });
        shared.metrics.record_accepted(q.entries.len() as u64);
        drop(q);
        shared.wakeup.notify_one();
        Ok(Pending { id, slot })
    }

    /// Submit and block until the response arrives.
    pub fn forecast(&self, req: ServeRequest) -> Result<ServeResult, SubmitError> {
        self.submit(req).map(Pending::wait)
    }

    /// Live counter snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Current submission-queue depth (requests admitted, not yet picked
    /// up by a worker).
    pub fn queue_depth(&self) -> usize {
        self.shared.lock_queue().entries.len()
    }
}

/// Has `entry` outlived its deadline after waiting `waited`? Shared by the
/// threaded scheduler and the deterministic replay so the two agree.
pub(crate) fn deadline_expired(waited: Duration, deadline: Option<Duration>) -> bool {
    deadline.is_some_and(|d| waited >= d)
}

/// Run a serving scope: spawn `cfg.workers` scheduler threads over
/// `engine`, hand the body a [`ServeClient`], and on return close
/// admission, drain the queue, join the workers, and report the final
/// metrics. Requests reference `contexts` by index, exactly like
/// [`ForecastEngine::try_forecast_batch`].
pub fn serve<R>(
    engine: &ForecastEngine,
    contexts: &[&RaceContext],
    cfg: &ServeConfig,
    body: impl FnOnce(ServeClient<'_, '_>) -> R,
) -> (R, MetricsSnapshot) {
    serve_inner(engine, contexts, cfg, None, body)
}

/// [`serve`] with a model-lifecycle controller attached: while a candidate
/// is staged, sampled healthy responses are shadow-compared against it,
/// and the controller's promote / rollback decisions (including hot-swaps
/// of `engine`'s model slot) happen inside the region. The controller's
/// swap / rollback / divergence tallies are folded into the returned
/// metrics, and the `rpf_model_version` gauge reports the version serving
/// at region end.
pub fn serve_with_lifecycle<R>(
    engine: &ForecastEngine,
    contexts: &[&RaceContext],
    cfg: &ServeConfig,
    lifecycle: &LifecycleController,
    body: impl FnOnce(ServeClient<'_, '_>) -> R,
) -> (R, MetricsSnapshot) {
    serve_inner(engine, contexts, cfg, Some(lifecycle), body)
}

fn serve_inner<R>(
    engine: &ForecastEngine,
    contexts: &[&RaceContext],
    cfg: &ServeConfig,
    lifecycle: Option<&LifecycleController>,
    body: impl FnOnce(ServeClient<'_, '_>) -> R,
) -> (R, MetricsSnapshot) {
    let cfg = cfg.normalized();
    let shared = Shared {
        engine,
        contexts,
        cfg,
        queue: Mutex::new(QueueState {
            entries: VecDeque::new(),
            shutdown: false,
            next_id: 0,
        }),
        wakeup: Condvar::new(),
        metrics: ServeMetrics::new(),
        lifecycle,
    };

    let out = std::thread::scope(|s| {
        for _ in 0..cfg.workers {
            s.spawn(|| worker_loop(&shared));
        }
        let out = body(ServeClient { shared: &shared });
        shared.lock_queue().shutdown = true;
        shared.wakeup.notify_all();
        out
    });
    if let Some(lc) = lifecycle {
        lc.flush_into(&shared.metrics, engine);
    } else {
        shared.metrics.set_model_version(engine.model_version());
    }
    (out, shared.metrics.snapshot())
}

fn worker_loop(shared: &Shared<'_>) {
    loop {
        // `next_batch` can only panic via an injected queue-lock fault (the
        // fault-inject matrix); it mutates nothing before its final drain,
        // so catching here loses no entries — the mutex is merely poisoned,
        // and the next lock recovers it.
        let batch = match catch_unwind(AssertUnwindSafe(|| next_batch(shared))) {
            Ok(batch) => batch,
            Err(_) => {
                shared.metrics.record_queue_poison_recovery();
                continue;
            }
        };
        match batch {
            Some(batch) => serve_batch(shared, batch),
            None => return,
        }
    }
}

/// Block until a batch can be formed (or shutdown empties the world).
/// Dynamic micro-batching: once at least one request is queued, hold the
/// batch open until it reaches `max_batch` or the oldest request has
/// waited `max_delay`, then drain up to `max_batch` entries. During
/// shutdown the hold is skipped so the queue drains immediately.
fn next_batch(shared: &Shared<'_>) -> Option<Vec<Entry>> {
    let mut q = shared.lock_queue();
    #[cfg(feature = "fault-inject")]
    crate::fault::maybe_poison_queue_lock();
    'outer: loop {
        while q.entries.is_empty() {
            if q.shutdown {
                return None;
            }
            q = shared.wakeup.wait(q).unwrap_or_else(|p| p.into_inner());
        }
        while q.entries.len() < shared.cfg.max_batch && !q.shutdown {
            let oldest = match q.entries.front() {
                Some(e) => e.enqueued,
                None => continue 'outer,
            };
            let waited = oldest.elapsed();
            if waited >= shared.cfg.max_delay {
                break;
            }
            q = shared
                .wakeup
                .wait_timeout(q, shared.cfg.max_delay - waited)
                .unwrap_or_else(|p| p.into_inner())
                .0;
            if q.entries.is_empty() {
                // A sibling worker drained the queue while we waited.
                continue 'outer;
            }
        }
        let n = q.entries.len().min(shared.cfg.max_batch);
        return Some(q.entries.drain(..n).collect());
    }
}

fn serve_batch(shared: &Shared<'_>, batch: Vec<Entry>) {
    let batch_size = batch.len();
    shared.metrics.record_batch(batch_size as u64);

    // Deadline triage: expired requests answer immediately with the
    // fallback instead of holding a seat in the engine batch.
    let mut live: Vec<Entry> = Vec::with_capacity(batch_size);
    for e in batch {
        if deadline_expired(e.enqueued.elapsed(), e.req.deadline) {
            deliver_fallback(shared, e, FallbackReason::DeadlineExpired, batch_size);
        } else {
            live.push(e);
        }
    }
    if live.is_empty() {
        return;
    }

    let requests: Vec<ForecastRequest> = live
        .iter()
        .map(|e| ForecastRequest {
            race: e.req.race,
            origin: e.req.origin,
            horizon: e.req.horizon,
            n_samples: e.req.n_samples,
        })
        .collect();

    // Lifecycle fault hook: fire a planned swap while this batch is
    // between formation and its engine call ("swap mid-batch" /
    // "swap during shutdown-drain" in the fault matrix). The hook runs
    // outside the catch_unwind below, so a hook that lets a swap panic
    // escape would kill the worker — planned hooks guard their own swaps
    // (see `LifecycleController::swap_now_slot`).
    #[cfg(feature = "fault-inject")]
    for e in &live {
        crate::fault::maybe_fire_swap(e.id);
    }

    let attempt = catch_unwind(AssertUnwindSafe(|| {
        #[cfg(feature = "fault-inject")]
        for e in &live {
            crate::fault::maybe_panic_request(e.id);
        }
        shared
            .engine
            .forecast_batch_entries(shared.contexts, &requests)
    }));

    match attempt {
        Ok(results) => {
            for (e, res) in live.into_iter().zip(results) {
                deliver_engine_result(shared, e, res, batch_size);
            }
        }
        Err(_) => {
            // A panic mid-batch: contain it, then retry one request at a
            // time so only the poisoned request degrades.
            shared.metrics.record_worker_panic();
            for e in live {
                let single = catch_unwind(AssertUnwindSafe(|| {
                    #[cfg(feature = "fault-inject")]
                    crate::fault::maybe_panic_request(e.id);
                    let req = &e.req;
                    if req.race >= shared.contexts.len() {
                        Err(EngineError::RaceOutOfRange {
                            race: req.race,
                            n_contexts: shared.contexts.len(),
                        })
                    } else {
                        shared.engine.try_forecast_keyed(
                            req.race,
                            shared.contexts[req.race],
                            req.origin,
                            req.horizon,
                            req.n_samples,
                        )
                    }
                }));
                match single {
                    Ok(res) => deliver_engine_result(shared, e, res, 1),
                    Err(_) => {
                        shared.metrics.record_worker_panic();
                        deliver_fallback(shared, e, FallbackReason::WorkerPanic, 1);
                    }
                }
            }
        }
    }
}

fn deliver_engine_result(
    shared: &Shared<'_>,
    e: Entry,
    res: Result<EngineForecast, EngineError>,
    batch_size: usize,
) {
    // Shadow evaluation (sampled): compare the live answer against a
    // staged candidate before delivery, so the decision sequence is a pure
    // function of the admission order. Only sampled admissions pay the
    // candidate's inline forecast.
    if let (Some(lc), Ok(forecast)) = (shared.lifecycle, &res) {
        lc.observe(shared.engine, shared.contexts, e.id, &e.req, forecast);
    }
    let (kind, result) = match res {
        Ok(forecast) => (
            ResponseKind::Ok,
            Ok(ServeResponse {
                id: e.id,
                forecast,
                fallback: None,
                batch_size,
            }),
        ),
        Err(err) => (ResponseKind::Invalid, Err(ServeError::Invalid(err))),
    };
    shared
        .metrics
        .record_response(kind, e.enqueued.elapsed().as_nanos() as u64);
    e.slot.deliver(result);
}

/// Answer with the model-free CurRank persistence forecast, flagged with
/// `reason`. If even the fallback is impossible (malformed request), the
/// typed validation error goes out instead — the caller is never left
/// waiting.
fn deliver_fallback(shared: &Shared<'_>, e: Entry, reason: FallbackReason, batch_size: usize) {
    let req = &e.req;
    let built = if req.race >= shared.contexts.len() {
        Err(EngineError::RaceOutOfRange {
            race: req.race,
            n_contexts: shared.contexts.len(),
        })
    } else {
        currank_forecast(
            shared.contexts[req.race],
            req.origin,
            req.horizon,
            req.n_samples,
        )
    };
    let (kind, result) = match built {
        Ok(forecast) => (
            match reason {
                FallbackReason::DeadlineExpired => ResponseKind::FallbackDeadline,
                FallbackReason::WorkerPanic => ResponseKind::FallbackPanic,
            },
            Ok(ServeResponse {
                id: e.id,
                forecast,
                fallback: Some(reason),
                batch_size,
            }),
        ),
        Err(err) => (ResponseKind::Invalid, Err(ServeError::Invalid(err))),
    };
    shared
        .metrics
        .record_response(kind, e.enqueued.elapsed().as_nanos() as u64);
    e.slot.deliver(result);
}
