//! Deterministic fault injection for the serving scheduler (behind the
//! `fault-inject` feature), mirroring `rpf_nn::fault`: tests *plan* faults
//! at exact request ids, and the production scheduler paths hit them for
//! real — a worker panic mid-batch, a queue mutex poisoned while held.
//! Plans are keyed by the admission id (assigned in submission order),
//! never by wall clock, so a fault fires at the same request on every run.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// A reproducible set of scheduler faults.
#[derive(Clone, Default)]
pub struct ServeFaultPlan {
    panic_requests: BTreeSet<u64>,
    poison_queue_once: bool,
    /// `(admission id, hook)` — fire the hook once, from the worker thread,
    /// while the batch containing that admission sits between formation
    /// and its engine call.
    swap_hook: Option<(u64, Arc<dyn Fn() + Send + Sync>)>,
    /// `(shard, admission id)` — kill the worker on that shard when it is
    /// about to drain a batch containing that admission id (the entries
    /// stay queued; the supervisor fallback-drains them).
    kill_worker: Option<(usize, u64)>,
    /// Poison the mailbox mutex of this shard, once.
    poison_shard: Option<usize>,
    /// Panic the slot-swap at this shard index during a rolling hot-swap.
    rolling_panic_shard: Option<usize>,
}

impl std::fmt::Debug for ServeFaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeFaultPlan")
            .field("panic_requests", &self.panic_requests)
            .field("poison_queue_once", &self.poison_queue_once)
            .field("swap_at", &self.swap_hook.as_ref().map(|(id, _)| *id))
            .field("kill_worker", &self.kill_worker)
            .field("poison_shard", &self.poison_shard)
            .field("rolling_panic_shard", &self.rolling_panic_shard)
            .finish()
    }
}

impl ServeFaultPlan {
    pub fn new() -> ServeFaultPlan {
        ServeFaultPlan::default()
    }

    /// Panic the worker while it is forecasting admission id `id` — both
    /// in the batched attempt and in the one-at-a-time retry, so the
    /// request degrades to the flagged fallback.
    pub fn panic_on_request(mut self, id: u64) -> ServeFaultPlan {
        self.panic_requests.insert(id);
        self
    }

    /// Panic the next worker that takes the queue lock, while it holds the
    /// guard — poisoning the mutex for everyone after it. Fires once.
    pub fn poison_queue_once(mut self) -> ServeFaultPlan {
        self.poison_queue_once = true;
        self
    }

    /// Run `hook` from the worker thread serving admission id `id`, while
    /// that batch is mid-flight (formed, engine not yet called). The hook
    /// typically performs a model hot-swap — pair it with
    /// `ranknet_core::lifecycle::fault::arm_panic_next_swap` for the
    /// "panic mid-swap under traffic" matrix entries. Fires once. The hook
    /// runs *outside* the scheduler's panic containment: it must catch its
    /// own panics (`LifecycleController::swap_now_slot` does).
    pub fn swap_on_request(
        mut self,
        id: u64,
        hook: impl Fn() + Send + Sync + 'static,
    ) -> ServeFaultPlan {
        self.swap_hook = Some((id, Arc::new(hook)));
        self
    }

    /// Kill the worker on `shard` as it is about to drain a batch holding
    /// admission id `id`: the worker dies with the entries still queued, so
    /// the shard's supervisor must fallback-drain the backlog and respawn.
    /// Fires once.
    pub fn kill_shard_worker(mut self, shard: usize, id: u64) -> ServeFaultPlan {
        self.kill_worker = Some((shard, id));
        self
    }

    /// Poison the mailbox mutex of `shard` — the sharded analogue of
    /// [`ServeFaultPlan::poison_queue_once`]. Fires once.
    pub fn poison_shard_mailbox(mut self, shard: usize) -> ServeFaultPlan {
        self.poison_shard = Some(shard);
        self
    }

    /// Panic the per-shard slot swap at shard index `shard` during a
    /// rolling hot-swap (`LifecycleController::rolling_swap`), forcing the
    /// reverse-order unwind of the shards already swapped. Fires once.
    pub fn panic_on_rolling_shard(mut self, shard: usize) -> ServeFaultPlan {
        self.rolling_panic_shard = Some(shard);
        self
    }
}

static PLAN: Mutex<Option<ServeFaultPlan>> = Mutex::new(None);

fn plan_lock() -> std::sync::MutexGuard<'static, Option<ServeFaultPlan>> {
    // A test that panicked holding the lock must not poison every later
    // test: the plan is plain data, recover it.
    PLAN.lock().unwrap_or_else(|p| p.into_inner())
}

/// Install `plan` process-wide. Tests sharing a binary must serialize
/// around this global.
pub fn install(plan: ServeFaultPlan) {
    *plan_lock() = Some(plan);
}

/// Remove any installed plan; subsequent hooks are no-ops.
pub fn clear() {
    *plan_lock() = None;
}

/// Worker hook: panics if the plan targets admission id `id`. Called
/// inside the scheduler's `catch_unwind` region.
pub fn maybe_panic_request(id: u64) {
    let planned = plan_lock()
        .as_ref()
        .is_some_and(|p| p.panic_requests.contains(&id));
    if planned {
        panic!("injected fault: worker panic on request {id}");
    }
}

/// Batch hook: consumes and fires the planned swap hook if it targets
/// admission id `id`. Called per live batch entry, after batch formation
/// and before the engine attempt.
pub fn maybe_fire_swap(id: u64) {
    let hook = {
        let mut guard = plan_lock();
        match guard.as_mut() {
            Some(p) if p.swap_hook.as_ref().is_some_and(|(at, _)| *at == id) => {
                p.swap_hook.take().map(|(_, h)| h)
            }
            _ => None,
        }
    };
    if let Some(h) = hook {
        h();
    }
}

/// Queue hook: panics while the caller holds its mailbox guard, leaving
/// the mutex poisoned behind it. Fires on the legacy region-wide
/// `poison_queue_once` flag, or — under sharded serving — when the plan
/// targets this worker's shard. Consumes whichever flag fired.
pub fn maybe_poison_queue_lock(shard: Option<usize>) {
    let fire = {
        let mut guard = plan_lock();
        match guard.as_mut() {
            Some(p) if p.poison_queue_once => {
                p.poison_queue_once = false;
                true
            }
            Some(p) if p.poison_shard.is_some() && p.poison_shard == shard => {
                p.poison_shard = None;
                true
            }
            _ => false,
        }
    };
    if fire {
        panic!("injected fault: poisoning the queue mutex");
    }
}

/// Batch hook: does the plan kill the worker on `shard` for a batch that
/// would drain these admission ids? Consumes the fault on a match. Called
/// *before* the drain, so the targeted entries stay queued for the
/// supervisor's fallback drain.
pub fn should_kill_worker(shard: Option<usize>, ids: &[u64]) -> bool {
    let mut guard = plan_lock();
    match guard.as_mut() {
        Some(p)
            if p.kill_worker
                .is_some_and(|(s, id)| Some(s) == shard && ids.contains(&id)) =>
        {
            p.kill_worker = None;
            true
        }
        _ => false,
    }
}

/// Rolling-swap hook: panics if the plan targets shard index `shard` of a
/// rolling hot-swap. Consumes the fault. Called inside
/// `LifecycleController::rolling_swap`'s per-shard panic guard.
pub fn maybe_panic_rolling_shard(shard: usize) {
    let fire = {
        let mut guard = plan_lock();
        match guard.as_mut() {
            Some(p) if p.rolling_panic_shard == Some(shard) => {
                p.rolling_panic_shard = None;
                true
            }
            _ => false,
        }
    };
    if fire {
        panic!("injected fault: rolling swap panic at shard {shard}");
    }
}
