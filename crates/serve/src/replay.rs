//! Deterministic scheduler replay on a virtual clock.
//!
//! Wall-clock latency histograms can never be golden-tested — the numbers
//! move with the machine. This module replays a scripted arrival schedule
//! through the *same* admission, micro-batching and deadline policy as the
//! threaded scheduler (`server.rs`), but on a virtual nanosecond clock with
//! a fixed service-time model and a single virtual worker. Every counter in
//! the resulting [`MetricsSnapshot`] — latency buckets, queue-depth
//! high-water mark, rejection and fallback tallies — is then an exact,
//! machine-independent function of the script, which is what the checked-in
//! golden snapshot pins.
//!
//! Tie-break rule: an arrival scheduled at exactly a dispatch instant is
//! ingested *before* the batch forms (it can join the batch). This makes
//! simultaneous events deterministic.

use crate::config::ServeConfig;
use crate::metrics::{MetricsSnapshot, ResponseKind, ServeMetrics};
use crate::server::{deadline_expired, ServeRequest};
use std::collections::VecDeque;
use std::time::Duration;

/// Fixed virtual cost of serving a batch: `batch_overhead_ns` once per
/// dispatch plus `per_request_ns` per live (non-expired) request.
#[derive(Clone, Copy, Debug)]
pub struct ServiceModel {
    pub batch_overhead_ns: u64,
    pub per_request_ns: u64,
}

/// A scripted lifecycle event on the replay's virtual timeline. Events
/// mutate the lifecycle counters exactly as the threaded scheduler's
/// controller would, so a swap-bearing trace replays to a bit-exact
/// [`MetricsSnapshot`] that golden tests can pin.
#[derive(Clone, Copy, Debug)]
pub enum ReplayEvent {
    /// A candidate was promoted and hot-swapped in as `version`.
    Swap { version: u64 },
    /// A shadow comparison ran with this divergence (milli-rank units).
    ShadowComparison { divergence_milli: u64 },
    /// A candidate was rolled back; the serving version is unchanged.
    Rollback,
}

/// Replay `schedule` — `(arrival_ns, request)` pairs — through the
/// scheduler policy under `cfg` and `svc`, returning the exact metrics a
/// single-worker server would have produced on this virtual timeline.
pub fn replay(
    cfg: &ServeConfig,
    schedule: &[(u64, ServeRequest)],
    svc: &ServiceModel,
) -> MetricsSnapshot {
    replay_with_events(cfg, schedule, &[], svc)
}

/// [`replay`] over a trace that also carries lifecycle events —
/// `(event_ns, event)` pairs interleaved with the arrivals on the same
/// virtual clock. Tie-break: an event at exactly an arrival or dispatch
/// instant is applied *before* that action, mirroring the arrival rule.
pub fn replay_with_events(
    cfg: &ServeConfig,
    schedule: &[(u64, ServeRequest)],
    events: &[(u64, ReplayEvent)],
    svc: &ServiceModel,
) -> MetricsSnapshot {
    replay_core(cfg, schedule, events, svc).snapshot
}

/// Everything one virtual region's replay produced: the golden-testable
/// snapshot plus the exact response latencies and the virtual makespan —
/// the raw material the capacity planner validates against.
pub(crate) struct ReplayOutcome {
    pub(crate) snapshot: MetricsSnapshot,
    /// Every response's latency, in completion order (fallbacks included —
    /// a deadline fallback is still an answer the caller waited for).
    pub(crate) latencies_ns: Vec<u64>,
    /// Instant the last work finished (or the last arrival, if later).
    pub(crate) t_end_ns: u64,
}

fn replay_core(
    cfg: &ServeConfig,
    schedule: &[(u64, ServeRequest)],
    events: &[(u64, ReplayEvent)],
    svc: &ServiceModel,
) -> ReplayOutcome {
    let cfg = cfg.normalized();
    let metrics = ServeMetrics::new();
    let max_delay_ns = cfg.max_delay.as_nanos() as u64;

    let mut arrivals: Vec<(u64, ServeRequest)> = schedule.to_vec();
    arrivals.sort_by_key(|(t, _)| *t); // stable: equal times keep script order
    let mut lifecycle: Vec<(u64, ReplayEvent)> = events.to_vec();
    lifecycle.sort_by_key(|(t, _)| *t);

    let mut queue: VecDeque<(u64, ServeRequest)> = VecDeque::new();
    let mut next = 0usize; // index of the next un-ingested arrival
    let mut next_event = 0usize; // index of the next unapplied event
    let mut t_free = 0u64; // virtual worker is idle from this instant
    let mut latencies: Vec<u64> = Vec::with_capacity(arrivals.len());
    let mut t_end = arrivals.last().map_or(0, |(t, _)| *t);

    loop {
        let next_arrival = arrivals.get(next).map(|(t, _)| *t);
        let dispatch_at = queue.front().map(|&(oldest, _)| {
            // A batch cannot dispatch before its newest member arrived —
            // `newest` floors every arm so the virtual clock never serves
            // a request that is still in flight.
            let k = queue.len().min(cfg.max_batch);
            let newest = queue[k - 1].0;
            let gated = if queue.len() >= cfg.max_batch || next >= arrivals.len() {
                newest // ready now; the worker just has to be free
            } else {
                (oldest + max_delay_ns).max(newest) // hold open for company
            };
            gated.max(t_free)
        });

        // Lifecycle events apply ahead of any arrival/dispatch at the
        // same instant (and unconditionally once the trace is drained).
        if let Some(&(te, ev)) = lifecycle.get(next_event) {
            let horizon = match (next_arrival, dispatch_at) {
                (Some(ta), Some(tb)) => Some(ta.min(tb)),
                (Some(ta), None) => Some(ta),
                (None, Some(tb)) => Some(tb),
                (None, None) => None,
            };
            if horizon.is_none_or(|h| te <= h) {
                apply_event(&metrics, ev);
                next_event += 1;
                continue;
            }
        }

        match (next_arrival, dispatch_at) {
            (None, None) => break,
            (Some(ta), Some(tb)) if ta <= tb => {
                ingest(&cfg, &metrics, &mut queue, &mut next, &arrivals)
            }
            (Some(_), None) => ingest(&cfg, &metrics, &mut queue, &mut next, &arrivals),
            (_, Some(tb)) => {
                dispatch(
                    &cfg,
                    &metrics,
                    &mut queue,
                    svc,
                    tb,
                    &mut t_free,
                    &mut latencies,
                );
                t_end = t_end.max(t_free);
            }
        }
    }
    ReplayOutcome {
        snapshot: metrics.snapshot(),
        latencies_ns: latencies,
        t_end_ns: t_end,
    }
}

/// The outcome of [`replay_sharded`]: per-shard snapshots plus the
/// fleet-wide latency population and virtual makespan. Deterministic —
/// the same script and layout replay to these exact numbers on any
/// machine, which is what lets a scaling gate and the capacity planner's
/// round-trip test run in CI without touching the wall clock.
#[derive(Clone, Debug)]
pub struct ShardedReplay {
    pub per_shard: Vec<MetricsSnapshot>,
    /// Every shard's response latencies, merged and sorted ascending.
    pub latencies_ns: Vec<u64>,
    /// Virtual end-to-end duration: the latest instant any shard finished
    /// work (shards run concurrently on the virtual timeline).
    pub makespan_ns: u64,
}

impl ShardedReplay {
    /// Fleet-wide counter totals.
    pub fn merged(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for s in &self.per_shard {
            out.merge(s);
        }
        out
    }

    /// Virtual throughput: completed responses per virtual second.
    pub fn completed_per_sec(&self) -> f64 {
        let completed = self.merged().completed;
        if self.makespan_ns == 0 {
            0.0
        } else {
            completed as f64 * 1e9 / self.makespan_ns as f64
        }
    }

    /// Exact p99 of the merged latency population (0 when empty).
    pub fn p99_ns(&self) -> u64 {
        percentile_ns(&self.latencies_ns, 0.99)
    }
}

/// Exact percentile over an ascending-sorted latency population
/// (nearest-rank; 0 when empty).
pub fn percentile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Replay `schedule` across `shards` virtual regions: each arrival goes to
/// the shard [`crate::shard_of`] routes it to (preserving script order
/// within a shard), each shard replays independently under `cfg` and
/// `svc` — one virtual worker per shard, exactly as [`replay`] models the
/// flat scheduler — and the outcomes merge into a [`ShardedReplay`].
pub fn replay_sharded(
    cfg: &ServeConfig,
    shards: usize,
    schedule: &[(u64, ServeRequest)],
    svc: &ServiceModel,
) -> ShardedReplay {
    let shards = shards.max(1);
    let mut parts: Vec<Vec<(u64, ServeRequest)>> = vec![Vec::new(); shards];
    for &(t, req) in schedule {
        parts[crate::router::shard_of(req.race, req.origin, shards)].push((t, req));
    }
    let mut per_shard = Vec::with_capacity(shards);
    let mut latencies = Vec::with_capacity(schedule.len());
    let mut makespan = 0u64;
    for part in &parts {
        let out = replay_core(cfg, part, &[], svc);
        per_shard.push(out.snapshot);
        latencies.extend(out.latencies_ns);
        makespan = makespan.max(out.t_end_ns);
    }
    latencies.sort_unstable();
    ShardedReplay {
        per_shard,
        latencies_ns: latencies,
        makespan_ns: makespan,
    }
}

fn apply_event(metrics: &ServeMetrics, ev: ReplayEvent) {
    match ev {
        ReplayEvent::Swap { version } => {
            metrics.record_lifecycle(1, 0, 0, &[]);
            metrics.set_model_version(version);
        }
        ReplayEvent::ShadowComparison { divergence_milli } => {
            metrics.record_lifecycle(0, 0, 1, &[divergence_milli]);
        }
        ReplayEvent::Rollback => {
            metrics.record_lifecycle(0, 1, 0, &[]);
        }
    }
}

fn ingest(
    cfg: &ServeConfig,
    metrics: &ServeMetrics,
    queue: &mut VecDeque<(u64, ServeRequest)>,
    next: &mut usize,
    arrivals: &[(u64, ServeRequest)],
) {
    let (t, req) = arrivals[*next];
    *next += 1;
    metrics.record_submitted();
    if queue.len() >= cfg.queue_capacity {
        metrics.record_rejected_full();
    } else {
        queue.push_back((t, req));
        metrics.record_accepted(queue.len() as u64);
    }
}

#[allow(clippy::too_many_arguments)]
fn dispatch(
    cfg: &ServeConfig,
    metrics: &ServeMetrics,
    queue: &mut VecDeque<(u64, ServeRequest)>,
    svc: &ServiceModel,
    start: u64,
    t_free: &mut u64,
    latencies: &mut Vec<u64>,
) {
    let k = queue.len().min(cfg.max_batch);
    let batch: Vec<(u64, ServeRequest)> = queue.drain(..k).collect();
    metrics.record_batch(k as u64);

    let mut live: Vec<u64> = Vec::with_capacity(k);
    for (arrive, req) in &batch {
        let waited = Duration::from_nanos(start - arrive);
        if deadline_expired(waited, req.deadline) {
            metrics.record_response(ResponseKind::FallbackDeadline, start - arrive);
            latencies.push(start - arrive);
        } else {
            live.push(*arrive);
        }
    }
    let completion = if live.is_empty() {
        start
    } else {
        start + svc.batch_overhead_ns + svc.per_request_ns * live.len() as u64
    };
    for arrive in live {
        metrics.record_response(ResponseKind::Ok, completion - arrive);
        latencies.push(completion - arrive);
    }
    *t_free = completion;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> ServeRequest {
        ServeRequest::new(0, 50, 2, 4)
    }

    fn cfg() -> ServeConfig {
        ServeConfig {
            workers: 1,
            max_batch: 4,
            max_delay: Duration::from_nanos(1_000),
            queue_capacity: 8,
        }
    }

    const SVC: ServiceModel = ServiceModel {
        batch_overhead_ns: 100,
        per_request_ns: 50,
    };

    #[test]
    fn a_burst_coalesces_into_one_batch() {
        let sched: Vec<(u64, ServeRequest)> = (0..4).map(|_| (0, req())).collect();
        let snap = replay(&cfg(), &sched, &SVC);
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.batch_sizes[2], 1); // one batch of size <= 4
        assert_eq!(snap.completed, 4);
        // Completion at 0 + 100 + 4*50 = 300 ns for all four.
        assert_eq!(snap.latency[0], 4);
    }

    #[test]
    fn underfull_batch_waits_max_delay_then_flushes() {
        let sched = vec![(0u64, req()), (5_000u64, req())];
        let snap = replay(&cfg(), &sched, &SVC);
        // First request dispatches alone at t=1000 (max_delay), second
        // arrives later and dispatches alone too.
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.batch_sizes[0], 2);
    }

    #[test]
    fn overload_rejects_beyond_capacity_and_bounds_depth() {
        let sched: Vec<(u64, ServeRequest)> = (0..20).map(|_| (0, req())).collect();
        let snap = replay(&cfg(), &sched, &SVC);
        // Capacity 8: twelve arrivals bounce, depth never exceeds 8.
        assert_eq!(snap.rejected_queue_full, 12);
        assert_eq!(snap.accepted, 8);
        assert_eq!(snap.queue_depth_max, 8);
        assert_eq!(snap.completed, 8);
    }

    #[test]
    fn zero_deadline_degrades_to_fallback() {
        let sched = vec![(0u64, req().with_deadline(Duration::ZERO))];
        let snap = replay(&cfg(), &sched, &SVC);
        assert_eq!(snap.fallback_deadline, 1);
        assert_eq!(snap.ok_responses, 0);
        assert_eq!(snap.completed, 1);
    }

    #[test]
    fn one_shard_replay_matches_the_flat_replay() {
        let sched: Vec<(u64, ServeRequest)> = (0..10).map(|i| (i * 400, req())).collect();
        let flat = replay(&cfg(), &sched, &SVC);
        let sharded = replay_sharded(&cfg(), 1, &sched, &SVC);
        assert_eq!(sharded.per_shard.len(), 1);
        assert_eq!(sharded.merged(), flat);
    }

    #[test]
    fn sharded_replay_conserves_across_shards() {
        let sched: Vec<(u64, ServeRequest)> = (0..40)
            .map(|i| {
                (
                    i * 200,
                    ServeRequest::new((i % 4) as usize, 40 + (i % 16) as usize, 2, 4),
                )
            })
            .collect();
        let sharded = replay_sharded(&cfg(), 4, &sched, &SVC);
        let merged = sharded.merged();
        assert_eq!(merged.submitted, 40);
        assert_eq!(merged.completed, merged.accepted);
        assert_eq!(sharded.latencies_ns.len() as u64, merged.completed);
        assert!(sharded.latencies_ns.windows(2).all(|w| w[0] <= w[1]));
        assert!(sharded.makespan_ns > 0);
        assert!(sharded.p99_ns() >= percentile_ns(&sharded.latencies_ns, 0.5));
        // Determinism: replaying the identical script is bit-identical.
        let again = replay_sharded(&cfg(), 4, &sched, &SVC);
        assert_eq!(again.per_shard, sharded.per_shard);
        assert_eq!(again.latencies_ns, sharded.latencies_ns);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile_ns(&[], 0.99), 0);
        assert_eq!(percentile_ns(&[7], 0.99), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&v, 0.99), 99);
        assert_eq!(percentile_ns(&v, 1.0), 100);
    }

    #[test]
    fn conservation_holds_on_every_script() {
        let sched: Vec<(u64, ServeRequest)> = (0..13)
            .map(|i| (i * 700, req().with_deadline(Duration::from_nanos(900))))
            .collect();
        let snap = replay(&cfg(), &sched, &SVC);
        assert_eq!(snap.accepted + snap.rejected_queue_full, snap.submitted);
        assert_eq!(snap.completed, snap.accepted);
        assert_eq!(snap.ok_responses + snap.fallback_deadline, snap.completed);
    }
}
