//! Serving-side model lifecycle: shadow evaluation of candidate versions
//! under live traffic, and the promote / auto-rollback decision gate
//! (DESIGN.md §14).
//!
//! The [`LifecycleController`] sits next to a serve region
//! ([`crate::serve_with_lifecycle`]). A candidate version is *staged*;
//! while staged, a deterministic sample of admissions (`admission id %
//! shadow_sample_every == 0` — request identity, never wall clock) is run
//! through a **shadow engine** holding the candidate, built with the live
//! engine's seed and backend so its outputs are bit-identical to what the
//! candidate would serve after promotion. The rank divergence between the
//! live and shadow answers feeds the `serve_shadow_divergence_milli`
//! histogram; after `shadow_min_samples` comparisons the controller
//! decides:
//!
//! * mean divergence within the gate → **promote**: atomic hot-swap into
//!   the live engine's [`ModelSlot`]; in-flight batches finish on the old
//!   version, later admissions get the new one.
//! * gate exceeded (or the candidate panicked) → **auto-rollback**: the
//!   old version keeps serving untouched and the candidate is quarantined
//!   in the [`ModelStore`] (when one is attached).
//!
//! Every swap attempt is panic-guarded: a panic mid-swap (see the
//! fault-inject matrix) is caught, counted as a rollback, and leaves the
//! old version serving — a lifecycle operation can never take the region
//! down.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use ranknet_core::lifecycle::{rank_divergence_milli, ModelSlot, ModelStore, VersionedModel};
use ranknet_core::{EngineForecast, ForecastEngine, RaceContext, RankNet};

use crate::metrics::ServeMetrics;
use crate::server::ServeRequest;

/// Shadow-evaluation and rollback knobs.
#[derive(Clone, Debug)]
pub struct LifecycleConfig {
    /// Shadow every admission whose id is a multiple of this (1 = every
    /// request). Sampling is keyed by admission id, so which requests are
    /// shadowed is reproducible run to run.
    pub shadow_sample_every: u64,
    /// Comparisons to accumulate before deciding promote vs rollback.
    pub shadow_min_samples: u64,
    /// Promotion gate: mean divergence (milli-rank units, see
    /// [`rank_divergence_milli`]) above this rolls the candidate back.
    pub max_divergence_milli: u64,
}

impl Default for LifecycleConfig {
    fn default() -> LifecycleConfig {
        LifecycleConfig {
            shadow_sample_every: 4,
            shadow_min_samples: 8,
            max_divergence_milli: 500,
        }
    }
}

/// What the controller decided about a staged candidate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CandidateDecision {
    /// Swapped into the live slot (and `CURRENT` advanced, with a store).
    Promoted {
        version: u64,
        samples: u64,
        mean_divergence_milli: u64,
    },
    /// Old version kept serving; candidate quarantined (with a store).
    RolledBack {
        version: u64,
        samples: u64,
        mean_divergence_milli: u64,
    },
}

/// A staged candidate mid-shadow-evaluation.
struct Candidate {
    version: u64,
    /// Engine over the candidate with the live seed/backend/threads — its
    /// answers are bit-identical to post-promotion serving.
    shadow: ForecastEngine,
    samples: u64,
    divergence_sum: u64,
}

/// Swap / rollback / comparison tallies accumulated by the controller and
/// flushed into a region's [`ServeMetrics`] (see
/// [`LifecycleController::flush_into`]).
#[derive(Default)]
struct Tallies {
    swaps: u64,
    rollbacks: u64,
    comparisons: u64,
    divergences: Vec<u64>,
}

/// See the module docs. One controller serves one live [`ModelSlot`];
/// `Arc` it to share with fault hooks or a fine-tuning thread.
pub struct LifecycleController {
    cfg: LifecycleConfig,
    store: Option<ModelStore>,
    /// Cheap pre-check so non-shadowed traffic never takes the state lock.
    active: AtomicBool,
    state: Mutex<Option<Candidate>>,
    tallies: Mutex<Tallies>,
    decisions: Mutex<Vec<CandidateDecision>>,
}

impl LifecycleController {
    pub fn new(cfg: LifecycleConfig) -> LifecycleController {
        LifecycleController {
            cfg,
            store: None,
            active: AtomicBool::new(false),
            state: Mutex::new(None),
            tallies: Mutex::new(Tallies::default()),
            decisions: Mutex::new(Vec::new()),
        }
    }

    /// Attach the artifact store: promotions advance `CURRENT`, rollbacks
    /// quarantine the candidate's on-disk version.
    pub fn with_store(mut self, store: ModelStore) -> LifecycleController {
        self.store = Some(store);
        self
    }

    pub fn store(&self) -> Option<&ModelStore> {
        self.store.as_ref()
    }

    /// Stage a candidate for shadow evaluation against `live`. Replaces
    /// (and silently drops) any previously staged candidate.
    pub fn stage_candidate(&self, live: &ForecastEngine, version: u64, model: Arc<RankNet>) {
        let shadow = ForecastEngine::with_slot(
            ModelSlot::new(VersionedModel::new(version, model)),
            live.seed(),
        )
        .with_backend(live.backend())
        .with_threads(live.threads());
        *self.lock_state() = Some(Candidate {
            version,
            shadow,
            samples: 0,
            divergence_sum: 0,
        });
        self.active.store(true, Ordering::Release);
    }

    /// Version currently under shadow evaluation.
    pub fn candidate_version(&self) -> Option<u64> {
        self.lock_state().as_ref().map(|c| c.version)
    }

    /// Every decision taken so far, in order.
    pub fn decisions(&self) -> Vec<CandidateDecision> {
        self.lock_decisions().clone()
    }

    /// Immediate panic-guarded hot-swap through the live engine (counts
    /// into the engine's `engine_model_swaps` and version gauge). On an
    /// injected or real panic mid-swap the old version keeps serving, the
    /// on-disk candidate is quarantined, and a rollback is recorded.
    pub fn swap_now(
        &self,
        live: &ForecastEngine,
        version: u64,
        model: Arc<RankNet>,
    ) -> CandidateDecision {
        self.guarded_swap(version, model, 0, 0, |next| {
            live.swap_model(next);
        })
    }

    /// [`LifecycleController::swap_now`] addressed at a bare slot — for
    /// `'static` contexts (fault hooks, detached fine-tuning threads) that
    /// hold a cloned `Arc<ModelSlot>` rather than an engine borrow.
    pub fn swap_now_slot(
        &self,
        slot: &ModelSlot,
        version: u64,
        model: Arc<RankNet>,
    ) -> CandidateDecision {
        self.guarded_swap(version, model, 0, 0, |next| {
            slot.swap(next);
        })
    }

    /// Rolling hot-swap across a sharded region: walk every shard's
    /// [`ModelSlot`] in shard order, swapping `model` in as `version`.
    /// All-or-nothing at the fleet level — a panic at shard `k` (real, or
    /// injected via `panic_on_rolling_shard`) swaps shards `0..k` *back*
    /// to their previous versions in reverse order, quarantines the
    /// candidate, and records one rollback; only a fully successful walk
    /// advances `CURRENT` and counts one swap. In-flight batches on each
    /// shard finish on whichever version their engine loaded — the slot
    /// swap is atomic per shard, so no request ever sees a torn model.
    pub fn rolling_swap(
        &self,
        slots: &[Arc<ModelSlot>],
        version: u64,
        model: Arc<RankNet>,
    ) -> CandidateDecision {
        let mut prev: Vec<Arc<VersionedModel>> = Vec::with_capacity(slots.len());
        let mut failed = false;
        for (i, slot) in slots.iter().enumerate() {
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "fault-inject")]
                crate::fault::maybe_panic_rolling_shard(i);
                let _ = i;
                slot.swap(VersionedModel::new(version, Arc::clone(&model)))
            }));
            match attempt {
                Ok(old) => prev.push(old),
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        let decision = if failed {
            // Unwind the shards already swapped, newest first, so the
            // fleet converges back to a single serving version.
            for (slot, old) in slots.iter().zip(&prev).rev() {
                slot.swap(VersionedModel::new(old.version, Arc::clone(&old.model)));
            }
            self.quarantine_candidate(version, "rolling-swap-panic");
            self.lock_tallies().rollbacks += 1;
            CandidateDecision::RolledBack {
                version,
                samples: 0,
                mean_divergence_milli: 0,
            }
        } else {
            if let Some(store) = &self.store {
                // Best-effort, as in `guarded_swap`: an unwritable CURRENT
                // must not undo in-memory swaps that already happened.
                let _ = store.set_current(version);
            }
            self.lock_tallies().swaps += 1;
            CandidateDecision::Promoted {
                version,
                samples: 0,
                mean_divergence_milli: 0,
            }
        };
        self.lock_decisions().push(decision.clone());
        decision
    }

    fn guarded_swap(
        &self,
        version: u64,
        model: Arc<RankNet>,
        samples: u64,
        mean_divergence_milli: u64,
        swap: impl FnOnce(VersionedModel),
    ) -> CandidateDecision {
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            swap(VersionedModel::new(version, model));
        }));
        let decision = match attempt {
            Ok(()) => {
                if let Some(store) = &self.store {
                    // Best-effort: an unwritable CURRENT must not undo an
                    // in-memory swap that already happened.
                    let _ = store.set_current(version);
                }
                self.lock_tallies().swaps += 1;
                CandidateDecision::Promoted {
                    version,
                    samples,
                    mean_divergence_milli,
                }
            }
            Err(_) => {
                self.quarantine_candidate(version, "swap-panic");
                self.lock_tallies().rollbacks += 1;
                CandidateDecision::RolledBack {
                    version,
                    samples,
                    mean_divergence_milli,
                }
            }
        };
        self.lock_decisions().push(decision.clone());
        decision
    }

    /// Shadow-evaluation hook, called by the scheduler for every healthy
    /// engine response while a candidate is staged. Sampled admissions run
    /// the candidate inline (bounded by `shadow_sample_every`); once
    /// enough comparisons accumulate, decides promote or rollback.
    pub(crate) fn observe(
        &self,
        live_engine: &ForecastEngine,
        contexts: &[&RaceContext],
        id: u64,
        req: &ServeRequest,
        live: &EngineForecast,
    ) -> Option<CandidateDecision> {
        if !self.active.load(Ordering::Acquire) {
            return None;
        }
        if self.cfg.shadow_sample_every > 1 && !id.is_multiple_of(self.cfg.shadow_sample_every) {
            return None;
        }
        let mut state = self.lock_state();
        let cand = state.as_mut()?;

        // A candidate with pathological weights may panic instead of
        // returning: that is an immediate, maximal divergence.
        let shadowed = catch_unwind(AssertUnwindSafe(|| {
            cand.shadow.try_forecast_keyed(
                req.race,
                contexts[req.race],
                req.origin,
                req.horizon,
                req.n_samples,
            )
        }));
        let divergence = match shadowed {
            Ok(Ok(shadow)) => rank_divergence_milli(&live.samples, &shadow.samples),
            // A request the candidate rejects or panics on that the live
            // model served is off-the-scale divergence: force the gate.
            Ok(Err(_)) | Err(_) => u64::MAX,
        };
        cand.samples += 1;
        cand.divergence_sum = cand.divergence_sum.saturating_add(divergence);
        {
            let mut t = self.lock_tallies();
            t.comparisons += 1;
            t.divergences.push(divergence.min(u64::MAX / 2));
        }
        if cand.samples < self.cfg.shadow_min_samples.max(1) {
            return None;
        }

        // Decision point: consume the candidate, then promote or roll back.
        let cand = state.take()?;
        self.active.store(false, Ordering::Release);
        drop(state);

        let mean = cand.divergence_sum / cand.samples;
        let decision = if mean <= self.cfg.max_divergence_milli {
            let vm = cand.shadow.current_model();
            self.guarded_swap(
                cand.version,
                Arc::clone(&vm.model),
                cand.samples,
                mean,
                |next| {
                    live_engine.swap_model(next);
                },
            )
        } else {
            self.quarantine_candidate(cand.version, "diverged");
            self.lock_tallies().rollbacks += 1;
            let d = CandidateDecision::RolledBack {
                version: cand.version,
                samples: cand.samples,
                mean_divergence_milli: mean,
            };
            self.lock_decisions().push(d.clone());
            d
        };
        Some(decision)
    }

    /// Drain accumulated tallies into a serve region's metrics and stamp
    /// the region's `rpf_model_version` gauge from the live engine.
    pub(crate) fn flush_into(&self, metrics: &ServeMetrics, live_engine: &ForecastEngine) {
        let mut t = self.lock_tallies();
        metrics.record_lifecycle(t.swaps, t.rollbacks, t.comparisons, &t.divergences);
        *t = Tallies::default();
        metrics.set_model_version(live_engine.model_version());
    }

    fn quarantine_candidate(&self, version: u64, reason: &str) {
        if let Some(store) = &self.store {
            // Best-effort: the version may never have been published (an
            // in-memory-only candidate), which is fine.
            let _ = store.quarantine(version, reason);
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, Option<Candidate>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn lock_tallies(&self) -> MutexGuard<'_, Tallies> {
        self.tallies.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn lock_decisions(&self) -> MutexGuard<'_, Vec<CandidateDecision>> {
        self.decisions.lock().unwrap_or_else(|p| p.into_inner())
    }
}
