//! # rpf-serve — concurrent request-batching serving for RankNet
//!
//! A multi-threaded serving front-end over
//! [`ranknet_core::engine::ForecastEngine`] (DESIGN.md §11). Many small
//! `(race, origin)` forecast queries arrive concurrently; this layer turns
//! them into few large engine calls without changing a single output bit:
//!
//! * **Bounded admission** — a full submission queue rejects with a typed
//!   [`SubmitError::QueueFull`] instead of blocking or growing without
//!   bound.
//! * **Dynamic micro-batching** — workers coalesce up to
//!   [`ServeConfig::max_batch`] queued requests, holding an under-full
//!   batch open at most [`ServeConfig::max_delay`]; identical requests in
//!   a batch share one model run (the engine's coalescing batch-entry
//!   API).
//! * **Deadlines** — a request queued past its deadline degrades to the
//!   CurRank persistence fallback, flagged, instead of blocking its
//!   caller.
//! * **Determinism** — every response is bit-identical to a direct
//!   `try_forecast_keyed` call, regardless of batch placement, worker
//!   count, or arrival order; the engine keys its RNG streams on request
//!   identity, and the scheduler never re-keys anything.
//! * **Verification harness** — deterministic load generation
//!   ([`loadgen`]), a virtual-clock scheduler replay for golden metrics
//!   ([`replay`]), and (behind `fault-inject`) planned scheduler faults
//!   ([`fault`]).
//! * **Race-sharded scale-out** — [`serve_sharded`] splits the region
//!   into shards (DESIGN.md §15), each an actor owning a forked engine,
//!   model slot and encoder cache behind its own bounded mailbox with a
//!   supervisor; a front router ([`shard_of`]) hashes `(race, origin)`
//!   keys to shards. For a fixed layout every response stays bit-identical
//!   to the flat path; a failed shard degrades to flagged CurRank
//!   fallbacks and restarts while the others serve untouched.
//!
//! ```no_run
//! use rpf_serve::{serve, ServeConfig, ServeRequest};
//! # fn demo(engine: &ranknet_core::ForecastEngine,
//! #         ctx: &ranknet_core::RaceContext) {
//! let cfg = ServeConfig::default();
//! let (_, metrics) = serve(engine, &[ctx], &cfg, |client| {
//!     let resp = client.forecast(ServeRequest::new(0, 90, 2, 100));
//!     // ... fan client out to as many threads as you like ...
//! });
//! println!("{}", metrics.render());
//! # }
//! ```

pub mod config;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod lifecycle;
pub mod loadgen;
pub(crate) mod mailbox;
pub mod metrics;
pub mod replay;
pub mod router;
pub mod server;
pub(crate) mod shard;
pub(crate) mod supervisor;

pub use config::{ServeConfig, ShardTopology};
pub use lifecycle::{CandidateDecision, LifecycleConfig, LifecycleController};
pub use loadgen::{MultiRaceMix, Submitter};
pub use mailbox::Pending;
pub use metrics::{
    MetricsSnapshot, ShardedSnapshot, BATCH_EDGES, DIVERGENCE_EDGES_MILLI, LATENCY_EDGES_NS,
};
pub use replay::{
    percentile_ns, replay, replay_sharded, replay_with_events, ReplayEvent, ServiceModel,
    ShardedReplay,
};
pub use router::{serve_sharded, shard_of, ShardedClient};
pub use server::{
    serve, serve_with_lifecycle, FallbackReason, ServeClient, ServeError, ServeRequest,
    ServeResponse, ServeResult, SubmitError,
};
