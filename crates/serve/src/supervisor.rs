//! Per-shard supervision: watch the shard's workers, contain a death,
//! restart.
//!
//! Every shard worker runs under `catch_unwind` at the top of its thread
//! and reports its exit — clean or panicked — to the shard's [`Monitor`].
//! The supervisor blocks on that exit queue rather than joining handles,
//! so one death is observed immediately even while sibling workers are
//! still serving. On a panicked exit it:
//!
//! 1. counts a `serve_shard_restarts`,
//! 2. fallback-drains the shard's backlog (every queued request answered
//!    with the CurRank fallback, flagged `ShardFailure` — accepted always
//!    implies answered),
//! 3. clears the shard's encoder cache (the dying worker may have been
//!    mid-insert; the cache is a pure memoization, so clearing is always
//!    safe and costs only recomputation),
//! 4. respawns one worker.
//!
//! Restart cannot change bits: the respawned worker runs the same
//! `worker_loop` over the same forked engine, and the engine's draws key
//! on request identity alone. Only the requests queued at the instant of
//! death degrade (to flagged fallbacks); everything after the restart is
//! served normally, and other shards never notice.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};
use std::thread::Scope;

use crate::server::worker_loop;
use crate::shard::Shard;

/// Worker-exit event queue: workers push, the supervisor pops.
pub(crate) struct Monitor {
    /// Exit events, `true` = the worker panicked.
    exits: Mutex<VecDeque<bool>>,
    arrived: Condvar,
}

impl Monitor {
    pub(crate) fn new() -> Monitor {
        Monitor {
            exits: Mutex::new(VecDeque::new()),
            arrived: Condvar::new(),
        }
    }

    fn notify_exit(&self, panicked: bool) {
        self.exits
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push_back(panicked);
        self.arrived.notify_one();
    }

    /// Block until some worker exits; returns whether it panicked.
    fn wait_exit(&self) -> bool {
        let mut q = self.exits.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(panicked) = q.pop_front() {
                return panicked;
            }
            q = self.arrived.wait(q).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// Spawn one supervised worker for `shard` inside `s`.
fn spawn_worker<'scope>(s: &'scope Scope<'scope, '_>, shard: &'scope Shard<'_>) {
    s.spawn(move || {
        let outcome = catch_unwind(AssertUnwindSafe(|| worker_loop(&shard.shared)));
        shard.monitor.notify_exit(outcome.is_err());
    });
}

/// Run shard `shard` to completion inside scope `s`: spawn its workers,
/// then loop containing worker deaths (drain + restart) until every
/// worker has exited cleanly through the shutdown drain.
pub(crate) fn supervise<'scope>(s: &'scope Scope<'scope, '_>, shard: &'scope Shard<'_>) {
    let workers = shard.shared.cfg.workers;
    for _ in 0..workers {
        spawn_worker(s, shard);
    }
    let mut alive = workers;
    loop {
        let panicked = shard.monitor.wait_exit();
        if panicked {
            shard.shared.metrics.record_shard_restart();
            shard.fallback_drain();
            shard.shared.engine.clear_cache();
            spawn_worker(s, shard);
        } else {
            alive -= 1;
            if alive == 0 {
                return;
            }
        }
    }
}
