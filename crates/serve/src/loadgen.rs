//! Deterministic load generation for soak and equivalence testing.
//!
//! Requests derive from counter-keyed RNG streams ([`RngStreams`]): the
//! request at global index `i` of a mix is a pure function of
//! `(stream seed, i)`, so a load script is reproducible across runs,
//! machines and thread interleavings. Arrival *schedules* (bursts, ramps,
//! uniform trickles) are likewise pure functions of their parameters; only
//! the wall-clock realisation of a schedule varies, and the engine's
//! determinism contract makes that variation invisible in the response
//! bits.

use crate::mailbox::Pending;
use crate::server::{ServeClient, ServeRequest, ServeResult, SubmitError};
use rand::Rng;
use rpf_nn::RngStreams;
use std::time::{Duration, Instant};

/// Anything a load driver can submit to: the flat [`ServeClient`], the
/// sharded router client, or a wire transport (the HTTP submitter in
/// `rpf-gateway`). `Copy` so closed-loop drivers can hand the handle to
/// every client thread.
///
/// Submission is split into an admission step and a wait step because a
/// remote transport may only learn the admission verdict when it reads the
/// response off the socket: a gateway 429/503 surfaces from [`Submitter::wait`],
/// not [`Submitter::submit`]. The drivers below count a rejection from
/// either step in [`LoadReport::rejected`], so in-process and over-the-wire
/// runs produce comparable reports.
pub trait Submitter: Copy + Send + Sync {
    /// Ticket for an in-flight request.
    type Pending: Send;

    /// Start a request. In-process clients resolve admission here; wire
    /// clients may defer rejection to [`Submitter::wait`].
    fn submit(&self, req: ServeRequest) -> Result<Self::Pending, SubmitError>;

    /// Block until the ticket resolves.
    fn wait(pending: Self::Pending) -> Result<ServeResult, SubmitError>;
}

impl Submitter for ServeClient<'_, '_> {
    type Pending = Pending;

    fn submit(&self, req: ServeRequest) -> Result<Pending, SubmitError> {
        ServeClient::submit(self, req)
    }

    fn wait(pending: Pending) -> Result<ServeResult, SubmitError> {
        Ok(pending.wait())
    }
}

/// The request population of a load script.
#[derive(Clone, Debug)]
pub struct LoadMix {
    /// Requests target races `0..races`.
    pub races: usize,
    /// Forecast origins drawn uniformly from this half-open range.
    pub origins: (usize, usize),
    /// Candidate horizons, drawn uniformly.
    pub horizons: Vec<usize>,
    /// Candidate Monte-Carlo sample counts, drawn uniformly.
    pub sample_counts: Vec<usize>,
    /// Draw from a pool of only this many distinct queries (models the
    /// live-race hot spot where thousands of users ask the same question);
    /// `None` makes every index an independent draw.
    pub unique_queries: Option<u64>,
    /// Deadline stamped on every generated request.
    pub deadline: Option<Duration>,
}

impl LoadMix {
    /// A small mixed workload over `races` races, suitable for tests.
    pub fn standard(races: usize, origins: (usize, usize)) -> LoadMix {
        LoadMix {
            races,
            origins,
            horizons: vec![1, 2, 3],
            sample_counts: vec![2, 4],
            unique_queries: None,
            deadline: None,
        }
    }

    /// The deterministic request at global index `index`.
    pub fn request_at(&self, streams: &RngStreams, index: u64) -> ServeRequest {
        let key = match self.unique_queries {
            Some(n) if n > 0 => index % n,
            _ => index,
        };
        let mut rng = streams.stream(key);
        let race = rng.gen_range(0..self.races.max(1));
        let origin = if self.origins.1 > self.origins.0 {
            rng.gen_range(self.origins.0..self.origins.1)
        } else {
            self.origins.0
        };
        let horizon = pick(&mut rng, &self.horizons, 1);
        let n_samples = pick(&mut rng, &self.sample_counts, 1);
        ServeRequest {
            race,
            origin,
            horizon,
            n_samples,
            deadline: self.deadline,
        }
    }
}

fn pick(rng: &mut rand::rngs::StdRng, choices: &[usize], default: usize) -> usize {
    if choices.is_empty() {
        default
    } else {
        choices[rng.gen_range(0..choices.len())]
    }
}

/// `n` arrivals all at offset `at` — a thundering-herd burst.
pub fn burst(at: Duration, n: usize) -> Vec<Duration> {
    vec![at; n]
}

/// `n` arrivals evenly spaced `spacing` apart starting at `start`.
pub fn uniform(start: Duration, spacing: Duration, n: usize) -> Vec<Duration> {
    (0..n).map(|i| start + spacing * i as u32).collect()
}

/// `n` arrivals over `total` with linearly increasing rate (square-root
/// time profile: gaps shrink as the ramp climbs).
pub fn ramp(start: Duration, total: Duration, n: usize) -> Vec<Duration> {
    (0..n)
        .map(|i| {
            let frac = ((i + 1) as f64 / n.max(1) as f64).sqrt();
            start + Duration::from_nanos((total.as_nanos() as f64 * frac) as u64)
        })
        .collect()
}

/// Attach deterministic requests to a list of arrival offsets, tagging
/// request indices from `first_index` so concatenated schedules don't
/// collide in stream space.
pub fn schedule(
    times: &[Duration],
    mix: &LoadMix,
    streams: &RngStreams,
    first_index: u64,
) -> Vec<(Duration, ServeRequest)> {
    times
        .iter()
        .enumerate()
        .map(|(i, &t)| (t, mix.request_at(streams, first_index + i as u64)))
        .collect()
}

/// Merge schedules into one time-sorted script (stable: equal offsets keep
/// their concatenation order).
pub fn merge(parts: Vec<Vec<(Duration, ServeRequest)>>) -> Vec<(Duration, ServeRequest)> {
    let mut all: Vec<(Duration, ServeRequest)> = parts.into_iter().flatten().collect();
    all.sort_by_key(|(t, _)| *t);
    all
}

/// Stream-space child id reserved for the Zipf race re-draw, so the
/// popularity draw never shares a counter stream with the base request
/// fields.
pub const ZIPF_STREAM: u64 = 0x5a1f;

/// A multi-race trace with skewed race popularity: request fields come
/// from the inner [`LoadMix`], but the race is re-drawn from a Zipf
/// distribution (race `r` gets weight `1/(r+1)^s`), modelling the live
/// Sunday-race hot spot next to a tail of replayed historical races.
/// Deterministic like everything here: the draw at index `i` is a pure
/// function of `(stream seed, i)` via a dedicated counter stream
/// ([`ZIPF_STREAM`]), so shard-imbalance scenarios replay bit-identically.
#[derive(Clone, Debug)]
pub struct MultiRaceMix {
    pub mix: LoadMix,
    /// Zipf exponent `s`; 0 = uniform, larger = more skew toward race 0.
    pub zipf_exponent: f64,
    /// Optional scenario-family label per race index (`scenario_of[r]`
    /// names the family race `r` was generated from). Purely descriptive:
    /// labels ride along with the draw via
    /// [`MultiRaceMix::labeled_request_at`] and never touch the RNG, so a
    /// labeled mix replays bit-identically to an unlabeled one. Empty
    /// (the default) means unlabeled.
    pub scenario_of: Vec<String>,
}

impl MultiRaceMix {
    pub fn new(races: usize, origins: (usize, usize), zipf_exponent: f64) -> MultiRaceMix {
        MultiRaceMix {
            mix: LoadMix::standard(races, origins),
            zipf_exponent,
            scenario_of: Vec::new(),
        }
    }

    /// Attach scenario-family labels (one per race, race index order).
    pub fn with_scenarios(mut self, labels: Vec<String>) -> MultiRaceMix {
        self.scenario_of = labels;
        self
    }

    /// The scenario label of race `race`, if the mix carries one.
    pub fn scenario_label(&self, race: usize) -> Option<&str> {
        self.scenario_of.get(race).map(String::as_str)
    }

    /// Normalised race weights, `w_r ∝ 1/(r+1)^s`.
    pub fn weights(&self) -> Vec<f64> {
        let n = self.mix.races.max(1);
        let raw: Vec<f64> = (0..n)
            .map(|r| 1.0 / ((r + 1) as f64).powf(self.zipf_exponent))
            .collect();
        let total: f64 = raw.iter().sum();
        raw.into_iter().map(|w| w / total).collect()
    }

    /// The deterministic request at global index `index`: the inner mix's
    /// request with its race replaced by the Zipf draw. The
    /// `unique_queries` pool folding applies to the race draw too, so a
    /// duplicated query stays one query.
    pub fn request_at(&self, streams: &RngStreams, index: u64) -> ServeRequest {
        let mut req = self.mix.request_at(streams, index);
        let key = match self.mix.unique_queries {
            Some(n) if n > 0 => index % n,
            _ => index,
        };
        let mut rng = streams.child(ZIPF_STREAM).stream(key);
        let u: f64 = rng.gen_range(0.0..1.0);
        let mut acc = 0.0;
        let weights = self.weights();
        let mut race = weights.len() - 1;
        for (r, w) in weights.iter().enumerate() {
            acc += w;
            if u < acc {
                race = r;
                break;
            }
        }
        req.race = race;
        req
    }

    /// [`MultiRaceMix::request_at`] plus the drawn race's scenario label.
    /// The label is a pure lookup on the already-drawn race — no extra RNG
    /// draws — so the request stream is identical to the unlabeled path.
    pub fn labeled_request_at(
        &self,
        streams: &RngStreams,
        index: u64,
    ) -> (ServeRequest, Option<&str>) {
        let req = self.request_at(streams, index);
        let label = self.scenario_label(req.race);
        (req, label)
    }

    /// [`schedule`] over this mix.
    pub fn schedule(
        &self,
        times: &[Duration],
        streams: &RngStreams,
        first_index: u64,
    ) -> Vec<(Duration, ServeRequest)> {
        times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, self.request_at(streams, first_index + i as u64)))
            .collect()
    }
}

/// Everything a load run observed, for assertions.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Requests refused at admission, with the typed reason.
    pub rejected: Vec<(ServeRequest, SubmitError)>,
    /// Accepted requests paired with their responses.
    pub outcomes: Vec<(ServeRequest, ServeResult)>,
}

impl LoadReport {
    pub fn submitted(&self) -> usize {
        self.rejected.len() + self.outcomes.len()
    }
}

/// Open-loop driver: submit on the script's timeline regardless of
/// completions (offered load is independent of service rate — the regime
/// where admission control and deadlines matter), then wait for every
/// accepted response.
pub fn run_open_loop<S: Submitter>(client: S, script: &[(Duration, ServeRequest)]) -> LoadReport {
    let start = Instant::now();
    let mut pending: Vec<(ServeRequest, S::Pending)> = Vec::with_capacity(script.len());
    let mut report = LoadReport::default();
    for &(at, req) in script {
        let now = start.elapsed();
        if at > now {
            std::thread::sleep(at - now);
        }
        match client.submit(req) {
            Ok(p) => pending.push((req, p)),
            Err(e) => report.rejected.push((req, e)),
        }
    }
    for (req, p) in pending {
        match S::wait(p) {
            Ok(result) => report.outcomes.push((req, result)),
            Err(e) => report.rejected.push((req, e)),
        }
    }
    report
}

/// Closed-loop driver: `clients` concurrent callers, each submitting its
/// next request only after the previous response arrives (offered load
/// tracks service rate). Client `c`'s `i`-th request is
/// `mix.request_at(streams.child(c), i)` — fully deterministic.
pub fn run_closed_loop<S: Submitter>(
    client: S,
    clients: usize,
    per_client: usize,
    mix: &LoadMix,
    streams: &RngStreams,
) -> LoadReport {
    let mut report = LoadReport::default();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let child = streams.child(c as u64);
                s.spawn(move || {
                    let mut local = LoadReport::default();
                    for i in 0..per_client {
                        let req = mix.request_at(&child, i as u64);
                        match client.submit(req).and_then(S::wait) {
                            Ok(result) => local.outcomes.push((req, result)),
                            Err(e) => local.rejected.push((req, e)),
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => {
                    report.rejected.extend(local.rejected);
                    report.outcomes.extend(local.outcomes);
                }
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_generation_is_deterministic_and_seed_sensitive() {
        let mix = LoadMix::standard(3, (40, 90));
        let s = RngStreams::new(7);
        let a = mix.request_at(&s, 5);
        let b = mix.request_at(&s, 5);
        assert_eq!(a, b);
        let c = mix.request_at(&RngStreams::new(8), 5);
        let d = mix.request_at(&s, 6);
        // Either another seed or another index must be able to differ;
        // check the generated population is not a single constant.
        let pool: Vec<ServeRequest> = (0..32).map(|i| mix.request_at(&s, i)).collect();
        let distinct = pool.iter().collect::<std::collections::HashSet<_>>().len();
        assert!(
            distinct > 4,
            "mix degenerated to {distinct} distinct requests"
        );
        let _ = (c, d);
    }

    #[test]
    fn unique_query_pool_duplicates_requests() {
        let mix = LoadMix {
            unique_queries: Some(4),
            ..LoadMix::standard(2, (40, 80))
        };
        let s = RngStreams::new(9);
        let a: Vec<ServeRequest> = (0..16).map(|i| mix.request_at(&s, i)).collect();
        assert_eq!(a[0], a[4]);
        assert_eq!(a[1], a[9]);
        let distinct = a.iter().collect::<std::collections::HashSet<_>>().len();
        assert!(distinct <= 4);
    }

    #[test]
    fn zipf_mix_is_deterministic_and_skewed() {
        let mix = MultiRaceMix::new(4, (40, 90), 1.1);
        let s = RngStreams::new(11);
        let a = mix.request_at(&s, 3);
        assert_eq!(a, mix.request_at(&s, 3), "pure function of (seed, index)");
        let mut counts = [0usize; 4];
        for i in 0..512 {
            counts[mix.request_at(&s, i).race] += 1;
        }
        assert!(
            counts[0] > counts[3],
            "race 0 must dominate the tail: {counts:?}"
        );
        assert!(
            counts.iter().all(|&c| c > 0),
            "every race must still appear: {counts:?}"
        );
        // Weights are a proper distribution, most popular first.
        let w = mix.weights();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
    }

    #[test]
    fn scenario_labels_ride_along_without_changing_draws() {
        let plain = MultiRaceMix::new(4, (40, 90), 1.1);
        let labeled = MultiRaceMix::new(4, (40, 90), 1.1).with_scenarios(vec![
            "indycar".into(),
            "tyre_strategy".into(),
            "caution_regime".into(),
            "wet_dry".into(),
        ]);
        let s = RngStreams::new(11);
        for i in 0..256 {
            let a = plain.request_at(&s, i);
            let (b, label) = labeled.labeled_request_at(&s, i);
            assert_eq!(a, b, "labels must not perturb the request stream");
            assert_eq!(label, labeled.scenario_label(b.race));
            assert!(label.is_some(), "every race in this mix is labeled");
        }
        // An unlabeled mix hands back None without changing anything else.
        let (req, label) = plain.labeled_request_at(&s, 7);
        assert_eq!(req, plain.request_at(&s, 7));
        assert!(label.is_none());
    }

    #[test]
    fn schedules_are_monotone_after_merge() {
        let mix = LoadMix::standard(1, (40, 50));
        let s = RngStreams::new(1);
        let parts = vec![
            schedule(&burst(Duration::from_millis(2), 3), &mix, &s, 0),
            schedule(
                &uniform(Duration::ZERO, Duration::from_millis(1), 4),
                &mix,
                &s,
                100,
            ),
            schedule(
                &ramp(Duration::ZERO, Duration::from_millis(5), 5),
                &mix,
                &s,
                200,
            ),
        ];
        let merged = merge(parts);
        assert_eq!(merged.len(), 12);
        assert!(merged.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
