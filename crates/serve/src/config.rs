//! Serving-layer tuning knobs.

use std::time::Duration;

/// Scheduler configuration for [`crate::serve`].
///
/// None of these knobs can change a forecast value — they move requests
/// between batches and workers, and the engine's determinism contract
/// (draws keyed on request identity, never batch position) makes that
/// placement invisible in the output bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads draining the submission queue.
    pub workers: usize,
    /// Coalesce up to this many queued requests into one engine batch call.
    pub max_batch: usize,
    /// Hold an under-full batch open this long, measured from its oldest
    /// request's arrival, before dispatching it anyway.
    pub max_delay: Duration,
    /// Bounded submission queue: a submission that would push the queue
    /// past this depth is rejected with a typed error instead of blocking.
    pub queue_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_batch: 16,
            max_delay: Duration::from_micros(500),
            queue_capacity: 1024,
        }
    }
}

impl ServeConfig {
    /// Clamp every knob to its sane minimum (1 worker, batches of at least
    /// one, a queue that admits at least one request).
    pub fn normalized(mut self) -> ServeConfig {
        self.workers = self.workers.max(1);
        self.max_batch = self.max_batch.max(1);
        self.queue_capacity = self.queue_capacity.max(1);
        self
    }
}

/// Shard layout for [`crate::serve_sharded`]: how many race shards the
/// region splits into. Kept separate from [`ServeConfig`] (which applies
/// per shard) so the flat scheduler's configuration surface is untouched.
///
/// Like the scheduler knobs, the topology cannot change a forecast value:
/// every shard runs a fork of the same engine with the same seed, and the
/// router only decides *where* a request is served, never *what* it
/// answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardTopology {
    /// Number of race shards (each with its own engine, mailbox, workers
    /// and supervisor).
    pub shards: usize,
}

impl Default for ShardTopology {
    fn default() -> Self {
        ShardTopology { shards: 1 }
    }
}

impl ShardTopology {
    pub fn new(shards: usize) -> ShardTopology {
        ShardTopology { shards }
    }

    /// Clamp to at least one shard.
    pub fn normalized(mut self) -> ShardTopology {
        self.shards = self.shards.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_topology_normalizes_to_one() {
        assert_eq!(ShardTopology::new(0).normalized().shards, 1);
        assert_eq!(ShardTopology::default().shards, 1);
        assert_eq!(ShardTopology::new(4).normalized().shards, 4);
    }

    #[test]
    fn normalized_enforces_minimums() {
        let cfg = ServeConfig {
            workers: 0,
            max_batch: 0,
            queue_capacity: 0,
            max_delay: Duration::ZERO,
        }
        .normalized();
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.max_batch, 1);
        assert_eq!(cfg.queue_capacity, 1);
    }
}
