//! The bounded mailbox: admission queue + one-shot response slots.
//!
//! Extracted from the flat scheduler so the unsharded serving region and
//! every race shard run the *same* admission code: a shard actor is a
//! [`Mailbox`] plus worker threads plus a supervisor, and the flat region
//! is the one-mailbox special case. Admission is all-or-nothing — a
//! submission either enters the queue (and will be answered, because
//! workers drain on shutdown and supervisors fallback-drain on failure)
//! or is refused with a typed [`SubmitError`] before any state changes.
//!
//! Queue state is plain data with no invariants a panicking holder could
//! break mid-update, so every lock here recovers a poisoned guard
//! (`into_inner`) instead of propagating — one crashed worker must not
//! wedge admission for the region.

use crate::metrics::ServeMetrics;
use crate::server::{ServeRequest, ServeResult, SubmitError};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// One-shot response slot a worker fills and a caller waits on.
pub(crate) struct Slot {
    state: Mutex<Option<ServeResult>>,
    ready: Condvar,
}

impl Slot {
    pub(crate) fn deliver(&self, result: ServeResult) {
        let mut guard = self.state.lock().unwrap_or_else(|p| p.into_inner());
        *guard = Some(result);
        self.ready.notify_all();
    }
}

/// Handle to a submitted request; [`Pending::wait`] blocks until the
/// scheduler answers (workers drain the queue on shutdown and supervisors
/// fallback-drain on shard failure, so an accepted request is always
/// answered).
pub struct Pending {
    id: u64,
    slot: Arc<Slot>,
}

impl Pending {
    /// Admission id — unique within its region (per shard, under sharded
    /// serving), assigned in submission order.
    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn wait(self) -> ServeResult {
        let mut guard = self.slot.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = self
                .slot
                .ready
                .wait(guard)
                .unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// A queued admission.
pub(crate) struct Entry {
    pub(crate) id: u64,
    pub(crate) req: ServeRequest,
    pub(crate) enqueued: Instant,
    pub(crate) slot: Arc<Slot>,
}

pub(crate) struct MailboxState {
    pub(crate) entries: VecDeque<Entry>,
    pub(crate) shutdown: bool,
    next_id: u64,
}

/// Bounded MPSC admission queue for one serving region (the flat region
/// or one race shard). Capacity overflow maps to
/// [`SubmitError::QueueFull`] — the shard-level backpressure signal.
pub(crate) struct Mailbox {
    state: Mutex<MailboxState>,
    pub(crate) wakeup: Condvar,
    capacity: usize,
}

impl Mailbox {
    pub(crate) fn new(capacity: usize) -> Mailbox {
        Mailbox {
            state: Mutex::new(MailboxState {
                entries: VecDeque::new(),
                shutdown: false,
                next_id: 0,
            }),
            wakeup: Condvar::new(),
            capacity,
        }
    }

    /// Queue state is plain data; recover a poisoned guard instead of
    /// propagating — one crashed lock-holder must not wedge the region.
    pub(crate) fn lock(&self) -> MutexGuard<'_, MailboxState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Full admission: record the attempt, enforce shutdown and capacity,
    /// enqueue, wake one worker. All-or-nothing — `Err` means the request
    /// never entered the queue.
    pub(crate) fn submit(
        &self,
        req: ServeRequest,
        metrics: &ServeMetrics,
    ) -> Result<Pending, SubmitError> {
        metrics.record_submitted();
        let mut q = self.lock();
        if q.shutdown {
            metrics.record_rejected_shutdown();
            return Err(SubmitError::ShuttingDown);
        }
        if q.entries.len() >= self.capacity {
            metrics.record_rejected_full();
            return Err(SubmitError::QueueFull {
                capacity: self.capacity,
            });
        }
        q.next_id += 1;
        let id = q.next_id;
        let slot = Arc::new(Slot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        });
        q.entries.push_back(Entry {
            id,
            req,
            enqueued: Instant::now(),
            slot: Arc::clone(&slot),
        });
        metrics.record_accepted(q.entries.len() as u64);
        drop(q);
        self.wakeup.notify_one();
        Ok(Pending { id, slot })
    }

    /// Close admission and wake every worker for the shutdown drain.
    pub(crate) fn close(&self) {
        self.lock().shutdown = true;
        self.wakeup.notify_all();
    }

    /// Requests admitted and not yet picked up by a worker.
    pub(crate) fn depth(&self) -> usize {
        self.lock().entries.len()
    }

    /// Take every queued entry at once — the supervisor's containment
    /// drain when a shard worker dies with a backlog behind it.
    pub(crate) fn drain_all(&self) -> Vec<Entry> {
        self.lock().entries.drain(..).collect()
    }
}
