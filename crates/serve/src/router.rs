//! The front router: hash `(race, origin)` keys to race shards and run a
//! sharded serving region.
//!
//! # Determinism contract for a fixed layout
//!
//! For a fixed `(shard_count, layout)` every response is bit-identical to
//! the unsharded path: [`shard_of`] is a pure FNV-1a hash of the request
//! key, each shard serves a [`ForecastEngine::fork`] carrying the live
//! seed/backend/cache sizing, and the engine keys every draw on
//! `(seed, race, origin)` — so *where* a request is served is invisible
//! in *what* it answers. Changing the shard count re-partitions the key
//! space (and re-numbers per-shard admission ids) but still cannot change
//! forecast bits.
//!
//! # Backpressure and failure
//!
//! Each shard's mailbox is bounded at `cfg.queue_capacity`; overflow on
//! the target shard surfaces as the same [`SubmitError::QueueFull`] the
//! flat scheduler returns — a hot shard rejects while cold shards keep
//! admitting. A shard whose worker dies is contained by its supervisor
//! (backlog answered as flagged CurRank fallbacks, worker respawned)
//! while every other shard serves bit-identically (`supervisor.rs`).

use crate::config::{ServeConfig, ShardTopology};
use crate::loadgen::Submitter;
use crate::mailbox::Pending;
use crate::metrics::ShardedSnapshot;
use crate::server::{ServeRequest, ServeResult, SubmitError};
use crate::shard::Shard;
use crate::supervisor::supervise;
use ranknet_core::engine::ForecastEngine;
use ranknet_core::features::RaceContext;
use ranknet_core::lifecycle::ModelSlot;
use std::sync::Arc;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Route a `(race, origin)` key to a shard: FNV-1a over the key's bytes,
/// reduced mod `shards`. Pure and stable — the layout for a fixed shard
/// count never changes across runs or machines.
pub fn shard_of(race: usize, origin: usize, shards: usize) -> usize {
    let shards = shards.max(1);
    let mut h = FNV_OFFSET;
    for b in (race as u64)
        .to_le_bytes()
        .into_iter()
        .chain((origin as u64).to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    (h % shards as u64) as usize
}

/// Submission handle over a sharded region; `Copy`, like
/// [`ServeClient`](crate::ServeClient).
#[derive(Clone, Copy)]
pub struct ShardedClient<'s, 'a> {
    shards: &'s [Shard<'a>],
}

impl<'s, 'a> ShardedClient<'s, 'a> {
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard [`ShardedClient::submit`] would route `req` to.
    pub fn shard_of(&self, req: &ServeRequest) -> usize {
        shard_of(req.race, req.origin, self.shards.len())
    }

    /// Route to the target shard's mailbox. All-or-nothing, per shard:
    /// `QueueFull` means *that shard* is at capacity.
    pub fn submit(&self, req: ServeRequest) -> Result<Pending, SubmitError> {
        let shard = &self.shards[self.shard_of(&req)];
        shard.shared.mailbox.submit(req, &shard.shared.metrics)
    }

    /// Submit and block until the response arrives.
    pub fn forecast(&self, req: ServeRequest) -> Result<ServeResult, SubmitError> {
        self.submit(req).map(Pending::wait)
    }

    /// Live per-shard counter snapshots.
    pub fn metrics(&self) -> ShardedSnapshot {
        ShardedSnapshot {
            per_shard: self
                .shards
                .iter()
                .map(|s| s.shared.metrics.snapshot())
                .collect(),
        }
    }

    /// Current submission-queue depth of shard `i`.
    pub fn shard_queue_depth(&self, i: usize) -> usize {
        self.shards[i].shared.mailbox.depth()
    }

    /// Every shard's model slot, in shard order — the handles a rolling
    /// hot-swap walks (`LifecycleController::rolling_swap`).
    pub fn slots(&self) -> Vec<Arc<ModelSlot>> {
        self.shards
            .iter()
            .map(|s| Arc::clone(s.shared.engine.slot()))
            .collect()
    }
}

impl Submitter for ShardedClient<'_, '_> {
    type Pending = Pending;

    fn submit(&self, req: ServeRequest) -> Result<Pending, SubmitError> {
        ShardedClient::submit(self, req)
    }

    fn wait(pending: Pending) -> Result<ServeResult, SubmitError> {
        Ok(pending.wait())
    }
}

/// Run a race-sharded serving region: fork `engine` once per shard, spawn
/// each shard's supervisor (which spawns and watches the shard's
/// workers), hand the body a routing [`ShardedClient`], and on return
/// close every mailbox, drain, join, and report per-shard metrics.
///
/// `topo.shards == 1` is the flat scheduler with one level of supervision
/// added; responses are bit-identical to [`crate::serve`] either way.
pub fn serve_sharded<R>(
    engine: &ForecastEngine,
    contexts: &[&RaceContext],
    cfg: &ServeConfig,
    topo: ShardTopology,
    body: impl FnOnce(ShardedClient<'_, '_>) -> R,
) -> (R, ShardedSnapshot) {
    let cfg = cfg.normalized();
    let topo = topo.normalized();
    let engines: Vec<ForecastEngine> = (0..topo.shards).map(|_| engine.fork()).collect();
    let shards: Vec<Shard<'_>> = engines
        .iter()
        .enumerate()
        .map(|(i, eng)| Shard::new(i, eng, contexts, cfg))
        .collect();

    let out = std::thread::scope(|s| {
        for shard in &shards {
            s.spawn(|| supervise(s, shard));
        }
        let out = body(ShardedClient { shards: &shards });
        for shard in &shards {
            shard.shared.mailbox.close();
        }
        out
    });
    for shard in &shards {
        shard
            .shared
            .metrics
            .set_model_version(shard.shared.engine.model_version());
    }
    (
        out,
        ShardedSnapshot {
            per_shard: shards.iter().map(|s| s.shared.metrics.snapshot()).collect(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for race in 0..4 {
                for origin in 0..64 {
                    let s = shard_of(race, origin, shards);
                    assert!(s < shards);
                    assert_eq!(s, shard_of(race, origin, shards), "pure function");
                }
            }
        }
        // One shard degenerates to the flat layout.
        assert_eq!(shard_of(3, 99, 1), 0);
        assert_eq!(shard_of(3, 99, 0), 0, "zero shards clamps to one");
    }

    #[test]
    fn shard_of_spreads_a_multi_race_mix() {
        // 4 races × 64 origins over 4 shards: no shard may be empty —
        // the scaling bench depends on the hash actually spreading load.
        let mut counts = [0usize; 4];
        for race in 0..4 {
            for origin in 0..64 {
                counts[shard_of(race, origin, 4)] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c > 0), "empty shard: {counts:?}");
    }
}
