//! Short mixed-load soak (kept well under 10 s — it is a named CI gate):
//! bursts, a ramp and a steady trickle over two interleaved races, some
//! requests deadline-budgeted, served over a deliberately tiny encoder
//! cache. Asserts the full contract at once: conservation, bitwise parity
//! for model responses, CurRank bits for fallbacks, and a bounded cache.

mod common;

use common::{assert_parity, bits, fixture, ENGINE_SEED};
use ranknet_core::engine::{currank_forecast, ForecastEngine};
use rpf_nn::RngStreams;
use rpf_serve::loadgen::{self, LoadMix};
use rpf_serve::{serve, FallbackReason, ServeConfig};
use std::collections::HashSet;
use std::time::Duration;

#[test]
fn mixed_load_soak_preserves_every_contract() {
    let (model, contexts) = fixture();
    let refs: Vec<_> = contexts.iter().collect();
    let cache_cap = 4;
    let engine = ForecastEngine::new(model, ENGINE_SEED)
        .with_threads(1)
        .with_cache_capacity(cache_cap);
    let cfg = ServeConfig {
        workers: 4,
        max_batch: 8,
        max_delay: Duration::from_micros(500),
        queue_capacity: 512,
    };

    let streams = RngStreams::new(0x50AC);
    let plain = LoadMix::standard(2, (40, 120));
    let hot = LoadMix {
        unique_queries: Some(4),
        ..LoadMix::standard(2, (60, 90))
    };
    let budgeted = LoadMix {
        deadline: Some(Duration::from_millis(1)),
        ..LoadMix::standard(2, (40, 120))
    };

    let ms = Duration::from_millis;
    let script = loadgen::merge(vec![
        loadgen::schedule(&loadgen::burst(ms(0), 16), &hot, &streams.child(0), 0),
        loadgen::schedule(
            &loadgen::ramp(ms(5), ms(400), 24),
            &plain,
            &streams.child(1),
            1_000,
        ),
        loadgen::schedule(
            &loadgen::uniform(ms(10), ms(25), 16),
            &budgeted,
            &streams.child(2),
            2_000,
        ),
        loadgen::schedule(&loadgen::burst(ms(200), 12), &hot, &streams.child(3), 3_000),
    ]);
    let total = script.len();

    let (report, metrics) = serve(&engine, &refs, &cfg, |client| {
        loadgen::run_open_loop(client, &script)
    });

    // Conservation: every submission is accounted for, exactly once.
    assert_eq!(report.submitted(), total);
    assert!(report.rejected.is_empty(), "queue sized for this soak");
    assert_eq!(report.outcomes.len(), total);
    let ids: HashSet<u64> = report
        .outcomes
        .iter()
        .filter_map(|(_, o)| o.as_ref().ok().map(|r| r.id))
        .collect();
    assert_eq!(ids.len(), total, "duplicated or lost responses");
    assert_eq!(metrics.completed, total as u64);
    assert_eq!(
        metrics.ok_responses + metrics.fallback_deadline + metrics.fallback_panic + metrics.invalid,
        metrics.completed
    );
    assert_eq!(metrics.worker_panics, 0);

    // Bitwise contract: model responses replay the direct call; deadline
    // fallbacks carry exactly the CurRank persistence forecast.
    for (req, outcome) in &report.outcomes {
        match outcome {
            Ok(resp) if resp.fallback == Some(FallbackReason::DeadlineExpired) => {
                let reference =
                    currank_forecast(&contexts[req.race], req.origin, req.horizon, req.n_samples)
                        .expect("fallback implies a valid request");
                assert_eq!(bits(&reference), bits(&resp.forecast));
                assert!(resp.forecast.degraded);
            }
            _ => assert_parity(req, outcome),
        }
    }

    // The tiny encoder cache stayed bounded and actually evicted: the mix
    // spans far more than `cache_cap` distinct (race, origin) pairs.
    assert!(
        engine.cache_len() <= cache_cap,
        "cache grew to {} past its cap {cache_cap}",
        engine.cache_len()
    );
    let t = engine.timings();
    assert!(t.cache_evictions > 0, "soak must exercise eviction");
}
