//! Scenario-mixed serving workload: one race per scenario family, served
//! through the batched layer under a labeled Zipf mix. Labels are pure
//! metadata — the request stream is bit-identical to the unlabeled mix —
//! but they let the report slice completions per family, which is what the
//! cross-scenario bench does at scale.

mod common;

use common::ENGINE_SEED;
use ranknet_core::engine::ForecastEngine;
use ranknet_core::features::{extract_sequences, RaceContext};
use rpf_nn::RngStreams;
use rpf_racesim::{simulate_scenario, Event, ScenarioConfig, ScenarioFamily};
use rpf_serve::loadgen::{self, MultiRaceMix};
use rpf_serve::{serve, ServeConfig};
use std::collections::HashMap;
use std::time::Duration;

/// One featurized race per scenario family, race index = family order.
fn scenario_contexts() -> Vec<(ScenarioFamily, RaceContext)> {
    ScenarioFamily::ALL
        .iter()
        .map(|&family| {
            let cfg = ScenarioConfig::standard(family, Event::Indy500, 2018);
            let ctx = extract_sequences(&simulate_scenario(&cfg, 77));
            (family, ctx)
        })
        .collect()
}

fn labeled_mix() -> MultiRaceMix {
    let labels = ScenarioFamily::ALL
        .iter()
        .map(|f| f.name().to_string())
        .collect();
    let mut mix = MultiRaceMix::new(4, (60, 110), 1.0).with_scenarios(labels);
    mix.mix.sample_counts = vec![4];
    mix
}

#[test]
fn mixed_scenario_workload_serves_every_family() {
    let (model, _) = common::fixture();
    let pairs = scenario_contexts();
    let contexts: Vec<&RaceContext> = pairs.iter().map(|(_, c)| c).collect();
    let mix = labeled_mix();
    let streams = RngStreams::new(0x5CEA);

    let script = mix.schedule(&loadgen::burst(Duration::ZERO, 96), &streams, 0);
    let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);
    let cfg = ServeConfig {
        workers: 2,
        max_batch: 4,
        max_delay: Duration::from_millis(2),
        queue_capacity: 1024,
    };
    let (report, metrics) = serve(&engine, &contexts, &cfg, |client| {
        loadgen::run_open_loop(client, &script)
    });

    assert!(report.rejected.is_empty(), "queue sized for the full burst");
    assert_eq!(report.outcomes.len(), 96, "one response per submission");
    assert_eq!(metrics.completed, 96);

    // Slice completions per scenario family via the mix's labels: under
    // Zipf(1.0) over four races every family must see traffic, and every
    // request's label must match the family that generated its race.
    let mut per_family: HashMap<&str, usize> = HashMap::new();
    for (req, outcome) in &report.outcomes {
        let label = mix.scenario_label(req.race).expect("every race is labeled");
        assert_eq!(label, pairs[req.race].0.name());
        assert!(outcome.is_ok(), "in-range request must serve: {outcome:?}");
        *per_family.entry(label).or_default() += 1;
    }
    assert_eq!(per_family.len(), 4, "all four families saw traffic");
    for (family, n) in &per_family {
        assert!(*n > 0, "family {family} starved");
    }
}

/// The labeled schedule replays bit-identically: same seeds, same script —
/// and identical to the unlabeled mix's script (labels never touch RNG).
#[test]
fn labeled_schedule_is_deterministic_and_label_free_on_the_wire() {
    let mix = labeled_mix();
    let plain = MultiRaceMix {
        scenario_of: Vec::new(),
        ..mix.clone()
    };
    let streams = RngStreams::new(0x5CEA);
    let times = loadgen::burst(Duration::ZERO, 64);
    let a = mix.schedule(&times, &streams, 0);
    let b = mix.schedule(&times, &streams, 0);
    let c = plain.schedule(&times, &streams, 0);
    assert_eq!(a, b, "schedule must be a pure function of (seed, times)");
    assert_eq!(a, c, "labels must leave the wire traffic untouched");
}
