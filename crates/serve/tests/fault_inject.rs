//! Fault-injection matrix for the serving scheduler (requires the
//! `fault-inject` feature): a worker panic mid-batch must degrade only the
//! poisoned request to a flagged CurRank fallback, a poisoned queue mutex
//! must be recovered without hanging or dropping anything, and deadline
//! expiry must answer with the flagged fallback — never a hang, never a
//! lost response.
#![cfg(feature = "fault-inject")]

mod common;

use common::{alt_model, assert_parity, bits, fixture, store_root, ENGINE_SEED};
use ranknet_core::engine::{currank_forecast, ForecastEngine};
use ranknet_core::lifecycle::{fault as core_fault, LifecycleError, ModelStore};
use rpf_serve::fault::{self, ServeFaultPlan};
use rpf_serve::{
    serve, serve_sharded, serve_with_lifecycle, shard_of, CandidateDecision, FallbackReason,
    LifecycleConfig, LifecycleController, ServeConfig, ServeRequest, ShardTopology,
};
use std::sync::{Arc, Mutex};
use std::time::Duration;

// The fault plan is process-global: tests installing plans serialize here.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    match TEST_LOCK.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Submit `reqs` in order, wait for everything, return (request, outcome)
/// pairs. Admission ids are assigned in submission order starting at 1, so
/// fault plans can target exact requests.
fn serve_all(
    cfg: &ServeConfig,
    reqs: &[ServeRequest],
) -> (
    Vec<(ServeRequest, rpf_serve::ServeResult)>,
    rpf_serve::MetricsSnapshot,
) {
    let (model, contexts) = fixture();
    let refs: Vec<_> = contexts.iter().collect();
    let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);
    serve(&engine, &refs, cfg, |client| {
        let pending: Vec<_> = reqs
            .iter()
            .map(|&req| (req, client.submit(req).expect("queue sized for the load")))
            .collect();
        pending
            .into_iter()
            .map(|(req, p)| (req, p.wait()))
            .collect::<Vec<_>>()
    })
}

/// A planned panic while forecasting one request of a batch: that request
/// degrades to the flagged CurRank fallback, its batch neighbours still
/// get bit-exact model forecasts, and nothing hangs or is dropped.
#[test]
fn worker_panic_mid_batch_degrades_only_the_poisoned_request() {
    let _guard = locked();
    // Ids are assigned in submission order starting at 1: target the 2nd.
    fault::install(ServeFaultPlan::new().panic_on_request(2));

    let cfg = ServeConfig {
        workers: 1,
        max_batch: 8,
        max_delay: Duration::from_millis(200),
        queue_capacity: 64,
    };
    let reqs: Vec<ServeRequest> = (0..4)
        .map(|i| ServeRequest::new(i % 2, 60 + 5 * i, 2, 3))
        .collect();
    let (outcomes, metrics) = serve_all(&cfg, &reqs);
    fault::clear();

    assert_eq!(outcomes.len(), 4, "a panic must not drop responses");
    let (_, contexts) = fixture();
    let mut degraded = 0;
    for (req, outcome) in &outcomes {
        let resp = outcome.as_ref().expect("all requests here are valid");
        if resp.id == 2 {
            degraded += 1;
            assert_eq!(resp.fallback, Some(FallbackReason::WorkerPanic));
            assert!(resp.forecast.degraded);
            let reference =
                currank_forecast(&contexts[req.race], req.origin, req.horizon, req.n_samples)
                    .expect("valid request");
            assert_eq!(bits(&reference), bits(&resp.forecast));
        } else {
            // Neighbours of the poisoned request are retried one at a time
            // and must still match the direct call exactly.
            assert_parity(req, outcome);
        }
    }
    assert_eq!(degraded, 1);
    assert_eq!(metrics.fallback_panic, 1);
    assert_eq!(metrics.ok_responses, 3);
    assert_eq!(metrics.completed, 4);
    // The batch attempt panics once, then the per-request retry panics
    // again on the poisoned request.
    assert!(
        metrics.worker_panics >= 2,
        "expected batch + retry panics, saw {}",
        metrics.worker_panics
    );
}

/// A worker panicking while it *holds the queue mutex* poisons the lock
/// for every thread after it. The scheduler must recover the poison and
/// keep serving: no hang, no lost response.
#[test]
fn poisoned_queue_mutex_is_recovered_and_service_continues() {
    let _guard = locked();
    fault::install(ServeFaultPlan::new().poison_queue_once());

    let cfg = ServeConfig {
        workers: 2,
        max_batch: 4,
        max_delay: Duration::from_micros(200),
        queue_capacity: 64,
    };
    let reqs: Vec<ServeRequest> = (0..6)
        .map(|i| ServeRequest::new(i % 2, 70 + 3 * i, 1, 2))
        .collect();
    let (outcomes, metrics) = serve_all(&cfg, &reqs);
    fault::clear();

    assert_eq!(outcomes.len(), 6, "poisoned mutex must not drop requests");
    for (req, outcome) in &outcomes {
        assert_parity(req, outcome);
    }
    assert_eq!(metrics.completed, 6);
    assert_eq!(metrics.ok_responses, 6);
    assert_eq!(
        metrics.queue_poison_recoveries, 1,
        "the injected poison fires exactly once and is recovered"
    );
}

/// A zero deadline always expires in the queue: the response must be the
/// flagged CurRank fallback with exactly the persistence bits — delivered,
/// not dropped, and never blocking on the model.
#[test]
fn expired_deadline_degrades_to_flagged_currank_fallback() {
    let _guard = locked();
    fault::clear(); // no scheduler faults — deadline expiry is config-driven

    let cfg = ServeConfig {
        workers: 2,
        max_batch: 4,
        max_delay: Duration::from_micros(100),
        queue_capacity: 64,
    };
    let expired = ServeRequest::new(0, 80, 3, 4).with_deadline(Duration::ZERO);
    let live = ServeRequest::new(1, 90, 2, 2);
    let (outcomes, metrics) = serve_all(&cfg, &[expired, live]);

    assert_eq!(outcomes.len(), 2);
    let (_, contexts) = fixture();
    for (req, outcome) in &outcomes {
        let resp = outcome.as_ref().expect("both requests are valid");
        if req.deadline.is_some() {
            assert_eq!(resp.fallback, Some(FallbackReason::DeadlineExpired));
            assert!(resp.forecast.degraded);
            let reference =
                currank_forecast(&contexts[req.race], req.origin, req.horizon, req.n_samples)
                    .expect("valid request");
            assert_eq!(bits(&reference), bits(&resp.forecast));
        } else {
            assert_parity(req, outcome);
        }
    }
    assert_eq!(metrics.fallback_deadline, 1);
    assert_eq!(metrics.ok_responses, 1);
    assert_eq!(metrics.completed, 2);
    assert_eq!(metrics.worker_panics, 0);
}

// ---- lifecycle fault matrix (DESIGN.md §14) --------------------------------

/// Panic injected *inside* the hot-swap, fired from a worker thread while
/// a batch is mid-flight: the swap must abort atomically — the old version
/// keeps serving every request bit-exactly, the candidate's artifact is
/// quarantined, and the rollback is visible in the region metrics.
#[test]
fn panic_mid_swap_under_traffic_keeps_old_version_serving() {
    let _guard = locked();
    let (model, contexts) = fixture();
    let refs: Vec<_> = contexts.iter().collect();
    let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);

    let root = store_root("panic_mid_swap");
    let store = ModelStore::open(&root).expect("store opens");
    let candidate = store
        .publish(alt_model(), None, "candidate")
        .expect("publish");
    let lc = Arc::new(LifecycleController::new(LifecycleConfig::default()).with_store(store));

    // The swap hook runs from the worker thread, mid-batch; it owns Arc
    // clones because the fault plan is process-global ('static).
    let hook_lc = Arc::clone(&lc);
    let hook_slot = Arc::clone(engine.slot());
    let version = candidate.version;
    core_fault::arm_panic_next_swap();
    fault::install(ServeFaultPlan::new().swap_on_request(2, move || {
        hook_lc.swap_now_slot(&hook_slot, version, Arc::new(alt_model().clone()));
    }));

    let cfg = ServeConfig {
        workers: 1,
        max_batch: 8,
        max_delay: Duration::from_millis(200),
        queue_capacity: 64,
    };
    let reqs: Vec<ServeRequest> = (0..4)
        .map(|i| ServeRequest::new(i % 2, 60 + 5 * i, 2, 3))
        .collect();
    let (outcomes, metrics) = serve_with_lifecycle(&engine, &refs, &cfg, &lc, |client| {
        let pending: Vec<_> = reqs
            .iter()
            .map(|&req| (req, client.submit(req).expect("queue sized for the load")))
            .collect();
        pending
            .into_iter()
            .map(|(req, p)| (req, p.wait()))
            .collect::<Vec<_>>()
    });
    fault::clear();
    core_fault::clear();

    assert_eq!(outcomes.len(), 4, "an aborted swap must not drop responses");
    for (req, outcome) in &outcomes {
        let resp = outcome.as_ref().expect("all requests here are valid");
        assert!(resp.fallback.is_none(), "aborted swap degraded {req:?}");
        assert_eq!(resp.forecast.model_version, 0, "old version must serve");
        assert_parity(req, outcome);
    }
    assert_eq!(engine.model_version(), 0);
    assert_eq!(
        lc.decisions(),
        vec![CandidateDecision::RolledBack {
            version,
            samples: 0,
            mean_divergence_milli: 0,
        }]
    );
    assert_eq!(metrics.rollbacks, 1);
    assert_eq!(metrics.swaps, 0);
    assert_eq!(metrics.model_version, 0);
    let quarantined = lc
        .store()
        .expect("attached")
        .quarantined()
        .expect("readable");
    assert!(
        quarantined.iter().any(|q| q.contains("swap-panic")),
        "candidate must be quarantined after the aborted swap, saw {quarantined:?}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// The same aborted swap fired while the region is already draining its
/// queue after shutdown: every drained request is still answered on the
/// old version, nothing hangs, and the candidate is quarantined.
#[test]
fn panic_mid_swap_during_shutdown_drain_answers_everything_on_old_version() {
    let _guard = locked();
    let (model, contexts) = fixture();
    let refs: Vec<_> = contexts.iter().collect();
    let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);

    let root = store_root("drain_swap");
    let store = ModelStore::open(&root).expect("store opens");
    let candidate = store
        .publish(alt_model(), None, "candidate")
        .expect("publish");
    let lc = Arc::new(LifecycleController::new(LifecycleConfig::default()).with_store(store));

    let hook_lc = Arc::clone(&lc);
    let hook_slot = Arc::clone(engine.slot());
    let version = candidate.version;
    core_fault::arm_panic_next_swap();
    fault::install(ServeFaultPlan::new().swap_on_request(3, move || {
        hook_lc.swap_now_slot(&hook_slot, version, Arc::new(alt_model().clone()));
    }));

    let cfg = ServeConfig {
        workers: 1,
        max_batch: 2,
        max_delay: Duration::from_millis(50),
        queue_capacity: 64,
    };
    let reqs: Vec<ServeRequest> = (0..5)
        .map(|i| ServeRequest::new(i % 2, 62 + 4 * i, 2, 3))
        .collect();
    // Submit everything and return immediately: the region shuts down with
    // the queue full, and the drain path serves (and swaps) after close.
    let (pending, metrics) = serve_with_lifecycle(&engine, &refs, &cfg, &lc, |client| {
        reqs.iter()
            .map(|&req| (req, client.submit(req).expect("queue sized for the load")))
            .collect::<Vec<_>>()
    });
    fault::clear();
    core_fault::clear();

    assert_eq!(pending.len(), 5, "drain must answer every accepted request");
    for (req, p) in pending {
        let outcome = p.wait();
        let resp = outcome.as_ref().expect("all requests here are valid");
        assert!(resp.fallback.is_none());
        assert_eq!(resp.forecast.model_version, 0, "old version must serve");
        assert_parity(&req, &outcome);
    }
    assert_eq!(engine.model_version(), 0);
    assert_eq!(metrics.completed, 5);
    assert_eq!(metrics.rollbacks, 1);
    assert_eq!(metrics.swaps, 0);
    let quarantined = lc
        .store()
        .expect("attached")
        .quarantined()
        .expect("readable");
    assert!(
        quarantined.iter().any(|q| q.contains("swap-panic")),
        "candidate must be quarantined, saw {quarantined:?}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// A crash between the artifact write and the manifest write (torn
/// publish): the publish fails, the next store open quarantines the torn
/// directory, its version id is never reused, and the serving region keeps
/// answering on the old version throughout.
#[test]
fn torn_publish_is_quarantined_and_old_version_keeps_serving() {
    let _guard = locked();
    fault::clear();
    let (model, contexts) = fixture();
    let refs: Vec<_> = contexts.iter().collect();
    let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);

    let root = store_root("torn_publish");
    let store = ModelStore::open(&root).expect("store opens");
    let live = store.publish(model, None, "baseline").expect("publish");
    store.set_current(live.version).expect("promote baseline");

    core_fault::arm_tear_next_publish();
    let torn = store.publish(alt_model(), Some(live.version), "candidate");
    core_fault::clear();
    let torn_version = match torn {
        Err(LifecycleError::Torn { version }) => version,
        other => panic!("expected torn publish, got {other:?}"),
    };

    // Reopen = crash recovery: the sweep moves the torn directory aside.
    let store = ModelStore::open(&root).expect("reopen sweeps");
    let quarantined = store.quarantined().expect("readable");
    assert!(
        quarantined.iter().any(|q| q.contains("torn")),
        "torn artifact must be quarantined, saw {quarantined:?}"
    );
    assert!(!store.versions().expect("readable").contains(&torn_version));
    assert_eq!(store.current().expect("readable"), Some(live.version));
    // The torn id is burnt, never recycled for a later publish.
    let next = store
        .publish(alt_model(), Some(live.version), "retry")
        .expect("publish");
    assert!(
        next.version > torn_version,
        "version ids must never be reused"
    );

    let lc = LifecycleController::new(LifecycleConfig::default()).with_store(store);
    let (_, metrics) = serve_with_lifecycle(&engine, &refs, &serve_cfg_small(), &lc, |client| {
        for i in 0..3 {
            let resp = client
                .forecast(ServeRequest::new(i % 2, 75 + i, 2, 3))
                .expect("accepted")
                .expect("valid");
            assert!(resp.fallback.is_none());
            assert_eq!(resp.forecast.model_version, 0);
        }
    });
    assert_eq!(metrics.completed, 3);
    assert_eq!(metrics.model_version, 0);
    let _ = std::fs::remove_dir_all(&root);
}

/// Bit rot in a published candidate: the checksum mismatch is detected at
/// load, the artifact is quarantined (at most one hit), and the serving
/// region never sees the bad weights.
#[test]
fn checksum_corrupt_candidate_is_quarantined_before_it_can_serve() {
    let _guard = locked();
    fault::clear();
    let (model, contexts) = fixture();
    let refs: Vec<_> = contexts.iter().collect();
    let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);

    let root = store_root("corrupt_candidate");
    let store = ModelStore::open(&root).expect("store opens");
    let candidate = store
        .publish(alt_model(), None, "candidate")
        .expect("publish");

    // Flip bytes in the committed artifact behind the manifest's back.
    let artifact = root
        .join("versions")
        .join(format!("v{:06}", candidate.version))
        .join("model.json");
    let mut bytes = std::fs::read(&artifact).expect("artifact readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x55;
    std::fs::write(&artifact, &bytes).expect("artifact writable");

    match store.load(candidate.version) {
        Err(LifecycleError::Corrupt { version, .. }) => assert_eq!(version, candidate.version),
        Err(other) => panic!("expected checksum failure, got {other:?}"),
        Ok(_) => panic!("corrupt artifact must not load"),
    }
    let quarantined = store.quarantined().expect("readable");
    assert!(
        quarantined.iter().any(|q| q.contains("corrupt")),
        "corrupt artifact must be quarantined, saw {quarantined:?}"
    );
    assert!(
        matches!(
            store.load(candidate.version),
            Err(LifecycleError::NotFound(v)) if v == candidate.version
        ),
        "a quarantined artifact can be hit at most once"
    );

    // The region never staged the corrupt candidate: old version serves.
    let lc = LifecycleController::new(LifecycleConfig::default()).with_store(store);
    let (_, metrics) = serve_with_lifecycle(&engine, &refs, &serve_cfg_small(), &lc, |client| {
        for i in 0..3 {
            let resp = client
                .forecast(ServeRequest::new(i % 2, 68 + 2 * i, 2, 3))
                .expect("accepted")
                .expect("valid");
            assert!(resp.fallback.is_none());
            assert_eq!(resp.forecast.model_version, 0);
        }
    });
    assert_eq!(metrics.completed, 3);
    assert_eq!(metrics.swaps + metrics.rollbacks, 0);
    assert_eq!(metrics.model_version, 0);
    let _ = std::fs::remove_dir_all(&root);
}

// ---- shard fault matrix (DESIGN.md §15) ------------------------------------

/// A worker killed on one shard under multi-race traffic: the killed
/// shard's backlog degrades to flagged CurRank fallbacks, the supervisor
/// restarts the worker, and every other shard keeps serving bit-identical
/// model forecasts. Accounting must cover every accepted request.
#[test]
fn shard_worker_kill_degrades_only_the_killed_shard() {
    let _guard = locked();
    let (model, contexts) = fixture();
    let refs: Vec<_> = contexts.iter().collect();
    let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);

    let cfg = ServeConfig {
        workers: 1,
        max_batch: 8,
        max_delay: Duration::from_millis(200),
        queue_capacity: 64,
    };
    let topo = ShardTopology::new(2);
    let reqs: Vec<ServeRequest> = (0..8)
        .map(|i| ServeRequest::new(i % 2, 60 + 3 * i, 2, 3))
        .collect();
    // The first request admitted to its shard gets per-shard id 1: target it.
    let killed = shard_of(reqs[0].race, reqs[0].origin, 2);
    fault::install(ServeFaultPlan::new().kill_shard_worker(killed, 1));

    let (outcomes, sharded) = serve_sharded(&engine, &refs, &cfg, topo, |client| {
        let pending: Vec<_> = reqs
            .iter()
            .map(|&req| {
                let shard = client.shard_of(&req);
                (req, shard, client.submit(req).expect("queue sized"))
            })
            .collect();
        pending
            .into_iter()
            .map(|(req, shard, p)| (req, shard, p.wait()))
            .collect::<Vec<_>>()
    });
    fault::clear();

    assert_eq!(outcomes.len(), 8, "a killed shard must not drop responses");
    let mut shard_fallbacks = 0u64;
    for (req, shard, outcome) in &outcomes {
        let resp = outcome.as_ref().expect("all requests here are valid");
        if resp.fallback == Some(FallbackReason::ShardFailure) {
            assert_eq!(*shard, killed, "only the killed shard may degrade");
            assert!(resp.forecast.degraded);
            let reference =
                currank_forecast(&contexts[req.race], req.origin, req.horizon, req.n_samples)
                    .expect("valid request");
            assert_eq!(bits(&reference), bits(&resp.forecast));
            shard_fallbacks += 1;
        } else {
            // Survivor shards — and post-restart service on the killed one —
            // stay bit-identical to the direct engine call.
            assert_parity(req, outcome);
        }
    }
    assert!(shard_fallbacks >= 1, "the killed batch must degrade");
    let merged = sharded.merged();
    assert_eq!(merged.completed, 8, "every accepted request is answered");
    assert_eq!(merged.fallback_shard, shard_fallbacks);
    assert_eq!(merged.ok_responses, 8 - shard_fallbacks);
    assert!(
        merged.shard_restarts >= 1,
        "the supervisor must restart the killed worker"
    );
    let survivor = &sharded.per_shard[killed ^ 1];
    assert_eq!(survivor.fallback_shard, 0);
    assert_eq!(survivor.shard_restarts, 0);
    assert_eq!(survivor.worker_panics, 0);
}

/// A poisoned mailbox mutex on one shard: that shard recovers the poison
/// and keeps serving, no request is dropped anywhere, and the other
/// shard's metrics never see the fault.
#[test]
fn poisoned_shard_mailbox_is_recovered_and_other_shards_unaffected() {
    let _guard = locked();
    let (model, contexts) = fixture();
    let refs: Vec<_> = contexts.iter().collect();
    let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);

    let cfg = ServeConfig {
        workers: 2,
        max_batch: 4,
        max_delay: Duration::from_micros(200),
        queue_capacity: 64,
    };
    let topo = ShardTopology::new(2);
    let reqs: Vec<ServeRequest> = (0..8)
        .map(|i| ServeRequest::new(i % 2, 70 + 3 * i, 1, 2))
        .collect();
    let poisoned = shard_of(reqs[0].race, reqs[0].origin, 2);
    fault::install(ServeFaultPlan::new().poison_shard_mailbox(poisoned));

    let (outcomes, sharded) = serve_sharded(&engine, &refs, &cfg, topo, |client| {
        let pending: Vec<_> = reqs
            .iter()
            .map(|&req| (req, client.submit(req).expect("queue sized")))
            .collect();
        pending
            .into_iter()
            .map(|(req, p)| (req, p.wait()))
            .collect::<Vec<_>>()
    });
    fault::clear();

    assert_eq!(outcomes.len(), 8, "poisoned mailbox must not drop requests");
    for (req, outcome) in &outcomes {
        assert_parity(req, outcome);
    }
    let merged = sharded.merged();
    assert_eq!(merged.completed, 8);
    assert_eq!(merged.ok_responses, 8);
    assert_eq!(
        sharded.per_shard[poisoned].queue_poison_recoveries, 1,
        "the injected poison fires exactly once on the target shard"
    );
    assert_eq!(sharded.per_shard[poisoned ^ 1].queue_poison_recoveries, 0);
}

/// A panic while rolling a new model across the shard fleet: the rollout
/// unwinds every shard already swapped, all shards converge back to the
/// old version, the candidate is quarantined, and post-roll traffic stays
/// bit-identical to the pre-roll bits.
#[test]
fn rolling_swap_panic_unwinds_every_shard_to_the_old_version() {
    let _guard = locked();
    let (model, contexts) = fixture();
    let refs: Vec<_> = contexts.iter().collect();
    let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);

    let root = store_root("rolling_swap_panic");
    let store = ModelStore::open(&root).expect("store opens");
    let candidate = store
        .publish(alt_model(), None, "candidate")
        .expect("publish");
    let lc = LifecycleController::new(LifecycleConfig::default()).with_store(store);
    let version = candidate.version;

    // Shards 0 and 1 swap, shard 2 panics mid-roll, shard 3 is never reached.
    fault::install(ServeFaultPlan::new().panic_on_rolling_shard(2));

    let topo = ShardTopology::new(4);
    let (decision, sharded) = serve_sharded(&engine, &refs, &serve_cfg_small(), topo, |client| {
        for i in 0..4 {
            let resp = client
                .forecast(ServeRequest::new(i % 2, 64 + 2 * i, 1, 2))
                .expect("accepted")
                .expect("valid");
            assert_eq!(resp.forecast.model_version, 0);
        }
        let slots = client.slots();
        assert_eq!(slots.len(), 4);
        let decision = lc.rolling_swap(&slots, version, Arc::new(alt_model().clone()));
        // After the aborted roll every shard must serve the old bits again.
        for i in 0..4 {
            let req = ServeRequest::new(i % 2, 80 + 2 * i, 1, 2);
            let outcome = client.forecast(req).expect("accepted");
            let resp = outcome.as_ref().expect("valid");
            assert!(resp.fallback.is_none(), "aborted roll degraded {req:?}");
            assert_eq!(resp.forecast.model_version, 0, "old version must serve");
            assert_parity(&req, &outcome);
        }
        decision
    });
    fault::clear();

    assert_eq!(
        decision,
        CandidateDecision::RolledBack {
            version,
            samples: 0,
            mean_divergence_milli: 0,
        }
    );
    assert_eq!(lc.decisions(), vec![decision]);
    let merged = sharded.merged();
    assert_eq!(merged.completed, 8);
    assert_eq!(merged.ok_responses, 8);
    assert_eq!(merged.model_version, 0, "no shard may keep the candidate");
    let quarantined = lc
        .store()
        .expect("attached")
        .quarantined()
        .expect("readable");
    assert!(
        quarantined.iter().any(|q| q.contains("rolling-swap-panic")),
        "candidate must be quarantined after the aborted roll, saw {quarantined:?}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

fn serve_cfg_small() -> ServeConfig {
    ServeConfig {
        workers: 1,
        max_batch: 4,
        max_delay: Duration::from_micros(200),
        queue_capacity: 64,
    }
}
