//! Fault-injection matrix for the serving scheduler (requires the
//! `fault-inject` feature): a worker panic mid-batch must degrade only the
//! poisoned request to a flagged CurRank fallback, a poisoned queue mutex
//! must be recovered without hanging or dropping anything, and deadline
//! expiry must answer with the flagged fallback — never a hang, never a
//! lost response.
#![cfg(feature = "fault-inject")]

mod common;

use common::{assert_parity, bits, fixture, ENGINE_SEED};
use ranknet_core::engine::{currank_forecast, ForecastEngine};
use rpf_serve::fault::{self, ServeFaultPlan};
use rpf_serve::{serve, FallbackReason, ServeConfig, ServeRequest};
use std::sync::Mutex;
use std::time::Duration;

// The fault plan is process-global: tests installing plans serialize here.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    match TEST_LOCK.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Submit `reqs` in order, wait for everything, return (request, outcome)
/// pairs. Admission ids are assigned in submission order starting at 1, so
/// fault plans can target exact requests.
fn serve_all(
    cfg: &ServeConfig,
    reqs: &[ServeRequest],
) -> (
    Vec<(ServeRequest, rpf_serve::ServeResult)>,
    rpf_serve::MetricsSnapshot,
) {
    let (model, contexts) = fixture();
    let refs: Vec<_> = contexts.iter().collect();
    let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);
    serve(&engine, &refs, cfg, |client| {
        let pending: Vec<_> = reqs
            .iter()
            .map(|&req| (req, client.submit(req).expect("queue sized for the load")))
            .collect();
        pending
            .into_iter()
            .map(|(req, p)| (req, p.wait()))
            .collect::<Vec<_>>()
    })
}

/// A planned panic while forecasting one request of a batch: that request
/// degrades to the flagged CurRank fallback, its batch neighbours still
/// get bit-exact model forecasts, and nothing hangs or is dropped.
#[test]
fn worker_panic_mid_batch_degrades_only_the_poisoned_request() {
    let _guard = locked();
    // Ids are assigned in submission order starting at 1: target the 2nd.
    fault::install(ServeFaultPlan::new().panic_on_request(2));

    let cfg = ServeConfig {
        workers: 1,
        max_batch: 8,
        max_delay: Duration::from_millis(200),
        queue_capacity: 64,
    };
    let reqs: Vec<ServeRequest> = (0..4)
        .map(|i| ServeRequest::new(i % 2, 60 + 5 * i, 2, 3))
        .collect();
    let (outcomes, metrics) = serve_all(&cfg, &reqs);
    fault::clear();

    assert_eq!(outcomes.len(), 4, "a panic must not drop responses");
    let (_, contexts) = fixture();
    let mut degraded = 0;
    for (req, outcome) in &outcomes {
        let resp = outcome.as_ref().expect("all requests here are valid");
        if resp.id == 2 {
            degraded += 1;
            assert_eq!(resp.fallback, Some(FallbackReason::WorkerPanic));
            assert!(resp.forecast.degraded);
            let reference =
                currank_forecast(&contexts[req.race], req.origin, req.horizon, req.n_samples)
                    .expect("valid request");
            assert_eq!(bits(&reference), bits(&resp.forecast));
        } else {
            // Neighbours of the poisoned request are retried one at a time
            // and must still match the direct call exactly.
            assert_parity(req, outcome);
        }
    }
    assert_eq!(degraded, 1);
    assert_eq!(metrics.fallback_panic, 1);
    assert_eq!(metrics.ok_responses, 3);
    assert_eq!(metrics.completed, 4);
    // The batch attempt panics once, then the per-request retry panics
    // again on the poisoned request.
    assert!(
        metrics.worker_panics >= 2,
        "expected batch + retry panics, saw {}",
        metrics.worker_panics
    );
}

/// A worker panicking while it *holds the queue mutex* poisons the lock
/// for every thread after it. The scheduler must recover the poison and
/// keep serving: no hang, no lost response.
#[test]
fn poisoned_queue_mutex_is_recovered_and_service_continues() {
    let _guard = locked();
    fault::install(ServeFaultPlan::new().poison_queue_once());

    let cfg = ServeConfig {
        workers: 2,
        max_batch: 4,
        max_delay: Duration::from_micros(200),
        queue_capacity: 64,
    };
    let reqs: Vec<ServeRequest> = (0..6)
        .map(|i| ServeRequest::new(i % 2, 70 + 3 * i, 1, 2))
        .collect();
    let (outcomes, metrics) = serve_all(&cfg, &reqs);
    fault::clear();

    assert_eq!(outcomes.len(), 6, "poisoned mutex must not drop requests");
    for (req, outcome) in &outcomes {
        assert_parity(req, outcome);
    }
    assert_eq!(metrics.completed, 6);
    assert_eq!(metrics.ok_responses, 6);
    assert_eq!(
        metrics.queue_poison_recoveries, 1,
        "the injected poison fires exactly once and is recovered"
    );
}

/// A zero deadline always expires in the queue: the response must be the
/// flagged CurRank fallback with exactly the persistence bits — delivered,
/// not dropped, and never blocking on the model.
#[test]
fn expired_deadline_degrades_to_flagged_currank_fallback() {
    let _guard = locked();
    fault::clear(); // no scheduler faults — deadline expiry is config-driven

    let cfg = ServeConfig {
        workers: 2,
        max_batch: 4,
        max_delay: Duration::from_micros(100),
        queue_capacity: 64,
    };
    let expired = ServeRequest::new(0, 80, 3, 4).with_deadline(Duration::ZERO);
    let live = ServeRequest::new(1, 90, 2, 2);
    let (outcomes, metrics) = serve_all(&cfg, &[expired, live]);

    assert_eq!(outcomes.len(), 2);
    let (_, contexts) = fixture();
    for (req, outcome) in &outcomes {
        let resp = outcome.as_ref().expect("both requests are valid");
        if req.deadline.is_some() {
            assert_eq!(resp.fallback, Some(FallbackReason::DeadlineExpired));
            assert!(resp.forecast.degraded);
            let reference =
                currank_forecast(&contexts[req.race], req.origin, req.horizon, req.n_samples)
                    .expect("valid request");
            assert_eq!(bits(&reference), bits(&resp.forecast));
        } else {
            assert_parity(req, outcome);
        }
    }
    assert_eq!(metrics.fallback_deadline, 1);
    assert_eq!(metrics.ok_responses, 1);
    assert_eq!(metrics.completed, 2);
    assert_eq!(metrics.worker_panics, 0);
}
