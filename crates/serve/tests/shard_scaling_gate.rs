//! Release-gate for the scale-out claim (DESIGN.md §15): on a saturating
//! multi-race load, four shards must clear at least 1.6x the request rate
//! of one shard, and must never make tail latency worse.
//!
//! The gate runs on the deterministic virtual clock (`replay_sharded`), not
//! wall time, so it is machine-independent: the same script produces the
//! same per-shard schedules and the same throughput ratio on a laptop, a
//! loaded CI box, or a single-core container. The real-thread counterpart
//! lives in the bench harness (`bench_snapshot.sh shards`).

use rpf_nn::RngStreams;
use rpf_serve::loadgen::{self, MultiRaceMix};
use rpf_serve::{replay_sharded, ServeConfig, ServiceModel};
use std::time::Duration;

/// A saturating mix: three back-to-back 128-request bursts over four races,
/// Zipf-skewed, queue sized so nothing is rejected — throughput differences
/// come from service parallelism alone, not admission control.
fn saturating_script() -> (
    ServeConfig,
    Vec<(u64, rpf_serve::ServeRequest)>,
    ServiceModel,
) {
    let cfg = ServeConfig {
        workers: 1,
        max_batch: 8,
        max_delay: Duration::from_micros(500),
        queue_capacity: 4096,
    };
    let svc = ServiceModel {
        batch_overhead_ns: 200_000,
        per_request_ns: 100_000,
    };

    let streams = RngStreams::new(0x5CA1E);
    let mix = MultiRaceMix::new(4, (50, 100), 1.0);
    let ms = Duration::from_millis;
    let script = loadgen::merge(vec![
        mix.schedule(&loadgen::burst(ms(0), 128), &streams.child(0), 0),
        mix.schedule(&loadgen::burst(ms(5), 128), &streams.child(1), 1_000),
        mix.schedule(&loadgen::burst(ms(10), 128), &streams.child(2), 2_000),
    ]);
    let script_ns = script
        .into_iter()
        .map(|(t, req)| (t.as_nanos() as u64, req))
        .collect();
    (cfg, script_ns, svc)
}

#[test]
fn four_shards_clear_at_least_1_6x_the_single_shard_rate() {
    let (cfg, script, svc) = saturating_script();

    let one = replay_sharded(&cfg, 1, &script, &svc);
    let four = replay_sharded(&cfg, 4, &script, &svc);

    // Nothing rejected on either layout: the comparison is pure service.
    for (label, run) in [("1 shard", &one), ("4 shards", &four)] {
        let m = run.merged();
        assert_eq!(m.completed, 384, "{label}: every request must complete");
        assert_eq!(m.rejected_queue_full, 0, "{label}: queue must not clip");
    }

    let rate1 = one.completed_per_sec();
    let rate4 = four.completed_per_sec();
    assert!(
        rate4 >= 1.6 * rate1,
        "scale-out gate failed: 4 shards {rate4:.0} req/s vs 1 shard \
         {rate1:.0} req/s ({:.2}x < 1.6x)",
        rate4 / rate1
    );
    assert!(
        four.p99_ns() <= one.p99_ns(),
        "sharding must not regress tail latency: p99 {} ns (4 shards) vs \
         {} ns (1 shard)",
        four.p99_ns(),
        one.p99_ns()
    );
}

/// The gate's inputs are deterministic: the ratio itself is a pure
/// function of the script, so the gate can never flake on a loaded box.
#[test]
fn scaling_gate_ratio_is_reproducible() {
    let (cfg, script, svc) = saturating_script();
    let a = replay_sharded(&cfg, 4, &script, &svc);
    let b = replay_sharded(&cfg, 4, &script, &svc);
    assert_eq!(a.per_shard, b.per_shard);
    assert_eq!(a.makespan_ns, b.makespan_ns);
}
