//! The tentpole harness: batched serving must be bit-identical to direct
//! engine calls across worker counts, lose nothing, duplicate nothing,
//! bound its queue under overload, and drain cleanly on shutdown.

mod common;

use common::{assert_parity, bits, fixture, ENGINE_SEED};
use ranknet_core::engine::ForecastEngine;
use ranknet_core::features::RaceContext;
use ranknet_core::DecodeBackend;
use rpf_nn::RngStreams;
use rpf_serve::loadgen::{self, LoadMix, MultiRaceMix};
use rpf_serve::{
    serve, serve_sharded, shard_of, ServeConfig, ServeRequest, ShardTopology, SubmitError,
};
use std::collections::HashSet;
use std::time::Duration;

fn ctx_refs(contexts: &[RaceContext]) -> Vec<&RaceContext> {
    contexts.iter().collect()
}

/// Mixed closed-loop load, served with 1, 2 and 8 workers: every response
/// must replay the direct call's exact bits, and every submission must be
/// answered exactly once.
#[test]
fn batched_serving_matches_direct_calls_across_worker_counts() {
    let (model, contexts) = fixture();
    let refs = ctx_refs(contexts);
    let mix = LoadMix::standard(2, (40, 110));
    let streams = RngStreams::new(0xC0FFEE);

    for workers in [1usize, 2, 8] {
        let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);
        let cfg = ServeConfig {
            workers,
            max_batch: 4,
            max_delay: Duration::from_millis(2),
            queue_capacity: 256,
        };
        let (report, metrics) = serve(&engine, &refs, &cfg, |client| {
            loadgen::run_closed_loop(client, 4, 10, &mix, &streams)
        });

        assert!(report.rejected.is_empty(), "queue sized for the full load");
        assert_eq!(report.outcomes.len(), 40, "one response per submission");
        let ids: HashSet<u64> = report
            .outcomes
            .iter()
            .map(|(_, o)| o.as_ref().map(|r| r.id).unwrap_or(0))
            .collect();
        assert_eq!(ids.len(), 40, "no duplicated responses ({workers} workers)");
        for (req, outcome) in &report.outcomes {
            assert_parity(req, outcome);
        }
        assert_eq!(metrics.completed, 40);
        assert_eq!(metrics.accepted, 40);
        assert_eq!(metrics.ok_responses, 40);
    }
}

/// The worker sweep above pins the engine's *default* backend — which is
/// the batched one, so lock-step serving is what the parity suite
/// exercises. Backend choice must be orthogonal to serving: a reference
/// (per-row) served engine replays a reference direct engine's bits at
/// every worker count too.
#[test]
fn reference_backend_serving_matches_reference_direct_calls() {
    let (model, contexts) = fixture();
    let refs = ctx_refs(contexts);
    assert_eq!(
        ForecastEngine::new(model, ENGINE_SEED).backend(),
        DecodeBackend::Batched,
        "serving parity must be exercising the batched backend by default"
    );

    let requests = [
        ServeRequest::new(0, 60, 2, 5),
        ServeRequest::new(1, 75, 3, 4),
        ServeRequest::new(0, 60, 2, 5),
    ];
    for workers in [1usize, 2, 8] {
        let engine = ForecastEngine::new(model, ENGINE_SEED)
            .with_threads(1)
            .with_backend(DecodeBackend::PerRow);
        let cfg = ServeConfig {
            workers,
            max_batch: 4,
            max_delay: Duration::from_millis(2),
            queue_capacity: 64,
        };
        let (outcomes, _) = serve(&engine, &refs, &cfg, |client| {
            requests
                .iter()
                .map(|r| client.forecast(*r).expect("admitted"))
                .collect::<Vec<_>>()
        });
        for (req, outcome) in requests.iter().zip(outcomes) {
            let served = outcome.expect("valid request");
            let reference = ForecastEngine::new(model, ENGINE_SEED)
                .with_threads(1)
                .with_backend(DecodeBackend::PerRow);
            let want = reference
                .try_forecast_keyed(
                    req.race,
                    &contexts[req.race],
                    req.origin,
                    req.horizon,
                    req.n_samples,
                )
                .expect("direct call must accept what serving accepted");
            assert_eq!(
                bits(&want),
                bits(&served.forecast),
                "per-row served forecast diverged ({workers} workers)"
            );
        }
    }
}

/// A burst of duplicated queries (the live-race hot spot) must coalesce
/// onto fewer engine runs — and still answer every caller with the exact
/// direct-call bits.
#[test]
fn duplicate_requests_coalesce_and_stay_bit_identical() {
    let (model, contexts) = fixture();
    let refs = ctx_refs(contexts);
    let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);
    let cfg = ServeConfig {
        workers: 1,
        max_batch: 16,
        // Generous hold: the whole burst lands in one batch as long as
        // submission finishes within this window.
        max_delay: Duration::from_millis(200),
        queue_capacity: 64,
    };
    let mix = LoadMix {
        unique_queries: Some(3),
        ..LoadMix::standard(2, (50, 100))
    };
    let streams = RngStreams::new(0xAB);
    let script = loadgen::schedule(&loadgen::burst(Duration::ZERO, 12), &mix, &streams, 0);

    let (report, metrics) = serve(&engine, &refs, &cfg, |client| {
        loadgen::run_open_loop(client, &script)
    });

    assert_eq!(report.outcomes.len(), 12);
    for (req, outcome) in &report.outcomes {
        assert_parity(req, outcome);
    }
    // 12 requests over 3 distinct queries in one batch: at least 9 were
    // answered by coalescing rather than fresh model runs.
    let t = engine.timings();
    assert!(
        t.coalesced_requests >= 9,
        "expected coalescing, got {} coalesced over {} calls",
        t.coalesced_requests,
        t.calls
    );
    assert_eq!(metrics.batches, 1, "burst must form a single batch");
    assert_eq!(metrics.batched_requests, 12);
}

/// Overload: a slow first request pins the single worker, then a fast
/// burst overfills the bounded queue. Beyond-capacity submissions must be
/// rejected with the typed error, the queue depth must never exceed the
/// cap, and every *accepted* request must still be answered.
#[test]
fn overload_is_rejected_typed_and_queue_stays_bounded() {
    let (model, contexts) = fixture();
    let refs = ctx_refs(contexts);
    let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);
    let capacity = 4;
    let cfg = ServeConfig {
        workers: 1,
        max_batch: 1,
        max_delay: Duration::ZERO,
        queue_capacity: capacity,
    };

    let (report, metrics) = serve(&engine, &refs, &cfg, |client| {
        let mut report = loadgen::LoadReport::default();
        // Occupy the worker: a heavy request the worker picks up first.
        let heavy = ServeRequest::new(0, 100, 3, 64);
        let mut pending = vec![(heavy, client.submit(heavy))];
        // Then flood: far more than the queue can hold.
        for i in 0..40 {
            let req = ServeRequest::new(i % 2, 60 + (i % 5), 1, 1);
            pending.push((req, client.submit(req)));
        }
        for (req, sub) in pending {
            match sub {
                Ok(p) => report.outcomes.push((req, p.wait())),
                Err(e) => report.rejected.push((req, e)),
            }
        }
        report
    });

    assert!(
        !report.rejected.is_empty(),
        "flooding a 4-deep queue must reject"
    );
    for (_, err) in &report.rejected {
        assert_eq!(*err, SubmitError::QueueFull { capacity });
    }
    assert!(
        metrics.queue_depth_max <= capacity as u64,
        "queue depth {} exceeded the cap {capacity}",
        metrics.queue_depth_max
    );
    // Conservation under overload: accepted + rejected = submitted, and
    // accepted = completed.
    assert_eq!(
        metrics.accepted + metrics.rejected_queue_full,
        metrics.submitted
    );
    assert_eq!(metrics.completed, metrics.accepted);
    assert_eq!(report.outcomes.len() as u64, metrics.accepted);
    for (req, outcome) in &report.outcomes {
        assert_parity(req, outcome);
    }
}

/// Returning from the serve body closes admission and drains: pending
/// handles resolve after `serve` returns, nothing is lost.
#[test]
fn shutdown_drains_every_accepted_request() {
    let (model, contexts) = fixture();
    let refs = ctx_refs(contexts);
    let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);
    let cfg = ServeConfig {
        workers: 2,
        max_batch: 8,
        max_delay: Duration::from_millis(50),
        queue_capacity: 64,
    };

    let (pending, metrics) = serve(&engine, &refs, &cfg, |client| {
        // Submit and return immediately — do NOT wait. The scheduler must
        // drain these during shutdown.
        (0..10)
            .map(|i| {
                let req = ServeRequest::new(0, 70 + i, 2, 2);
                (req, client.submit(req))
            })
            .collect::<Vec<_>>()
    });

    let mut answered = 0;
    for (req, sub) in pending {
        let p = sub.expect("queue sized for the full load");
        let outcome = p.wait();
        assert_parity(&req, &outcome);
        answered += 1;
    }
    assert_eq!(answered, 10);
    assert_eq!(metrics.completed, 10, "drain must answer everything");
    assert_eq!(metrics.accepted, 10);
}

/// The sharded tentpole pin: for every fixed layout in 1/2/4 shards ×
/// 1/2/8 workers, every sharded response must replay the *direct call's*
/// exact bits — which is the same reference the unsharded suite pins, so
/// sharded == unsharded == direct, bitwise. Routing must agree with the
/// public hash, conservation must hold across the fleet, and nothing may
/// be lost or duplicated within a shard.
#[test]
fn sharded_serving_matches_direct_calls_across_layouts() {
    let (model, contexts) = fixture();
    let refs = ctx_refs(contexts);
    let mix = MultiRaceMix::new(2, (40, 110), 1.0);
    let streams = RngStreams::new(0xC0FFEE);

    for shards in [1usize, 2, 4] {
        for workers in [1usize, 2, 8] {
            let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);
            let cfg = ServeConfig {
                workers,
                max_batch: 4,
                max_delay: Duration::from_millis(2),
                queue_capacity: 256,
            };
            let script: Vec<ServeRequest> = (0..40).map(|i| mix.request_at(&streams, i)).collect();
            let (report, sharded) =
                serve_sharded(&engine, &refs, &cfg, ShardTopology::new(shards), |client| {
                    assert_eq!(client.shard_count(), shards);
                    let mut outcomes = Vec::new();
                    for req in &script {
                        assert_eq!(
                            client.shard_of(req),
                            shard_of(req.race, req.origin, shards),
                            "router must expose its real layout"
                        );
                        outcomes.push((*req, client.forecast(*req).expect("admitted")));
                    }
                    outcomes
                });

            for (req, outcome) in &report {
                assert_parity(req, outcome);
            }
            // Per-shard admission ids: unique within each shard.
            for (i, shard_snap) in sharded.per_shard.iter().enumerate() {
                let ids: HashSet<u64> = report
                    .iter()
                    .filter(|(req, _)| shard_of(req.race, req.origin, shards) == i)
                    .map(|(_, o)| o.as_ref().map(|r| r.id).unwrap_or(0))
                    .collect();
                assert_eq!(
                    ids.len() as u64,
                    shard_snap.completed,
                    "shard {i} duplicated or dropped ids ({shards} shards, {workers} workers)"
                );
                assert_eq!(shard_snap.completed, shard_snap.accepted);
            }
            let merged = sharded.merged();
            assert_eq!(merged.submitted, 40);
            assert_eq!(merged.completed, 40);
            assert_eq!(merged.ok_responses, 40);
        }
    }
}

/// Run-to-run determinism of the sharded region: the same script over the
/// same layout replays identical bits (common random numbers across
/// forked engines).
#[test]
fn repeated_sharded_runs_replay_identical_bits() {
    let (model, contexts) = fixture();
    let refs = ctx_refs(contexts);
    let reqs = [
        ServeRequest::new(0, 80, 2, 6),
        ServeRequest::new(1, 95, 3, 4),
        ServeRequest::new(0, 45, 1, 2),
    ];

    let run = || {
        let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(2);
        let cfg = ServeConfig::default();
        let (out, _) = serve_sharded(&engine, &refs, &cfg, ShardTopology::new(4), |client| {
            reqs.iter()
                .map(|r| {
                    client
                        .forecast(*r)
                        .expect("admitted")
                        .expect("valid request")
                })
                .collect::<Vec<_>>()
        });
        out
    };
    let a = run();
    let b = run();
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(bits(&ra.forecast), bits(&rb.forecast));
        assert_eq!(ra.id, rb.id, "per-shard admission order must be stable");
    }
}

/// Per-shard backpressure: flooding one shard's key must reject with the
/// flat scheduler's typed `QueueFull` while the merged books still
/// balance.
#[test]
fn hot_shard_overflow_maps_to_queue_full() {
    let (model, contexts) = fixture();
    let refs = ctx_refs(contexts);
    let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);
    let capacity = 4;
    let cfg = ServeConfig {
        workers: 1,
        max_batch: 1,
        max_delay: Duration::ZERO,
        queue_capacity: capacity,
    };

    let (report, sharded) = serve_sharded(&engine, &refs, &cfg, ShardTopology::new(2), |client| {
        let mut report = loadgen::LoadReport::default();
        // Pin one shard's worker with a heavy request, then flood the
        // same (race, origin) key — all of it routes to that shard.
        let heavy = ServeRequest::new(0, 100, 3, 64);
        let mut pending = vec![(heavy, client.submit(heavy))];
        for _ in 0..40 {
            let req = ServeRequest::new(0, 100, 1, 1);
            pending.push((req, client.submit(req)));
        }
        for (req, sub) in pending {
            match sub {
                Ok(p) => report.outcomes.push((req, p.wait())),
                Err(e) => report.rejected.push((req, e)),
            }
        }
        report
    });

    assert!(
        !report.rejected.is_empty(),
        "flooding one shard's 4-deep mailbox must reject"
    );
    for (_, err) in &report.rejected {
        assert_eq!(*err, SubmitError::QueueFull { capacity });
    }
    let merged = sharded.merged();
    assert_eq!(
        merged.accepted + merged.rejected_queue_full,
        merged.submitted
    );
    assert_eq!(merged.completed, merged.accepted);
    // The cold shard never saw a request, let alone a rejection.
    let cold = shard_of(0, 100, 2) ^ 1;
    assert_eq!(sharded.per_shard[cold].submitted, 0);
}

/// Serving results agree with the engine's own batch API and with each
/// other across repeated runs (common random numbers).
#[test]
fn repeated_serving_runs_replay_identical_bits() {
    let (model, contexts) = fixture();
    let refs = ctx_refs(contexts);
    let req = ServeRequest::new(1, 80, 2, 6);

    let run = || {
        let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(2);
        let cfg = ServeConfig::default();
        let (out, _) = serve(&engine, &refs, &cfg, |client| {
            client.forecast(req).expect("admitted")
        });
        out.expect("valid request")
    };
    let a = run();
    let b = run();
    assert_eq!(bits(&a.forecast), bits(&b.forecast));
}
