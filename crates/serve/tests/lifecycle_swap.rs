//! Model-lifecycle integration: atomic hot-swap in a live serving region
//! (DESIGN.md §14). A swap under load must drop nothing, in-flight batches
//! must finish on the version they loaded, post-swap admissions must be
//! bit-identical to a direct `try_forecast_keyed` on the new version, and
//! the shadow-evaluation gate must promote a clean candidate and roll back
//! (and quarantine) a divergent one.

mod common;

use common::{alt_model, bits, fixture, store_root, ENGINE_SEED};
use ranknet_core::engine::ForecastEngine;
use ranknet_core::lifecycle::ModelStore;
use ranknet_core::ranknet::RankNet;
use rpf_nn::RngStreams;
use rpf_serve::loadgen::{self, LoadMix};
use rpf_serve::{
    serve, serve_with_lifecycle, CandidateDecision, LifecycleConfig, LifecycleController,
    ServeConfig, ServeRequest,
};
use std::sync::Arc;
use std::time::Duration;

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        max_batch: 4,
        max_delay: Duration::from_micros(200),
        queue_capacity: 256,
    }
}

/// Direct reference on a given model: a fresh single-threaded engine with
/// the serving seed, completely outside the serving layer.
fn direct_on(model: &RankNet, req: &ServeRequest) -> Vec<u32> {
    let (_, contexts) = fixture();
    let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);
    let forecast = engine
        .try_forecast_keyed(
            req.race,
            &contexts[req.race],
            req.origin,
            req.horizon,
            req.n_samples,
        )
        .expect("valid request");
    bits(&forecast)
}

/// Hot-swap mid-region under open-loop loadgen traffic: zero requests
/// dropped or errored, every response bit-identical to a direct call on
/// the version stamped into it, and admissions after the swap returned
/// serve the new version.
#[test]
fn hot_swap_under_load_drops_nothing_and_keeps_bit_parity() {
    let (model, contexts) = fixture();
    let refs: Vec<_> = contexts.iter().collect();
    let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);

    let mix = LoadMix::standard(refs.len(), (60, 100));
    let streams = RngStreams::new(909);
    let wave = |first_index: u64| {
        loadgen::schedule(
            &loadgen::uniform(Duration::ZERO, Duration::from_micros(50), 24),
            &mix,
            &streams,
            first_index,
        )
    };

    let ((before, after), metrics) = serve(&engine, &refs, &serve_cfg(), |client| {
        let before = loadgen::run_open_loop(client, &wave(0));
        engine.swap_model(ranknet_core::lifecycle::VersionedModel::new(
            1,
            Arc::new(alt_model().clone()),
        ));
        let after = loadgen::run_open_loop(client, &wave(1_000));
        (before, after)
    });

    assert_eq!(before.rejected.len() + after.rejected.len(), 0);
    assert_eq!(before.outcomes.len() + after.outcomes.len(), 48);
    for (req, outcome) in before.outcomes.iter().chain(&after.outcomes) {
        let resp = outcome.as_ref().expect("loadgen requests are valid");
        assert!(resp.fallback.is_none(), "swap degraded request {req:?}");
        // Parity against whichever version the scheduler stamped: batches
        // load the slot once, so the stamp and the bits must agree.
        let reference = match resp.forecast.model_version {
            0 => direct_on(model, req),
            1 => direct_on(alt_model(), req),
            v => panic!("unexpected model version {v}"),
        };
        assert_eq!(reference, bits(&resp.forecast), "parity broke for {req:?}");
    }
    // `run_open_loop` waits out every response before the swap, so the
    // entire second wave must be served by the new version.
    for (req, outcome) in &after.outcomes {
        let resp = outcome.as_ref().expect("valid");
        assert_eq!(
            resp.forecast.model_version, 1,
            "post-swap admission {req:?} answered on the old version"
        );
    }
    assert_eq!(metrics.completed, 48);
    assert_eq!(metrics.ok_responses, 48);
    assert_eq!(metrics.model_version, 1);
    assert_eq!(engine.model_version(), 1);
}

/// A clean candidate (bit-identical weights) shadow-evaluates to zero
/// divergence and is promoted: the live slot advances, the region metrics
/// carry the swap and the comparisons, and `CURRENT` moves in the store.
#[test]
fn shadow_evaluation_promotes_clean_candidate() {
    let (model, contexts) = fixture();
    let refs: Vec<_> = contexts.iter().collect();
    let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);

    let root = store_root("promote");
    let store = ModelStore::open(&root).expect("store opens");
    let manifest = store.publish(model, None, "baseline").expect("publish");
    let candidate = store.publish(model, Some(manifest.version), "candidate");
    let candidate = candidate.expect("publish candidate");

    let lc = LifecycleController::new(LifecycleConfig {
        shadow_sample_every: 1,
        shadow_min_samples: 3,
        max_divergence_milli: 0,
    })
    .with_store(store);

    let (_, metrics) = serve_with_lifecycle(&engine, &refs, &serve_cfg(), &lc, |client| {
        let (loaded, _) = lc
            .store()
            .expect("attached")
            .load(candidate.version)
            .expect("load");
        lc.stage_candidate(&engine, candidate.version, Arc::new(loaded));
        for i in 0..4 {
            let resp = client
                .forecast(ServeRequest::new(i % 2, 70 + i, 2, 3))
                .expect("accepted")
                .expect("valid");
            assert!(resp.fallback.is_none());
        }
    });

    assert_eq!(
        lc.decisions(),
        vec![CandidateDecision::Promoted {
            version: candidate.version,
            samples: 3,
            mean_divergence_milli: 0,
        }]
    );
    assert_eq!(engine.model_version(), candidate.version);
    assert_eq!(metrics.swaps, 1);
    assert_eq!(metrics.rollbacks, 0);
    assert_eq!(metrics.shadow_comparisons, 3);
    assert_eq!(metrics.model_version, candidate.version);
    let store = lc.store().expect("attached");
    assert_eq!(store.current().expect("readable"), Some(candidate.version));
    let _ = std::fs::remove_dir_all(&root);
}

/// A divergent candidate fails the gate: the old version keeps serving,
/// the candidate's artifact is quarantined, and the rollback is visible in
/// the region metrics.
#[test]
fn shadow_divergence_rolls_back_and_quarantines() {
    let (model, contexts) = fixture();
    let refs: Vec<_> = contexts.iter().collect();
    let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);

    let root = store_root("rollback");
    let store = ModelStore::open(&root).expect("store opens");
    let candidate = store
        .publish(alt_model(), None, "divergent")
        .expect("publish");

    let lc = LifecycleController::new(LifecycleConfig {
        shadow_sample_every: 1,
        shadow_min_samples: 2,
        max_divergence_milli: 0,
    })
    .with_store(store);

    let (_, metrics) = serve_with_lifecycle(&engine, &refs, &serve_cfg(), &lc, |client| {
        lc.stage_candidate(&engine, candidate.version, Arc::new(alt_model().clone()));
        for i in 0..3 {
            let resp = client
                .forecast(ServeRequest::new(i % 2, 65 + 2 * i, 2, 4))
                .expect("accepted")
                .expect("valid");
            assert!(resp.fallback.is_none());
        }
    });

    let decisions = lc.decisions();
    assert_eq!(decisions.len(), 1);
    match &decisions[0] {
        CandidateDecision::RolledBack {
            version,
            samples,
            mean_divergence_milli,
        } => {
            assert_eq!(*version, candidate.version);
            assert_eq!(*samples, 2);
            assert!(
                *mean_divergence_milli > 0,
                "a different model must diverge in rank"
            );
        }
        other => panic!("expected rollback, got {other:?}"),
    }
    assert_eq!(engine.model_version(), 0, "old version must keep serving");
    assert_eq!(metrics.swaps, 0);
    assert_eq!(metrics.rollbacks, 1);
    assert_eq!(metrics.shadow_comparisons, 2);
    assert_eq!(metrics.model_version, 0);

    let store = lc.store().expect("attached");
    let quarantined = store.quarantined().expect("readable");
    assert!(
        quarantined.iter().any(|q| q.contains("diverged")),
        "candidate must be quarantined as diverged, saw {quarantined:?}"
    );
    assert!(
        store.load(candidate.version).is_err(),
        "a quarantined version must no longer load"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Sequential forecasts across a swap: each answer is bit-identical to the
/// direct call on the version serving at submission time — the swap point
/// is exact, not fuzzy.
#[test]
fn sequential_requests_flip_versions_exactly_at_the_swap() {
    let (model, contexts) = fixture();
    let refs: Vec<_> = contexts.iter().collect();
    let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);
    let lc = LifecycleController::new(LifecycleConfig::default());

    let req = ServeRequest::new(0, 80, 3, 4);
    let (_, _) = serve_with_lifecycle(&engine, &refs, &serve_cfg(), &lc, |client| {
        let old = client.forecast(req).expect("accepted").expect("valid");
        assert_eq!(old.forecast.model_version, 0);
        assert_eq!(bits(&old.forecast), direct_on(model, &req));

        let decision = lc.swap_now(&engine, 7, Arc::new(alt_model().clone()));
        assert!(matches!(
            decision,
            CandidateDecision::Promoted { version: 7, .. }
        ));

        let new = client.forecast(req).expect("accepted").expect("valid");
        assert_eq!(new.forecast.model_version, 7);
        assert_eq!(bits(&new.forecast), direct_on(alt_model(), &req));
    });
    assert_eq!(engine.model_version(), 7);
}
