//! Shared fixture: one tiny trained RankNet and a pair of unseen races,
//! built once per test binary (training dominates test wall-clock).
//!
//! Not every test binary uses every helper.
#![allow(dead_code)]

use ranknet_core::engine::{EngineForecast, ForecastEngine};
use ranknet_core::features::{extract_sequences, RaceContext};
use ranknet_core::ranknet::{RankNet, RankNetVariant};
use ranknet_core::RankNetConfig;
use rpf_racesim::{simulate_race, Event, EventConfig};
use rpf_serve::{ServeRequest, ServeResult};
use std::sync::OnceLock;

pub fn race_ctx(seed: u64) -> RaceContext {
    extract_sequences(&simulate_race(
        &EventConfig::for_race(Event::Indy500, 2017),
        seed,
    ))
}

pub fn fixture() -> &'static (RankNet, Vec<RaceContext>) {
    static FIX: OnceLock<(RankNet, Vec<RaceContext>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let cfg = RankNetConfig {
            max_epochs: 1,
            ..RankNetConfig::tiny()
        };
        let train = vec![race_ctx(101)];
        let (model, _) = RankNet::fit(train.clone(), train, cfg, RankNetVariant::Oracle, 40);
        (model, vec![race_ctx(102), race_ctx(103)])
    })
}

/// A second trained model with different init — weights (and forecasts)
/// differ from [`fixture`]'s model, which is what version-parity and
/// shadow-divergence tests need.
pub fn alt_model() -> &'static RankNet {
    static ALT: OnceLock<RankNet> = OnceLock::new();
    ALT.get_or_init(|| {
        let cfg = RankNetConfig {
            max_epochs: 1,
            ..RankNetConfig::tiny()
        };
        let train = vec![race_ctx(101)];
        let (model, _) = RankNet::fit(train.clone(), train, cfg, RankNetVariant::Oracle, 41);
        model
    })
}

/// Fresh (pre-wiped) per-test model-store root under the system temp dir.
pub fn store_root(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rpf_lifecycle_serve_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Engine seed shared by the served and the reference engines — parity
/// only means something when both derive draws from the same base.
pub const ENGINE_SEED: u64 = 5;

/// Flatten a forecast to bit patterns so comparisons are exact.
pub fn bits(f: &EngineForecast) -> Vec<u32> {
    f.samples
        .iter()
        .flat_map(|car| car.iter().flat_map(|path| path.iter().map(|v| v.to_bits())))
        .collect()
}

/// The reference answer: a direct engine call on a fresh engine with the
/// same seed, completely outside the serving layer.
pub fn direct(req: &ServeRequest) -> Result<EngineForecast, ranknet_core::EngineError> {
    let (model, contexts) = fixture();
    if req.race >= contexts.len() {
        return Err(ranknet_core::EngineError::RaceOutOfRange {
            race: req.race,
            n_contexts: contexts.len(),
        });
    }
    let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);
    engine.try_forecast_keyed(
        req.race,
        &contexts[req.race],
        req.origin,
        req.horizon,
        req.n_samples,
    )
}

/// Assert a served outcome matches the direct reference bit-for-bit
/// (model responses only; fallbacks are checked against the CurRank
/// builder by their own tests).
pub fn assert_parity(req: &ServeRequest, outcome: &ServeResult) {
    match outcome {
        Ok(resp) => {
            assert!(
                resp.fallback.is_none(),
                "unexpected fallback {:?} for {req:?}",
                resp.fallback
            );
            let reference = direct(req).expect("direct call must accept what serving accepted");
            assert_eq!(
                bits(&reference),
                bits(&resp.forecast),
                "served forecast diverged from direct call for {req:?}"
            );
        }
        Err(e) => {
            let reference = direct(req);
            assert!(
                reference.is_err(),
                "serving rejected {req:?} as {e:?} but the direct call accepted it"
            );
        }
    }
}
