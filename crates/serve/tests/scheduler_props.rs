//! Property suite for the scheduler's conservation invariants: under
//! arbitrary request lists (valid and invalid mixed), batch sizes and
//! worker counts, every submitted request gets exactly one response, and
//! every model response is bitwise equal to the unbatched direct call.

mod common;

use common::{assert_parity, fixture, ENGINE_SEED};
use proptest::prelude::*;
use ranknet_core::engine::ForecastEngine;
use rpf_serve::{serve, ServeConfig, ServeRequest};
use std::collections::HashSet;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn every_request_answered_once_and_bit_identical(
        raw in prop::collection::vec(
            // (race, origin, horizon, n_samples): race 2 is out of range
            // and zero horizons/sample counts are invalid — the scheduler
            // must answer those too, with typed errors. Origins are
            // clamped to >= 30 to keep the encode prefix non-trivial.
            (0usize..3, 0usize..110, 0usize..3, 0usize..3),
            1..16,
        ),
        workers in 1usize..4,
        max_batch in 1usize..7,
        delay_us in 0u64..2_000,
    ) {
        let (model, contexts) = fixture();
        let refs: Vec<_> = contexts.iter().collect();
        let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);
        let cfg = ServeConfig {
            workers,
            max_batch,
            max_delay: Duration::from_micros(delay_us),
            queue_capacity: 64,
        };
        let requests: Vec<ServeRequest> = raw
            .iter()
            .map(|&(race, origin, horizon, n_samples)| {
                ServeRequest::new(race, origin.max(30), horizon, n_samples)
            })
            .collect();

        let (outcomes, metrics) = serve(&engine, &refs, &cfg, |client| {
            let pending: Vec<_> = requests
                .iter()
                .map(|&req| (req, client.submit(req).expect("queue sized for the load")))
                .collect();
            pending
                .into_iter()
                .map(|(req, p)| (req, p.wait()))
                .collect::<Vec<_>>()
        });

        // Exactly one response per submission, no duplicates.
        prop_assert_eq!(outcomes.len(), requests.len());
        let ids: HashSet<u64> = outcomes
            .iter()
            .filter_map(|(_, o)| o.as_ref().ok().map(|r| r.id))
            .collect();
        let ok_count = outcomes.iter().filter(|(_, o)| o.is_ok()).count();
        prop_assert_eq!(ids.len(), ok_count, "duplicate response ids");
        prop_assert_eq!(metrics.completed, requests.len() as u64);
        prop_assert_eq!(metrics.accepted, metrics.completed);
        prop_assert_eq!(
            metrics.ok_responses + metrics.invalid,
            metrics.completed,
            "no fallbacks expected without deadlines or faults"
        );

        // Bitwise parity for every outcome, valid or not.
        for (req, outcome) in &outcomes {
            assert_parity(req, outcome);
        }
    }
}
