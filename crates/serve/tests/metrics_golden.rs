//! Golden test for serving metrics: a fixed scripted load replayed on the
//! virtual clock must reproduce the checked-in counter snapshot *exactly* —
//! every latency bucket, the queue-depth high-water mark, every rejection
//! and fallback tally. Any change to the admission, batching or deadline
//! policy shows up as a diff against `golden/metrics_replay.txt`.
//!
//! Regenerate (after deliberate policy changes only) with:
//! `UPDATE_GOLDEN=1 cargo test -p rpf-serve --test metrics_golden`

use rpf_nn::RngStreams;
use rpf_serve::loadgen::{self, LoadMix, MultiRaceMix};
use rpf_serve::{
    replay, replay_sharded, replay_with_events, ReplayEvent, ServeConfig, ServiceModel,
    ShardedSnapshot,
};
use std::path::PathBuf;
use std::time::Duration;

fn golden_path_named(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

fn golden_path() -> PathBuf {
    golden_path_named("metrics_replay.txt")
}

fn check_golden(path: &PathBuf, rendered: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(path, rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        golden, rendered,
        "serving metrics diverged from the golden snapshot; if the policy \
         change is deliberate, regenerate with UPDATE_GOLDEN=1"
    );
}

/// The pinned scenario: a thundering-herd burst that overflows the queue,
/// a ramp, a deadline-budgeted trickle arriving while the worker is still
/// digging out, and a late second burst. Everything below is a constant.
fn scripted_load() -> (
    ServeConfig,
    Vec<(u64, rpf_serve::ServeRequest)>,
    ServiceModel,
) {
    let cfg = ServeConfig {
        workers: 1,
        max_batch: 8,
        max_delay: Duration::from_micros(500),
        queue_capacity: 16,
    };
    let svc = ServiceModel {
        batch_overhead_ns: 200_000, // 200 µs per dispatch
        per_request_ns: 100_000,    // +100 µs per live request
    };

    let streams = RngStreams::new(0x601D);
    let hot = LoadMix {
        unique_queries: Some(4),
        ..LoadMix::standard(2, (50, 100))
    };
    let plain = LoadMix::standard(2, (40, 120));
    let budgeted = LoadMix {
        deadline: Some(Duration::from_millis(1)),
        ..LoadMix::standard(2, (40, 120))
    };

    let ms = Duration::from_millis;
    let script = loadgen::merge(vec![
        // 32 at t=0 against a 16-deep queue: half must bounce.
        loadgen::schedule(&loadgen::burst(ms(0), 32), &hot, &streams.child(0), 0),
        loadgen::schedule(
            &loadgen::ramp(ms(2), ms(10), 24),
            &plain,
            &streams.child(1),
            1_000,
        ),
        // 1 ms deadlines arriving while the worker is still digging out of
        // the opening burst backlog: the early ones expire in the queue.
        loadgen::schedule(
            &loadgen::uniform(Duration::from_micros(500), Duration::from_micros(250), 16),
            &budgeted,
            &streams.child(2),
            2_000,
        ),
        loadgen::schedule(&loadgen::burst(ms(15), 8), &hot, &streams.child(3), 3_000),
    ]);
    let script_ns = script
        .into_iter()
        .map(|(t, req)| (t.as_nanos() as u64, req))
        .collect();
    (cfg, script_ns, svc)
}

#[test]
fn replayed_metrics_match_golden_snapshot_exactly() {
    let (cfg, script, svc) = scripted_load();
    let snap = replay(&cfg, &script, &svc);

    // The snapshot must at least be internally consistent before we pin it.
    assert_eq!(snap.submitted, 80);
    assert_eq!(snap.accepted + snap.rejected_queue_full, snap.submitted);
    assert_eq!(snap.completed, snap.accepted);
    assert_eq!(snap.ok_responses + snap.fallback_deadline, snap.completed);
    assert!(
        snap.rejected_queue_full > 0,
        "scenario must overflow the queue"
    );
    assert!(snap.fallback_deadline > 0, "scenario must expire deadlines");
    assert!(snap.queue_depth_max <= cfg.queue_capacity as u64);
    assert!(snap.mean_batch_size() > 1.0, "scenario must batch");

    check_golden(&golden_path(), &snap.render());
}

/// The swap-bearing trace: the same scripted load with lifecycle events —
/// shadow comparisons, a promotion mid-burst, a later rollback — pinned on
/// the virtual clock (DESIGN.md §14). Any drift in how lifecycle events
/// fold into the counters shows up as a diff.
fn scripted_swap_events() -> Vec<(u64, ReplayEvent)> {
    vec![
        // Shadow comparisons during the opening burst's digest.
        (
            1_000_000,
            ReplayEvent::ShadowComparison {
                divergence_milli: 0,
            },
        ),
        (
            2_000_000,
            ReplayEvent::ShadowComparison {
                divergence_milli: 12,
            },
        ),
        (
            3_000_000,
            ReplayEvent::ShadowComparison {
                divergence_milli: 7,
            },
        ),
        // Promote mid-ramp: the gauge must stick at the new version.
        (5_000_000, ReplayEvent::Swap { version: 2 }),
        // A later candidate diverges hard and is rolled back.
        (
            12_000_000,
            ReplayEvent::ShadowComparison {
                divergence_milli: 800,
            },
        ),
        (
            13_000_000,
            ReplayEvent::ShadowComparison {
                divergence_milli: 1_200,
            },
        ),
        (14_000_000, ReplayEvent::Rollback),
    ]
}

#[test]
fn swap_bearing_replay_matches_golden_snapshot_exactly() {
    let (cfg, script, svc) = scripted_load();
    let snap = replay_with_events(&cfg, &script, &scripted_swap_events(), &svc);

    // Lifecycle events must not perturb the scheduling counters at all:
    // the same script serves identically with and without the events.
    let base = replay(&cfg, &script, &svc);
    assert_eq!(snap.submitted, base.submitted);
    assert_eq!(snap.completed, base.completed);
    assert_eq!(snap.latency, base.latency);
    assert_eq!(snap.batch_sizes, base.batch_sizes);

    assert_eq!(snap.swaps, 1);
    assert_eq!(snap.rollbacks, 1);
    assert_eq!(snap.shadow_comparisons, 5);
    assert_eq!(snap.model_version, 2);

    check_golden(
        &golden_path_named("metrics_replay_swap.txt"),
        &snap.render(),
    );
}

/// A swap-bearing trace is as deterministic as a plain one: same script,
/// same events, same counters, bit-for-bit, run-to-run.
#[test]
fn swap_bearing_replay_is_deterministic_across_runs() {
    let (cfg, script, svc) = scripted_load();
    let events = scripted_swap_events();
    let a = replay_with_events(&cfg, &script, &events, &svc);
    let b = replay_with_events(&cfg, &script, &events, &svc);
    assert_eq!(a, b);
    assert_eq!(a.render(), b.render());
}

/// The pinned multi-race scenario for the sharded replay: a Zipf-skewed
/// four-race mix whose bursts land unevenly across two shards. The golden
/// pins the per-shard counter split *and* the merged totals, so any drift
/// in the router hash, the Zipf draw, or the per-shard scheduler shows up
/// as a diff against `golden/metrics_replay_sharded.txt`.
fn sharded_script() -> (
    ServeConfig,
    Vec<(u64, rpf_serve::ServeRequest)>,
    ServiceModel,
) {
    let cfg = ServeConfig {
        workers: 1,
        max_batch: 8,
        max_delay: Duration::from_micros(500),
        queue_capacity: 16,
    };
    let svc = ServiceModel {
        batch_overhead_ns: 200_000,
        per_request_ns: 100_000,
    };

    let streams = RngStreams::new(0x5EED);
    let mix = MultiRaceMix::new(4, (50, 100), 1.0);
    let ms = Duration::from_millis;
    let script = loadgen::merge(vec![
        mix.schedule(&loadgen::burst(ms(0), 24), &streams.child(0), 0),
        mix.schedule(&loadgen::ramp(ms(2), ms(10), 24), &streams.child(1), 1_000),
        mix.schedule(&loadgen::burst(ms(12), 16), &streams.child(2), 2_000),
    ]);
    let script_ns = script
        .into_iter()
        .map(|(t, req)| (t.as_nanos() as u64, req))
        .collect();
    (cfg, script_ns, svc)
}

#[test]
fn sharded_replay_matches_golden_snapshot_exactly() {
    let (cfg, script, svc) = sharded_script();
    let sharded = replay_sharded(&cfg, 2, &script, &svc);

    // Conservation before pinning: every scripted request is accounted for
    // on exactly one shard, and both shards see traffic.
    let submitted: u64 = sharded.per_shard.iter().map(|s| s.submitted).sum();
    assert_eq!(submitted, 64);
    let merged = sharded.merged();
    assert_eq!(merged.submitted, 64);
    assert_eq!(merged.accepted + merged.rejected_queue_full, 64);
    assert_eq!(merged.completed, merged.accepted);
    assert!(
        sharded.per_shard.iter().all(|s| s.submitted > 0),
        "the Zipf mix must load every shard"
    );

    let snap = ShardedSnapshot {
        per_shard: sharded.per_shard.clone(),
    };
    check_golden(
        &golden_path_named("metrics_replay_sharded.txt"),
        &snap.render(),
    );
}

/// The sharded replay is a pure function of (config, shard count, script):
/// same inputs, same per-shard counters and latencies, bit-for-bit.
#[test]
fn sharded_replay_is_deterministic_across_runs() {
    let (cfg, script, svc) = sharded_script();
    let a = replay_sharded(&cfg, 2, &script, &svc);
    let b = replay_sharded(&cfg, 2, &script, &svc);
    assert_eq!(a.per_shard, b.per_shard);
    assert_eq!(a.latencies_ns, b.latencies_ns);
    assert_eq!(a.makespan_ns, b.makespan_ns);
}

/// The replay itself is a pure function: same script, same counters,
/// bit-for-bit, run-to-run.
#[test]
fn replay_is_deterministic_across_runs() {
    let (cfg, script, svc) = scripted_load();
    let a = replay(&cfg, &script, &svc);
    let b = replay(&cfg, &script, &svc);
    assert_eq!(a, b);
    assert_eq!(a.render(), b.render());
}
