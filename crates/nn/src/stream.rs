//! Counter-derived RNG streams for deterministic parallel sampling.
//!
//! Monte-Carlo forecasting draws thousands of scalars whose *assignment* to
//! trajectories must not depend on how the trajectories are scheduled across
//! threads. A single shared `StdRng` bakes the execution order into the
//! result: chunking the rows differently, or running them on four threads
//! instead of one, permutes which draw lands on which trajectory.
//!
//! [`RngStreams`] fixes this with counter-based derivation: a family of
//! independent generators keyed by a base seed, where stream `i` is
//! `StdRng::seed_from_u64(mix(base, i))`. Each trajectory owns stream `i` =
//! its *stable* global index, so any partition of the trajectories — one
//! thread, sixteen threads, reversed order — replays bit-identical sample
//! paths.
//!
//! The mixer is a splitmix64-style finalizer over `base ⊕ i·φ` (φ = the odd
//! 64-bit golden-ratio constant). For a fixed base every step is a bijection
//! on `u64`, so distinct counters can never collide onto the same seed, and
//! the finalizer decorrelates the seeds that `seed_from_u64` expands.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Golden-ratio increment used by splitmix64; odd, so multiplication by it
/// is invertible mod 2^64.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Splitmix64 finalizer over `base ⊕ counter·φ`. Bijective in `counter` for
/// any fixed `base`.
fn mix(base: u64, counter: u64) -> u64 {
    let mut z = base ^ counter.wrapping_mul(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A family of independent RNG streams derived from one base seed.
#[derive(Clone, Copy, Debug)]
pub struct RngStreams {
    base: u64,
}

impl RngStreams {
    pub fn new(base: u64) -> RngStreams {
        RngStreams { base }
    }

    /// Derive a family from the current state of an existing generator
    /// (consumes one `u64` draw). Lets `&mut StdRng` call sites hand off to
    /// the stream-seeded path deterministically.
    pub fn from_rng(rng: &mut StdRng) -> RngStreams {
        RngStreams::new(rng.gen())
    }

    /// The seed stream `index` would be built from (exposed for tests).
    pub fn seed(&self, index: u64) -> u64 {
        mix(self.base, index)
    }

    /// The generator owned by counter `index`.
    pub fn stream(&self, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed(index))
    }

    /// A derived sub-family, for nesting (e.g. one family per covariate
    /// group, each fanning out per-trajectory streams). `tag` picks the
    /// child; children with distinct tags have distinct bases.
    pub fn child(&self, tag: u64) -> RngStreams {
        // Offset the counter space so `child(t)` and `stream(t)` don't share
        // the same mixed value.
        RngStreams::new(mix(self.base ^ 0xC2B2_AE3D_27D4_EB4F, tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_reproducible() {
        let s = RngStreams::new(42);
        let a: Vec<u64> = (0..4).map(|_| s.stream(7).gen::<u64>()).collect();
        assert!(
            a.iter().all(|&v| v == a[0]),
            "same index must replay the same stream"
        );
    }

    #[test]
    fn distinct_indices_get_distinct_seeds() {
        let s = RngStreams::new(1234);
        let mut seeds: Vec<u64> = (0..10_000).map(|i| s.seed(i)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 10_000, "mix must be injective in the counter");
    }

    #[test]
    fn streams_are_decorrelated() {
        // Adjacent counters should not produce correlated first draws.
        let s = RngStreams::new(0);
        let draws: Vec<f64> = (0..1000)
            .map(|i| s.stream(i).gen_range(0.0f64..1.0))
            .collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean of first draws {mean}");
    }

    #[test]
    fn child_families_differ_from_parent_streams() {
        let s = RngStreams::new(99);
        assert_ne!(s.child(3).seed(0), s.seed(3));
        assert_ne!(s.child(3).seed(0), s.child(4).seed(0));
    }

    #[test]
    fn from_rng_is_deterministic_in_rng_state() {
        use rand::SeedableRng;
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(
            RngStreams::from_rng(&mut a).base,
            RngStreams::from_rng(&mut b).base
        );
    }
}
