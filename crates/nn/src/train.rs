//! Training loop: minibatch Adam with learning-rate decay on plateau and
//! early stopping (paper §IV-C and Table IV), plus the throughput
//! measurements behind Fig 10.
//!
//! The loop is model-agnostic: the caller supplies a closure that, given a
//! batch of instance indices, builds the forward/backward pass and leaves
//! gradients in the [`ParamStore`]. Shard-level parallelism (splitting a
//! batch across crossbeam threads, each with its own tape) lives in the
//! model's closure; [`shard_indices`] is the helper both models use.

use crate::adam::Adam;
use crate::data::BatchIter;
use crate::params::ParamStore;
use std::time::Instant;

/// Hyper-parameters of a training run (defaults follow Table IV).
#[derive(Clone, Debug)]
pub struct TrainConfig {
    pub max_epochs: usize,
    pub batch_size: usize,
    /// Initial learning rate (Table IV: 1e-3).
    pub lr: f32,
    /// LR decay factor on validation plateau (Table IV: 0.5).
    pub lr_decay: f32,
    /// Epochs without validation improvement before decaying the LR
    /// (paper: 10).
    pub patience: usize,
    /// Stop when the LR would fall below this.
    pub min_lr: f32,
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            max_epochs: 100,
            batch_size: 32,
            lr: 1e-3,
            lr_decay: 0.5,
            patience: 10,
            min_lr: 1e-5,
            seed: 0,
        }
    }
}

/// What a training run produced.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// `(train_loss, val_loss)` per epoch.
    pub epoch_losses: Vec<(f32, f32)>,
    /// Epoch index of the best validation loss (weights restored to it).
    pub best_epoch: usize,
    pub best_val_loss: f32,
    /// Mean training throughput, microseconds per sample (Fig 10's metric).
    pub us_per_sample: f64,
    /// Total wall-clock training time, seconds.
    pub wall_s: f64,
    pub epochs_run: usize,
}

/// Run the training loop.
///
/// * `n_instances` — number of training instances the index batches draw from.
/// * `batch_loss` — computes the loss of a batch, *accumulating gradients
///   into the store*; returns the batch's mean loss.
/// * `val_loss` — validation loss of the current weights (no gradients).
pub fn train(
    store: &mut ParamStore,
    n_instances: usize,
    cfg: &TrainConfig,
    mut batch_loss: impl FnMut(&mut ParamStore, &[usize]) -> f32,
    mut val_loss: impl FnMut(&ParamStore) -> f32,
) -> TrainReport {
    assert!(n_instances > 0, "no training instances");
    let mut adam = Adam::new(store, cfg.lr);
    let mut batches = BatchIter::new(n_instances, cfg.batch_size, cfg.seed);

    let mut best_val = f32::INFINITY;
    let mut best_epoch = 0usize;
    let mut best_weights = store.snapshot();
    let mut since_improve = 0usize;
    let mut epoch_losses = Vec::new();

    let started = Instant::now();
    let mut samples_seen = 0usize;

    for epoch in 0..cfg.max_epochs {
        let mut epoch_sum = 0.0f64;
        let mut epoch_batches = 0usize;
        for batch in batches.epoch() {
            store.zero_grads();
            let loss = batch_loss(store, &batch);
            adam.step(store);
            samples_seen += batch.len();
            epoch_sum += loss as f64;
            epoch_batches += 1;
        }
        let train_loss = (epoch_sum / epoch_batches.max(1) as f64) as f32;
        let v = val_loss(store);
        epoch_losses.push((train_loss, v));

        if v < best_val - 1e-6 {
            best_val = v;
            best_epoch = epoch;
            best_weights = store.snapshot();
            since_improve = 0;
        } else {
            since_improve += 1;
            if since_improve >= cfg.patience {
                // Paper: decay LR when validation stalls; stop at min LR.
                adam.decay_lr(cfg.lr_decay);
                since_improve = 0;
                if adam.lr < cfg.min_lr {
                    break;
                }
            }
        }
    }

    store.restore(&best_weights);
    let wall_s = started.elapsed().as_secs_f64();
    TrainReport {
        epochs_run: epoch_losses.len(),
        epoch_losses,
        best_epoch,
        best_val_loss: best_val,
        us_per_sample: if samples_seen == 0 {
            0.0
        } else {
            wall_s * 1e6 / samples_seen as f64
        },
        wall_s,
    }
}

/// Split a batch of indices into up to `shards` roughly equal pieces for
/// shard-parallel gradient computation. Shards are floored at
/// [`MIN_SHARD_ROWS`] rows: below that, per-thread tape and spawn overhead
/// outweighs the parallelism (the same small-kernel effect the paper's
/// Fig 10 shows for accelerator offload).
pub fn shard_indices(batch: &[usize], shards: usize) -> Vec<&[usize]> {
    let max_by_size = batch.len().div_ceil(MIN_SHARD_ROWS).max(1);
    let shards = shards.max(1).min(batch.len().max(1)).min(max_by_size);
    let per = batch.len().div_ceil(shards);
    batch.chunks(per.max(1)).collect()
}

/// Minimum rows per training shard before splitting further stops paying.
pub const MIN_SHARD_ROWS: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Binding;
    use rpf_autodiff::Tape;
    use rpf_tensor::Matrix;

    #[test]
    fn trains_linear_regression_to_convergence() {
        // y = 3x - 1 with noise-free data; loss should approach zero.
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 1));
        let b = store.register("b", Matrix::zeros(1, 1));
        let xs: Vec<f32> = (0..64).map(|i| i as f32 / 32.0 - 1.0).collect();
        let ys: Vec<f32> = xs.iter().map(|x| 3.0 * x - 1.0).collect();

        let make_loss = |store: &mut ParamStore, batch: &[usize]| -> f32 {
            let tape = Tape::new();
            let bind = Binding::new(&tape, store);
            let x = tape.leaf(Matrix::from_vec(
                batch.len(),
                1,
                batch.iter().map(|&i| xs[i]).collect(),
            ));
            let t = tape.leaf(Matrix::from_vec(
                batch.len(),
                1,
                batch.iter().map(|&i| ys[i]).collect(),
            ));
            let ones = tape.leaf(Matrix::ones(batch.len(), 1));
            let pred = tape.add(tape.matmul(x, bind.var(w)), tape.matmul(ones, bind.var(b)));
            let loss = tape.mean(tape.square(tape.sub(pred, t)));
            let out = tape.scalar(loss);
            let __g = bind.into_grads(loss);
            store.apply_grads(__g);
            out
        };

        let cfg = TrainConfig {
            max_epochs: 200,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        };
        let report = train(&mut store, 64, &cfg, make_loss, |store| {
            // Validation = exact fit quality.
            let wv = store.value(w).get(0, 0);
            let bv = store.value(b).get(0, 0);
            xs.iter()
                .zip(&ys)
                .map(|(x, y)| (wv * x + bv - y) * (wv * x + bv - y))
                .sum::<f32>()
                / xs.len() as f32
        });
        assert!(
            report.best_val_loss < 1e-3,
            "val loss {}",
            report.best_val_loss
        );
        assert!((store.value(w).get(0, 0) - 3.0).abs() < 0.05);
        assert!((store.value(b).get(0, 0) + 1.0).abs() < 0.05);
        assert!(report.us_per_sample > 0.0);
        assert!(report.epochs_run <= 200);
    }

    #[test]
    fn early_stopping_restores_best_weights() {
        // A validation function that worsens after epoch 3 regardless of the
        // weights: training must restore the epoch-3 snapshot.
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 1));
        let mut epoch_counter = 0usize;

        let cfg = TrainConfig {
            max_epochs: 40,
            batch_size: 4,
            lr: 0.1,
            patience: 3,
            min_lr: 0.05, // one decay ends training
            ..Default::default()
        };
        let report = train(
            &mut store,
            8,
            &cfg,
            |store, batch| {
                // Gradient of +1 per element: weights decrease each step.
                store.accumulate_grad(w, &Matrix::ones(1, 1));
                batch.len() as f32
            },
            |_| {
                epoch_counter += 1;
                if epoch_counter <= 3 {
                    10.0 - epoch_counter as f32 // improving
                } else {
                    100.0 // collapse
                }
            },
        );
        assert_eq!(report.best_epoch, 2);
        assert!(
            report.epochs_run < 40,
            "should stop early, ran {}",
            report.epochs_run
        );
        // Weights restored to the epoch-3 snapshot, not the last one.
        let restored = store.value(w).get(0, 0);
        let final_would_be = -0.1 * 2.0 * report.epochs_run as f32;
        assert!(restored > final_would_be + 0.05, "restored {restored}");
    }

    #[test]
    fn shard_indices_partition() {
        let batch: Vec<usize> = (0..100).collect();
        let shards = shard_indices(&batch, 3);
        assert_eq!(shards.len(), 3);
        let flat: Vec<usize> = shards.iter().flat_map(|s| s.iter().copied()).collect();
        assert_eq!(flat, batch);
        // More shards than items degrades gracefully.
        let shards = shard_indices(&batch[..2], 8);
        assert!(shards.len() <= 2);
    }

    #[test]
    fn shards_respect_minimum_rows() {
        let batch: Vec<usize> = (0..32).collect();
        let shards = shard_indices(&batch, 16);
        assert!(shards.len() <= 2, "32 rows should make at most 2 shards");
        for s in &shards {
            assert!(s.len() >= MIN_SHARD_ROWS);
        }
        // Large batches still fan out fully.
        let big: Vec<usize> = (0..3200).collect();
        assert_eq!(shard_indices(&big, 16).len(), 16);
    }
}
