//! Training loop: minibatch Adam with learning-rate decay on plateau and
//! early stopping (paper §IV-C and Table IV), plus the throughput
//! measurements behind Fig 10.
//!
//! The loop is model-agnostic: the caller supplies a closure that, given a
//! batch of instance indices, builds the forward/backward pass and leaves
//! gradients in the [`ParamStore`]. Shard-level parallelism (splitting a
//! batch across crossbeam threads, each with its own tape) lives in the
//! model's closure; [`shard_indices`] is the helper both models use.

use crate::adam::{Adam, AdamState};
use crate::data::BatchIter;
use crate::params::ParamStore;
use rpf_tensor::Matrix;
use std::time::Instant;

/// Hyper-parameters of a training run (defaults follow Table IV).
#[derive(Clone, Debug)]
pub struct TrainConfig {
    pub max_epochs: usize,
    pub batch_size: usize,
    /// Initial learning rate (Table IV: 1e-3).
    pub lr: f32,
    /// LR decay factor on validation plateau (Table IV: 0.5).
    pub lr_decay: f32,
    /// Epochs without validation improvement before decaying the LR
    /// (paper: 10).
    pub patience: usize,
    /// Stop when the LR would fall below this.
    pub min_lr: f32,
    pub seed: u64,
    /// Divergence recovery: how many times a non-finite epoch may be rolled
    /// back and retried at a reduced LR before training gives up.
    pub max_divergence_retries: usize,
    /// LR multiplier applied on each divergence rollback.
    pub retry_lr_factor: f32,
    /// Global-norm gradient clip handed to Adam (0 disables clipping).
    pub grad_clip_norm: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            max_epochs: 100,
            batch_size: 32,
            lr: 1e-3,
            lr_decay: 0.5,
            patience: 10,
            min_lr: 1e-5,
            seed: 0,
            max_divergence_retries: 3,
            retry_lr_factor: 0.5,
            grad_clip_norm: 10.0,
        }
    }
}

/// Why a divergence rollback fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DivergenceCause {
    /// The batch loss came back NaN or infinite.
    NonFiniteLoss,
    /// The accumulated gradients contained NaN or infinite values.
    NonFiniteGradient,
}

/// One recovery action taken by the training loop: the epoch was rolled
/// back to its entry snapshot (weights + optimizer moments) and retried
/// with the learning rate scaled by `retry_lr_factor`.
#[derive(Clone, Debug)]
pub struct RecoveryEvent {
    pub epoch: usize,
    /// Batch index within the epoch where the fault was detected.
    pub batch: usize,
    pub cause: DivergenceCause,
    /// Learning rate in effect after the rollback.
    pub lr_after: f32,
}

/// Why a training run failed (no panics: callers decide policy).
#[derive(Clone, Debug)]
pub enum TrainError {
    /// `n_instances` was zero — there is nothing to iterate.
    NoInstances,
    /// An epoch stayed non-finite through every allowed rollback retry.
    Diverged {
        epoch: usize,
        batch: usize,
        retries: usize,
    },
    /// A resume checkpoint did not match the model being trained.
    BadCheckpoint(String),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::NoInstances => write!(f, "no training instances"),
            TrainError::Diverged {
                epoch,
                batch,
                retries,
            } => write!(
                f,
                "training diverged at epoch {epoch}, batch {batch}: loss/gradients stayed \
                 non-finite after {retries} rollback retries"
            ),
            TrainError::BadCheckpoint(msg) => write!(f, "bad training checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for TrainError {}

/// What a training run produced.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// `(train_loss, val_loss)` per epoch.
    pub epoch_losses: Vec<(f32, f32)>,
    /// Epoch index of the best validation loss (weights restored to it).
    pub best_epoch: usize,
    pub best_val_loss: f32,
    /// Mean training throughput, microseconds per sample (Fig 10's metric).
    pub us_per_sample: f64,
    /// Total wall-clock training time, seconds.
    pub wall_s: f64,
    pub epochs_run: usize,
    /// Divergence rollbacks performed (empty on a healthy run).
    pub recoveries: Vec<RecoveryEvent>,
    /// Observability snapshot of the run: epoch/batch/sample counters, an
    /// epoch-duration histogram and rollback timing, in the same
    /// [`rpf_obs::MetricsSnapshot`] form the engine and serving layers
    /// report, so all three merge into one exposition.
    pub metrics: rpf_obs::MetricsSnapshot,
}

/// Everything needed to continue a training run exactly where it stopped:
/// current + best weights, optimizer moments, the batch iterator position
/// and the early-stopping bookkeeping. Plain data — `core::persist` handles
/// (de)serialization and crash-safe writes.
#[derive(Clone, Debug)]
pub struct TrainCheckpoint {
    /// Epoch the resumed run will execute next.
    pub next_epoch: usize,
    /// Epoch shuffles consumed from the batch iterator so far.
    pub epochs_drawn: u64,
    /// Store values at the end of `next_epoch - 1`.
    pub weights: Vec<Matrix>,
    pub adam: AdamState,
    pub best_weights: Vec<Matrix>,
    pub best_val: f32,
    pub best_epoch: usize,
    pub since_improve: usize,
    pub epoch_losses: Vec<(f32, f32)>,
    pub samples_seen: u64,
    pub recoveries: Vec<RecoveryEvent>,
}

/// Run the training loop, panicking on error — the historical API, kept for
/// call sites that treat failure as a bug. New code should prefer
/// [`try_train`].
///
/// * `n_instances` — number of training instances the index batches draw from.
/// * `batch_loss` — computes the loss of a batch, *accumulating gradients
///   into the store*; returns the batch's mean loss.
/// * `val_loss` — validation loss of the current weights (no gradients).
pub fn train(
    store: &mut ParamStore,
    n_instances: usize,
    cfg: &TrainConfig,
    batch_loss: impl FnMut(&mut ParamStore, &[usize]) -> f32,
    val_loss: impl FnMut(&ParamStore) -> f32,
) -> TrainReport {
    match try_train(store, n_instances, cfg, batch_loss, val_loss) {
        Ok(report) => report,
        Err(e) => panic!("train: {e}"),
    }
}

/// Fallible training loop: returns a typed [`TrainError`] instead of
/// asserting, and transparently recovers from non-finite losses or
/// gradients by rolling the epoch back and retrying at a reduced LR (see
/// [`TrainConfig::max_divergence_retries`]). Recoveries are recorded in
/// [`TrainReport::recoveries`].
pub fn try_train(
    store: &mut ParamStore,
    n_instances: usize,
    cfg: &TrainConfig,
    batch_loss: impl FnMut(&mut ParamStore, &[usize]) -> f32,
    val_loss: impl FnMut(&ParamStore) -> f32,
) -> Result<TrainReport, TrainError> {
    try_train_resumable(store, n_instances, cfg, batch_loss, val_loss, None, None)
}

/// The full training loop: [`try_train`] plus crash-safe hooks.
///
/// * `resume` — continue from a [`TrainCheckpoint`] instead of from scratch.
///   The weights, optimizer moments and batch-iterator position are restored
///   exactly, so a killed-and-resumed run produces weights bit-identical to
///   an uninterrupted one (pinned by the kill–resume tests).
/// * `on_epoch_end` — called with a fresh checkpoint after every epoch;
///   `core::persist` uses it to write periodic crash-safe checkpoints.
pub fn try_train_resumable(
    store: &mut ParamStore,
    n_instances: usize,
    cfg: &TrainConfig,
    mut batch_loss: impl FnMut(&mut ParamStore, &[usize]) -> f32,
    mut val_loss: impl FnMut(&ParamStore) -> f32,
    resume: Option<&TrainCheckpoint>,
    mut on_epoch_end: Option<&mut dyn FnMut(&TrainCheckpoint)>,
) -> Result<TrainReport, TrainError> {
    if n_instances == 0 {
        return Err(TrainError::NoInstances);
    }
    let mut adam = Adam::new(store, cfg.lr);
    adam.clip_norm = cfg.grad_clip_norm;
    let mut batches = BatchIter::new(n_instances, cfg.batch_size, cfg.seed);

    let mut best_val = f32::INFINITY;
    let mut best_epoch = 0usize;
    let mut best_weights = store.snapshot();
    let mut since_improve = 0usize;
    let mut epoch_losses = Vec::new();
    let mut recoveries: Vec<RecoveryEvent> = Vec::new();
    let mut samples_seen = 0u64;
    let mut start_epoch = 0usize;

    if let Some(ckpt) = resume {
        restore_weights(store, &ckpt.weights).map_err(TrainError::BadCheckpoint)?;
        adam.restore(&ckpt.adam)
            .map_err(TrainError::BadCheckpoint)?;
        if ckpt.best_weights.len() != store.len() {
            return Err(TrainError::BadCheckpoint(format!(
                "best-weight snapshot has {} tensors, model has {}",
                ckpt.best_weights.len(),
                store.len()
            )));
        }
        batches.skip_epochs(ckpt.epochs_drawn);
        best_val = ckpt.best_val;
        best_epoch = ckpt.best_epoch;
        best_weights = ckpt.best_weights.clone();
        since_improve = ckpt.since_improve;
        epoch_losses = ckpt.epoch_losses.clone();
        samples_seen = ckpt.samples_seen;
        start_epoch = ckpt.next_epoch;
        recoveries = ckpt.recoveries.clone();
    }

    // Per-run registry: the report carries a snapshot, so two concurrent
    // training runs never share cells (unlike the process-global kernel
    // counters).
    let registry = rpf_obs::Registry::new();
    let m_epochs = registry.counter("train_epochs");
    let m_batches = registry.counter("train_batches");
    let m_samples = registry.counter("train_samples");
    let m_recoveries = registry.counter("train_recoveries");
    let m_rollback_ns = registry.counter("train_rollback_ns");
    let h_epoch_ns = registry.histogram("train_epoch_ns", &rpf_obs::DURATION_EDGES_NS);

    let started = Instant::now();
    let mut batch_counter = 0u64;

    'epochs: for epoch in start_epoch..cfg.max_epochs {
        let epoch_started = Instant::now();
        let epoch_batches = batches.epoch();
        // Entry snapshot: the rollback target if this epoch diverges.
        let entry_weights = store.snapshot();
        let entry_adam = adam.state();
        let mut attempts = 0usize;

        let train_loss = 'retry: loop {
            let mut epoch_sum = 0.0f64;
            let mut epoch_n = 0usize;
            let mut epoch_samples = 0u64;
            // Batch tallies go through a mergeable local handle: one shared
            // fetch-add per epoch instead of one per batch.
            let mut local_batches = m_batches.local();
            for (bi, batch) in epoch_batches.iter().enumerate() {
                store.zero_grads();
                let loss = fault_hook_loss(batch_counter, batch_loss(store, batch));
                batch_counter += 1;
                let cause = if !loss.is_finite() {
                    Some(DivergenceCause::NonFiniteLoss)
                } else if !store.grad_norm().is_finite() {
                    Some(DivergenceCause::NonFiniteGradient)
                } else {
                    None
                };
                if let Some(cause) = cause {
                    // Roll back to the epoch-entry snapshot and retry the
                    // whole epoch at a reduced LR, a bounded number of times.
                    attempts += 1;
                    if attempts > cfg.max_divergence_retries {
                        return Err(TrainError::Diverged {
                            epoch,
                            batch: bi,
                            retries: cfg.max_divergence_retries,
                        });
                    }
                    let rollback_started = Instant::now();
                    restore_weights(store, &entry_weights).map_err(TrainError::BadCheckpoint)?;
                    if adam.restore(&entry_adam).is_err() {
                        // Cannot happen: the snapshot came from this adam.
                        return Err(TrainError::BadCheckpoint(
                            "optimizer rollback failed".into(),
                        ));
                    }
                    m_recoveries.inc();
                    m_rollback_ns.add(rollback_started.elapsed().as_nanos() as u64);
                    // Compounding halving: restore() reset the LR to the
                    // epoch-entry value, so re-apply one factor per attempt.
                    adam.lr = entry_adam.lr * cfg.retry_lr_factor.powi(attempts as i32);
                    recoveries.push(RecoveryEvent {
                        epoch,
                        batch: bi,
                        cause,
                        lr_after: adam.lr,
                    });
                    store.zero_grads();
                    continue 'retry;
                }
                adam.step(store);
                local_batches.inc();
                epoch_samples += batch.len() as u64;
                epoch_sum += loss as f64;
                epoch_n += 1;
            }
            samples_seen += epoch_samples;
            m_samples.add(epoch_samples);
            break (epoch_sum / epoch_n.max(1) as f64) as f32;
        };
        m_epochs.inc();
        h_epoch_ns.observe(epoch_started.elapsed().as_nanos() as u64);

        let v = val_loss(store);
        epoch_losses.push((train_loss, v));

        if v < best_val - 1e-6 {
            best_val = v;
            best_epoch = epoch;
            best_weights = store.snapshot();
            since_improve = 0;
        } else {
            since_improve += 1;
            if since_improve >= cfg.patience {
                // Paper: decay LR when validation stalls; stop at min LR.
                adam.decay_lr(cfg.lr_decay);
                since_improve = 0;
                if adam.lr < cfg.min_lr {
                    break 'epochs;
                }
            }
        }

        if let Some(cb) = on_epoch_end.as_deref_mut() {
            cb(&TrainCheckpoint {
                next_epoch: epoch + 1,
                epochs_drawn: batches.epochs_drawn(),
                weights: store.snapshot(),
                adam: adam.state(),
                best_weights: best_weights.clone(),
                best_val,
                best_epoch,
                since_improve,
                epoch_losses: epoch_losses.clone(),
                samples_seen,
                recoveries: recoveries.clone(),
            });
        }
    }

    store.restore(&best_weights);
    let wall_s = started.elapsed().as_secs_f64();
    Ok(TrainReport {
        epochs_run: epoch_losses.len(),
        epoch_losses,
        best_epoch,
        best_val_loss: best_val,
        us_per_sample: if samples_seen == 0 {
            0.0
        } else {
            wall_s * 1e6 / samples_seen as f64
        },
        wall_s,
        recoveries,
        metrics: registry.snapshot(),
    })
}

/// Fault-injection seam on the batch loss: identity unless the
/// `fault-inject` feature is on AND a plan poisons this batch counter.
#[cfg(feature = "fault-inject")]
fn fault_hook_loss(batch: u64, loss: f32) -> f32 {
    crate::fault::corrupt_loss(batch, loss)
}

#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
fn fault_hook_loss(_batch: u64, loss: f32) -> f32 {
    loss
}

/// `ParamStore::restore` without the asserts: checkpoint data is untrusted.
fn restore_weights(store: &mut ParamStore, snapshot: &[Matrix]) -> Result<(), String> {
    if snapshot.len() != store.len() {
        return Err(format!(
            "weight snapshot has {} tensors, model has {}",
            snapshot.len(),
            store.len()
        ));
    }
    for (id, s) in store.iter_ids().zip(snapshot.iter()) {
        if store.value(id).shape() != s.shape() {
            return Err(format!(
                "weight tensor '{}' shape mismatch: {:?} vs {:?}",
                store.name(id),
                store.value(id).shape(),
                s.shape()
            ));
        }
    }
    store.restore(snapshot);
    Ok(())
}

/// Incremental fine-tuning driver over [`try_train_resumable`]: runs a
/// bounded number of epochs per call ("round"), carrying the full
/// [`TrainCheckpoint`] — weights, Adam moments, batch-iterator position,
/// early-stopping bookkeeping — between rounds. N rounds of `k` epochs on a
/// fixed dataset produce the same training trajectory as one `N*k`-epoch
/// run (checkpoint resume is bit-exact), so an online tuner can interleave
/// short training slices with serving without changing what is learned.
///
/// When the dataset changes between rounds (new laps streamed in), call
/// [`ResumableFineTuner::reset`]: the optimizer trajectory is restarted on
/// the new instance set, which is the well-defined semantic — resuming a
/// batch iterator into a different-sized dataset would silently desync the
/// shuffle sequence.
#[derive(Clone, Debug, Default)]
pub struct ResumableFineTuner {
    checkpoint: Option<TrainCheckpoint>,
    rounds_run: u64,
}

impl ResumableFineTuner {
    pub fn new() -> ResumableFineTuner {
        ResumableFineTuner::default()
    }

    /// Continue a tuner from a persisted checkpoint (e.g. loaded through
    /// `core::persist` after a crash).
    pub fn from_checkpoint(ckpt: TrainCheckpoint) -> ResumableFineTuner {
        ResumableFineTuner {
            checkpoint: Some(ckpt),
            rounds_run: 0,
        }
    }

    /// The checkpoint the next round resumes from (None before any round).
    pub fn checkpoint(&self) -> Option<&TrainCheckpoint> {
        self.checkpoint.as_ref()
    }

    /// Epoch index the next round starts at.
    pub fn next_epoch(&self) -> usize {
        self.checkpoint.as_ref().map_or(0, |c| c.next_epoch)
    }

    /// Rounds completed since construction (or the last reset).
    pub fn rounds_run(&self) -> u64 {
        self.rounds_run
    }

    /// Drop the carried checkpoint — required when the training set the
    /// rounds draw from has changed.
    pub fn reset(&mut self) {
        self.checkpoint = None;
        self.rounds_run = 0;
    }

    /// Run one round through an arbitrary resumable training entry point.
    /// The closure receives `(epoch_cap, resume, on_epoch_end)` and must
    /// forward them to its [`try_train_resumable`] call; the driver
    /// captures the final per-epoch checkpoint for the next round. Used by
    /// `core`'s online tuner, whose training closures live behind
    /// `RankModel::train_resumable`.
    pub fn step_with(
        &mut self,
        extra_epochs: usize,
        run: impl FnOnce(
            usize,
            Option<&TrainCheckpoint>,
            &mut dyn FnMut(&TrainCheckpoint),
        ) -> Result<TrainReport, TrainError>,
    ) -> Result<TrainReport, TrainError> {
        let cap = self.next_epoch() + extra_epochs.max(1);
        let mut last = self.checkpoint.clone();
        let report = run(cap, self.checkpoint.as_ref(), &mut |c| {
            last = Some(c.clone());
        })?;
        self.checkpoint = last;
        self.rounds_run += 1;
        Ok(report)
    }

    /// One round of `extra_epochs` epochs directly on a [`ParamStore`] —
    /// the nn-level driver for callers holding raw training closures.
    pub fn step(
        &mut self,
        store: &mut ParamStore,
        n_instances: usize,
        cfg: &TrainConfig,
        extra_epochs: usize,
        batch_loss: impl FnMut(&mut ParamStore, &[usize]) -> f32,
        val_loss: impl FnMut(&ParamStore) -> f32,
    ) -> Result<TrainReport, TrainError> {
        self.step_with(extra_epochs, |cap, resume, on_epoch| {
            let cfg = TrainConfig {
                max_epochs: cap,
                ..cfg.clone()
            };
            try_train_resumable(
                store,
                n_instances,
                &cfg,
                batch_loss,
                val_loss,
                resume,
                Some(on_epoch),
            )
        })
    }
}

/// Split a batch of indices into up to `shards` roughly equal pieces for
/// shard-parallel gradient computation. Shards are floored at
/// [`MIN_SHARD_ROWS`] rows: below that, per-thread tape and spawn overhead
/// outweighs the parallelism (the same small-kernel effect the paper's
/// Fig 10 shows for accelerator offload).
pub fn shard_indices(batch: &[usize], shards: usize) -> Vec<&[usize]> {
    let max_by_size = batch.len().div_ceil(MIN_SHARD_ROWS).max(1);
    let shards = shards.max(1).min(batch.len().max(1)).min(max_by_size);
    let per = batch.len().div_ceil(shards);
    batch.chunks(per.max(1)).collect()
}

/// Minimum rows per training shard before splitting further stops paying.
pub const MIN_SHARD_ROWS: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Binding;
    use rpf_autodiff::Tape;
    use rpf_tensor::Matrix;

    #[test]
    fn trains_linear_regression_to_convergence() {
        // y = 3x - 1 with noise-free data; loss should approach zero.
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 1));
        let b = store.register("b", Matrix::zeros(1, 1));
        let xs: Vec<f32> = (0..64).map(|i| i as f32 / 32.0 - 1.0).collect();
        let ys: Vec<f32> = xs.iter().map(|x| 3.0 * x - 1.0).collect();

        let make_loss = |store: &mut ParamStore, batch: &[usize]| -> f32 {
            let tape = Tape::new();
            let bind = Binding::new(&tape, store);
            let x = tape.leaf(Matrix::from_vec(
                batch.len(),
                1,
                batch.iter().map(|&i| xs[i]).collect(),
            ));
            let t = tape.leaf(Matrix::from_vec(
                batch.len(),
                1,
                batch.iter().map(|&i| ys[i]).collect(),
            ));
            let ones = tape.leaf(Matrix::ones(batch.len(), 1));
            let pred = tape.add(tape.matmul(x, bind.var(w)), tape.matmul(ones, bind.var(b)));
            let loss = tape.mean(tape.square(tape.sub(pred, t)));
            let out = tape.scalar(loss);
            let __g = bind.into_grads(loss);
            store.apply_grads(__g);
            out
        };

        let cfg = TrainConfig {
            max_epochs: 200,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        };
        let report = train(&mut store, 64, &cfg, make_loss, |store| {
            // Validation = exact fit quality.
            let wv = store.value(w).get(0, 0);
            let bv = store.value(b).get(0, 0);
            xs.iter()
                .zip(&ys)
                .map(|(x, y)| (wv * x + bv - y) * (wv * x + bv - y))
                .sum::<f32>()
                / xs.len() as f32
        });
        assert!(
            report.best_val_loss < 1e-3,
            "val loss {}",
            report.best_val_loss
        );
        assert!((store.value(w).get(0, 0) - 3.0).abs() < 0.05);
        assert!((store.value(b).get(0, 0) + 1.0).abs() < 0.05);
        assert!(report.us_per_sample > 0.0);
        assert!(report.epochs_run <= 200);
    }

    #[test]
    fn early_stopping_restores_best_weights() {
        // A validation function that worsens after epoch 3 regardless of the
        // weights: training must restore the epoch-3 snapshot.
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 1));
        let mut epoch_counter = 0usize;

        let cfg = TrainConfig {
            max_epochs: 40,
            batch_size: 4,
            lr: 0.1,
            patience: 3,
            min_lr: 0.05, // one decay ends training
            ..Default::default()
        };
        let report = train(
            &mut store,
            8,
            &cfg,
            |store, batch| {
                // Gradient of +1 per element: weights decrease each step.
                store.accumulate_grad(w, &Matrix::ones(1, 1));
                batch.len() as f32
            },
            |_| {
                epoch_counter += 1;
                if epoch_counter <= 3 {
                    10.0 - epoch_counter as f32 // improving
                } else {
                    100.0 // collapse
                }
            },
        );
        assert_eq!(report.best_epoch, 2);
        assert!(
            report.epochs_run < 40,
            "should stop early, ran {}",
            report.epochs_run
        );
        // Weights restored to the epoch-3 snapshot, not the last one.
        let restored = store.value(w).get(0, 0);
        let final_would_be = -0.1 * 2.0 * report.epochs_run as f32;
        assert!(restored > final_would_be + 0.05, "restored {restored}");
    }

    #[test]
    fn shard_indices_partition() {
        let batch: Vec<usize> = (0..100).collect();
        let shards = shard_indices(&batch, 3);
        assert_eq!(shards.len(), 3);
        let flat: Vec<usize> = shards.iter().flat_map(|s| s.iter().copied()).collect();
        assert_eq!(flat, batch);
        // More shards than items degrades gracefully.
        let shards = shard_indices(&batch[..2], 8);
        assert!(shards.len() <= 2);
    }

    #[test]
    fn shards_respect_minimum_rows() {
        let batch: Vec<usize> = (0..32).collect();
        let shards = shard_indices(&batch, 16);
        assert!(shards.len() <= 2, "32 rows should make at most 2 shards");
        for s in &shards {
            assert!(s.len() >= MIN_SHARD_ROWS);
        }
        // Large batches still fan out fully.
        let big: Vec<usize> = (0..3200).collect();
        assert_eq!(shard_indices(&big, 16).len(), 16);
    }
}
