//! LSTM cell and the 2-layer stack of the paper's RankModel.
//!
//! The paper (§IV-J) identifies the cell's kernels — MatMul, Mul, Add,
//! Sigmoid, Tanh — and profiles them; this implementation produces exactly
//! those kernels on the tape, so the `rpf_tensor::counters` measurements
//! used for Fig 11/12 reflect the same operator mix.

use crate::init::xavier_uniform;
use crate::params::{Binding, ParamId, ParamStore};
use rand::rngs::StdRng;
use rpf_autodiff::Var;
use rpf_tensor::Matrix;

/// Hidden/cell state pair for one LSTM layer: both `(batch, hidden)`.
#[derive(Clone, Copy, Debug)]
pub struct LstmState {
    pub h: Var,
    pub c: Var,
}

/// One LSTM cell. Gate layout in the fused weight matrices is `[i f g o]`.
#[derive(Clone, Copy, Debug)]
pub struct LstmCell {
    /// Input-to-hidden weights, `(input, 4*hidden)`.
    pub w_ih: ParamId,
    /// Hidden-to-hidden weights, `(hidden, 4*hidden)`.
    pub w_hh: ParamId,
    /// Gate bias, `(1, 4*hidden)`.
    pub bias: ParamId,
    pub input_dim: usize,
    pub hidden_dim: usize,
}

impl LstmCell {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
    ) -> LstmCell {
        let w_ih = store.register(
            format!("{name}.w_ih"),
            xavier_uniform(rng, input_dim, 4 * hidden_dim),
        );
        let w_hh = store.register(
            format!("{name}.w_hh"),
            xavier_uniform(rng, hidden_dim, 4 * hidden_dim),
        );
        // Forget-gate bias starts at 1.0 — the standard trick to let
        // gradients flow through long sequences from the first epochs.
        let mut b = Matrix::zeros(1, 4 * hidden_dim);
        for j in hidden_dim..2 * hidden_dim {
            b.set(0, j, 1.0);
        }
        let bias = store.register(format!("{name}.bias"), b);
        LstmCell {
            w_ih,
            w_hh,
            bias,
            input_dim,
            hidden_dim,
        }
    }

    /// Zero initial state for a batch of `batch` sequences.
    pub fn zero_state(&self, bind: &Binding<'_>, batch: usize) -> LstmState {
        let t = bind.tape();
        LstmState {
            h: t.leaf(Matrix::zeros(batch, self.hidden_dim)),
            c: t.leaf(Matrix::zeros(batch, self.hidden_dim)),
        }
    }

    /// One time step: `x` is `(batch, input_dim)`.
    pub fn step(&self, bind: &Binding<'_>, x: Var, state: LstmState) -> LstmState {
        let t = bind.tape();
        let h = self.hidden_dim;
        // Fused gate pre-activations: x W_ih + h W_hh + b  -> (batch, 4h)
        let gx = t.matmul(x, bind.var(self.w_ih));
        let gh = t.matmul(state.h, bind.var(self.w_hh));
        let gates = t.add_row(t.add(gx, gh), bind.var(self.bias));

        let i = t.sigmoid(t.slice_cols(gates, 0, h));
        let f = t.sigmoid(t.slice_cols(gates, h, 2 * h));
        let g = t.tanh(t.slice_cols(gates, 2 * h, 3 * h));
        let o = t.sigmoid(t.slice_cols(gates, 3 * h, 4 * h));

        let c = t.add(t.mul(f, state.c), t.mul(i, g));
        let h_out = t.mul(o, t.tanh(c));
        LstmState { h: h_out, c }
    }
}

/// A stack of LSTM layers (the paper uses two, 40 units each — Table IV).
///
/// Layer `k`'s input is layer `k-1`'s hidden output at the same time step.
#[derive(Clone, Debug)]
pub struct StackedLstm {
    pub layers: Vec<LstmCell>,
}

impl StackedLstm {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        num_layers: usize,
    ) -> StackedLstm {
        assert!(num_layers >= 1);
        let mut layers = Vec::with_capacity(num_layers);
        for l in 0..num_layers {
            let in_dim = if l == 0 { input_dim } else { hidden_dim };
            layers.push(LstmCell::new(
                store,
                rng,
                &format!("{name}.l{l}"),
                in_dim,
                hidden_dim,
            ));
        }
        StackedLstm { layers }
    }

    pub fn hidden_dim(&self) -> usize {
        self.layers[0].hidden_dim
    }

    pub fn zero_state(&self, bind: &Binding<'_>, batch: usize) -> Vec<LstmState> {
        self.layers
            .iter()
            .map(|l| l.zero_state(bind, batch))
            .collect()
    }

    /// One time step through the full stack; returns the top layer's hidden
    /// output and the new per-layer states.
    pub fn step(&self, bind: &Binding<'_>, x: Var, states: &[LstmState]) -> (Var, Vec<LstmState>) {
        assert_eq!(states.len(), self.layers.len(), "state count mismatch");
        let mut new_states = Vec::with_capacity(self.layers.len());
        let mut input = x;
        for (layer, state) in self.layers.iter().zip(states) {
            let s = layer.step(bind, input, *state);
            input = s.h;
            new_states.push(s);
        }
        (input, new_states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rpf_autodiff::{finite_difference_grad, Tape};
    use rpf_tensor::Matrix;

    fn setup(input: usize, hidden: usize) -> (ParamStore, LstmCell) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(8);
        let cell = LstmCell::new(&mut store, &mut rng, "lstm", input, hidden);
        (store, cell)
    }

    #[test]
    fn step_shapes() {
        let (store, cell) = setup(5, 7);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let x = tape.leaf(Matrix::ones(3, 5));
        let s0 = cell.zero_state(&bind, 3);
        let s1 = cell.step(&bind, x, s0);
        assert_eq!(tape.shape(s1.h), (3, 7));
        assert_eq!(tape.shape(s1.c), (3, 7));
    }

    #[test]
    fn zero_input_zero_state_gives_bounded_output() {
        let (store, cell) = setup(4, 4);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let x = tape.leaf(Matrix::zeros(2, 4));
        let s0 = cell.zero_state(&bind, 2);
        let s1 = cell.step(&bind, x, s0);
        let h = tape.value(s1.h);
        assert!(h.as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let (store, cell) = setup(3, 4);
        let b = store.value(cell.bias);
        for j in 0..4 {
            assert_eq!(b.get(0, j), 0.0, "input gate bias");
            assert_eq!(b.get(0, 4 + j), 1.0, "forget gate bias");
            assert_eq!(b.get(0, 8 + j), 0.0, "cell gate bias");
            assert_eq!(b.get(0, 12 + j), 0.0, "output gate bias");
        }
    }

    #[test]
    fn multi_step_gradients_flow_to_all_weights() {
        let (mut store, cell) = setup(3, 4);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let mut state = cell.zero_state(&bind, 2);
        for step in 0..5 {
            let x = tape.leaf(Matrix::full(2, 3, 0.1 * (step as f32 + 1.0)));
            state = cell.step(&bind, x, state);
        }
        let loss = tape.sum(tape.square(state.h));
        let __g = bind.into_grads(loss);
        store.apply_grads(__g);
        assert!(store.grad(cell.w_ih).frob_norm() > 0.0);
        assert!(store.grad(cell.w_hh).frob_norm() > 0.0);
        assert!(store.grad(cell.bias).frob_norm() > 0.0);
    }

    #[test]
    fn cell_gradient_matches_finite_differences() {
        // Full BPTT through 3 steps, checked against numeric differentiation
        // of the input-to-hidden weights.
        let (store, cell) = setup(2, 3);
        let w0 = store.value(cell.w_ih).clone();
        let w_index = cell.w_ih;

        let forward_with = |w: &Matrix| -> f32 {
            let tape = Tape::new();
            // Clone the store with the perturbed weight.
            let mut store2 = ParamStore::new();
            let mut ids = Vec::new();
            for id in store.iter_ids() {
                let v = if id == w_index {
                    w.clone()
                } else {
                    store.value(id).clone()
                };
                ids.push(store2.register(store.name(id).to_string(), v));
            }
            let bind = Binding::new(&tape, &store2);
            let mut state = cell.zero_state(&bind, 2);
            for step in 0..3 {
                let x = tape.leaf(Matrix::full(2, 2, 0.2 * (step as f32 + 1.0)));
                state = cell.step(&bind, x, state);
            }
            let loss = tape.sum(tape.square(state.h));
            tape.scalar(loss)
        };

        // Analytic gradient.
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let mut state = cell.zero_state(&bind, 2);
        for step in 0..3 {
            let x = tape.leaf(Matrix::full(2, 2, 0.2 * (step as f32 + 1.0)));
            state = cell.step(&bind, x, state);
        }
        let loss = tape.sum(tape.square(state.h));
        let mut grads = tape.backward(loss);
        let analytic = bind
            .collect_grads(&mut grads)
            .into_iter()
            .find(|(id, _)| *id == w_index)
            .unwrap()
            .1;

        let numeric = finite_difference_grad(&w0, 1e-2, |w| forward_with(w));
        let mut max_err = 0.0f32;
        for (a, n) in analytic.as_slice().iter().zip(numeric.as_slice()) {
            let denom = a.abs().max(n.abs()).max(1e-2);
            max_err = max_err.max((a - n).abs() / denom);
        }
        assert!(max_err < 5e-2, "BPTT gradient error {max_err}");
    }

    #[test]
    fn stacked_lstm_wires_layers() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(9);
        let stack = StackedLstm::new(&mut store, &mut rng, "enc", 6, 4, 2);
        assert_eq!(stack.layers.len(), 2);
        assert_eq!(stack.layers[0].input_dim, 6);
        assert_eq!(stack.layers[1].input_dim, 4);

        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let mut states = stack.zero_state(&bind, 3);
        let x = tape.leaf(Matrix::ones(3, 6));
        let (out, new_states) = stack.step(&bind, x, &states);
        assert_eq!(tape.shape(out), (3, 4));
        assert_eq!(new_states.len(), 2);
        states = new_states;
        let x2 = tape.leaf(Matrix::ones(3, 6));
        let (out2, _) = stack.step(&bind, x2, &states);
        assert_eq!(tape.shape(out2), (3, 4));
    }
}
