//! Minibatch index management.
//!
//! Models in this workspace assemble their own input matrices (they differ:
//! DeepAR batches sequences, the PitModel batches feature rows), so the
//! shared machinery is index-level: shuffled epoch iteration and splits.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A batch of instance indices into the caller's dataset.
pub type Batch = Vec<usize>;

/// Yields shuffled minibatches of indices, reshuffling every epoch.
///
/// The shuffle RNG advances one fixed amount per [`BatchIter::epoch`] call,
/// so the iterator's position is fully described by `(n, batch_size, seed,
/// epochs_drawn)`. [`BatchIter::skip_epochs`] replays that advancement,
/// which is how a resumed training run re-synchronises its batch order with
/// the uninterrupted run it is continuing.
pub struct BatchIter {
    n: usize,
    batch_size: usize,
    rng: StdRng,
    epochs_drawn: u64,
}

impl BatchIter {
    pub fn new(n: usize, batch_size: usize, seed: u64) -> BatchIter {
        assert!(batch_size > 0, "batch size must be positive");
        BatchIter {
            n,
            batch_size,
            rng: StdRng::seed_from_u64(seed),
            epochs_drawn: 0,
        }
    }

    /// All batches for one epoch (fresh shuffle). The final batch may be
    /// smaller than `batch_size`.
    pub fn epoch(&mut self) -> Vec<Batch> {
        let mut idx: Vec<usize> = (0..self.n).collect();
        idx.shuffle(&mut self.rng);
        self.epochs_drawn += 1;
        idx.chunks(self.batch_size).map(|c| c.to_vec()).collect()
    }

    /// Number of epochs drawn so far (the checkpointable position).
    pub fn epochs_drawn(&self) -> u64 {
        self.epochs_drawn
    }

    /// Fast-forward a fresh iterator past `n` epochs by replaying their
    /// shuffles, so the next [`BatchIter::epoch`] returns exactly what the
    /// `(n+1)`-th call on an uninterrupted iterator would have.
    pub fn skip_epochs(&mut self, n: u64) {
        for _ in 0..n {
            let mut idx: Vec<usize> = (0..self.n).collect();
            idx.shuffle(&mut self.rng);
            self.epochs_drawn += 1;
        }
    }
}

/// Deterministic train/validation split of `0..n` by fraction.
pub fn train_val_split(n: usize, val_fraction: f32, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!((0.0..1.0).contains(&val_fraction));
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let n_val = ((n as f32) * val_fraction).round() as usize;
    let val = idx.split_off(n.saturating_sub(n_val));
    (idx, val)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn epoch_covers_every_index_once() {
        let mut it = BatchIter::new(103, 10, 1);
        let batches = it.epoch();
        assert_eq!(batches.len(), 11);
        let all: Vec<usize> = batches.into_iter().flatten().collect();
        assert_eq!(all.len(), 103);
        let set: HashSet<usize> = all.into_iter().collect();
        assert_eq!(set.len(), 103);
    }

    #[test]
    fn epochs_reshuffle() {
        let mut it = BatchIter::new(50, 50, 2);
        let a = it.epoch();
        let b = it.epoch();
        assert_ne!(a[0], b[0], "two epochs should not repeat the same order");
    }

    #[test]
    fn skip_epochs_resynchronises_batch_order() {
        let mut straight = BatchIter::new(64, 8, 7);
        let _ = straight.epoch();
        let _ = straight.epoch();
        let third = straight.epoch();

        let mut resumed = BatchIter::new(64, 8, 7);
        resumed.skip_epochs(2);
        assert_eq!(resumed.epochs_drawn(), 2);
        assert_eq!(
            resumed.epoch(),
            third,
            "a skipped iterator must replay the uninterrupted order"
        );
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let (train, val) = train_val_split(100, 0.2, 3);
        assert_eq!(train.len(), 80);
        assert_eq!(val.len(), 20);
        let mut all: Vec<usize> = train.iter().chain(&val).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn zero_val_fraction_keeps_everything() {
        let (train, val) = train_val_split(10, 0.0, 4);
        assert_eq!(train.len(), 10);
        assert!(val.is_empty());
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        let _ = BatchIter::new(10, 0, 1);
    }
}
