//! Adam optimizer (Kingma & Ba) — the paper trains every deep model with
//! Adam at lr 1e-3 (Table IV) with gradient clipping.

use crate::params::ParamStore;
use rpf_tensor::Matrix;

/// A snapshot of Adam's mutable state: first/second moments, step count and
/// current learning rate. Captured for divergence rollback (restore the
/// last-good optimizer alongside the last-good weights) and persisted inside
/// training checkpoints so a killed run resumes bit-identically.
#[derive(Clone, Debug)]
pub struct AdamState {
    pub lr: f32,
    pub t: u64,
    pub m: Vec<Matrix>,
    pub v: Vec<Matrix>,
}

/// Adam with optional global-norm gradient clipping.
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// Clip gradients to this global L2 norm before the update (0 = off).
    pub clip_norm: f32,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    t: u64,
}

impl Adam {
    /// Defaults matching the paper's Table IV (lr 1e-3) and the usual
    /// β₁ = 0.9, β₂ = 0.999.
    pub fn new(store: &ParamStore, lr: f32) -> Adam {
        let m = store
            .iter_ids()
            .map(|id| {
                let (r, c) = store.value(id).shape();
                Matrix::zeros(r, c)
            })
            .collect::<Vec<_>>();
        let v = m.clone();
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: 10.0,
            m,
            v,
            t: 0,
        }
    }

    /// Number of update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Snapshot the full optimizer state (moments, step count, LR) for
    /// divergence rollback and crash-safe checkpointing.
    pub fn state(&self) -> AdamState {
        AdamState {
            lr: self.lr,
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restore a state captured by [`Adam::state`]. Shapes must match the
    /// store this optimizer was built for.
    pub fn restore(&mut self, state: &AdamState) -> Result<(), String> {
        if state.m.len() != self.m.len() || state.v.len() != self.v.len() {
            return Err(format!(
                "Adam state has {} moment tensors, optimizer has {}",
                state.m.len(),
                self.m.len()
            ));
        }
        for (cur, new) in self
            .m
            .iter()
            .zip(&state.m)
            .chain(self.v.iter().zip(&state.v))
        {
            if cur.shape() != new.shape() {
                return Err(format!(
                    "Adam moment shape mismatch: {:?} vs {:?}",
                    cur.shape(),
                    new.shape()
                ));
            }
        }
        self.lr = state.lr;
        self.t = state.t;
        self.m = state.m.clone();
        self.v = state.v.clone();
        Ok(())
    }

    /// Halve (or otherwise scale) the learning rate — the paper's LR decay
    /// on validation plateau (factor 0.5, Table IV).
    pub fn decay_lr(&mut self, factor: f32) {
        self.lr *= factor;
    }

    /// Apply one update from the gradients currently accumulated in `store`,
    /// then leave the gradients untouched (caller zeroes them).
    pub fn step(&mut self, store: &mut ParamStore) {
        if self.clip_norm > 0.0 {
            let norm = store.grad_norm();
            if norm > self.clip_norm {
                store.scale_grads(self.clip_norm / norm);
            }
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (ms, vs) = (&mut self.m, &mut self.v);
        store.update_each(|i, value, grad| {
            let m = &mut ms[i];
            let v = &mut vs[i];
            for ((p, &g), (mi, vi)) in value
                .as_mut_slice()
                .iter_mut()
                .zip(grad.as_slice())
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice().iter_mut()))
            {
                *mi = b1 * *mi + (1.0 - b1) * g;
                *vi = b2 * *vi + (1.0 - b2) * g * g;
                let m_hat = *mi / b1t;
                let v_hat = *vi / b2t;
                *p -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Binding;
    use rpf_autodiff::Tape;

    #[test]
    fn minimizes_a_quadratic() {
        // f(w) = (w - 5)^2, minimized at 5.
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 1));
        let mut adam = Adam::new(&store, 0.1);
        for _ in 0..300 {
            store.zero_grads();
            let tape = Tape::new();
            let bind = Binding::new(&tape, &store);
            let wv = bind.var(w);
            let target = tape.leaf(Matrix::full(1, 1, 5.0));
            let loss = tape.sum(tape.square(tape.sub(wv, target)));
            let __g = bind.into_grads(loss);
            store.apply_grads(__g);
            adam.step(&mut store);
        }
        let val = store.value(w).get(0, 0);
        assert!((val - 5.0).abs() < 1e-2, "w = {val}");
        assert_eq!(adam.steps(), 300);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 4));
        let mut adam = Adam::new(&store, 1.0);
        adam.clip_norm = 1.0;
        // Huge gradient.
        store.accumulate_grad(w, &Matrix::full(1, 4, 1e6));
        assert!(store.grad_norm() > 1e6);
        adam.step(&mut store);
        // After clipping the effective gradient norm was 1; Adam's first
        // step is ~lr in each coordinate regardless, but it must be finite
        // and modest.
        let v = store.value(w);
        assert!(v.as_slice().iter().all(|x| x.is_finite() && x.abs() <= 1.5));
    }

    #[test]
    fn lr_decay() {
        let store = ParamStore::new();
        let mut adam = Adam::new(&store, 1e-3);
        adam.decay_lr(0.5);
        adam.decay_lr(0.5);
        assert!((adam.lr - 2.5e-4).abs() < 1e-9);
    }
}
