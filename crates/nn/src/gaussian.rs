//! The probabilistic output head and Gaussian likelihood of the paper.
//!
//! §III-B: "a neural network predicts all parameters θ of a predefined
//! probability distribution p(z|θ) ... θ = (µ, σ) can be calculated as
//! µ = Wµᵀ h + bµ, σ = log(1 + exp(Wσᵀ h + bσ))". Training maximises the
//! log-likelihood (Algorithm 1 / Eq. 1); forecasting samples from p(·|θ)
//! ancestrally (Algorithm 2).

use crate::linear::Linear;
use crate::params::{Binding, ParamStore};
use rand::rngs::StdRng;
use rand::Rng;
use rpf_autodiff::Var;
use rpf_tensor::Matrix;

/// Lower bound on sigma to keep the likelihood finite.
pub const SIGMA_FLOOR: f32 = 1e-3;

/// Numerically stable scalar softplus `log(1 + e^x)`.
///
/// The naive form `(1.0 + x.exp()).ln()` overflows to `inf` once `x ≳ 88`
/// (`e^88` exceeds `f32::MAX`); the equivalent `max(x, 0) + ln1p(e^{-|x|})`
/// never exponentiates a positive argument, so it is exact for large `x`
/// and returns `e^x`-accurate values for very negative `x`.
pub fn softplus(x: f32) -> f32 {
    x.max(0.0) + (-x.abs()).exp().ln_1p()
}

/// The paper's sigma link on a concrete pre-activation:
/// `σ = softplus(raw) + SIGMA_FLOOR`, overflow-safe at any `raw`.
pub fn sigma_from_raw(raw: f32) -> f32 {
    softplus(raw) + SIGMA_FLOOR
}

/// Gaussian distribution parameters for a batch, as tape nodes.
#[derive(Clone, Copy, Debug)]
pub struct GaussianParams {
    pub mu: Var,
    pub sigma: Var,
}

/// Projects a hidden state to `(µ, σ)` per the paper's link functions.
#[derive(Clone, Copy, Debug)]
pub struct GaussianHead {
    pub mu: Linear,
    pub sigma: Linear,
}

impl GaussianHead {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        hidden_dim: usize,
    ) -> GaussianHead {
        GaussianHead {
            mu: Linear::new(store, rng, &format!("{name}.mu"), hidden_dim, 1),
            sigma: Linear::new(store, rng, &format!("{name}.sigma"), hidden_dim, 1),
        }
    }

    /// `h` is `(batch, hidden)`; returns per-row `(µ, σ)` with
    /// `σ = softplus(Wσ h + bσ) + floor`.
    pub fn forward(&self, bind: &Binding<'_>, h: Var) -> GaussianParams {
        let t = bind.tape();
        let mu = self.mu.forward(bind, h);
        let sigma_raw = self.sigma.forward(bind, h);
        let sigma = t.add_scalar(t.softplus(sigma_raw), SIGMA_FLOOR);
        GaussianParams { mu, sigma }
    }
}

/// Weighted Gaussian negative log-likelihood (the negation of the paper's
/// Eq. 1, so lower is better):
///
/// `L = Σ_i w_i [ log σ_i + (z_i − µ_i)² / (2 σ_i²) ] / Σ_i w_i`
///
/// `weights` implements the paper's Fig 7 step 1 ("adding larger weights to
/// the loss for instances with rank changes").
pub fn gaussian_nll(
    bind: &Binding<'_>,
    params: GaussianParams,
    target: Var,
    weights: Option<Var>,
) -> Var {
    let t = bind.tape();
    let diff = t.sub(target, params.mu);
    let sq = t.square(diff);
    let var2 = t.scale(t.square(params.sigma), 2.0);
    let per_point = t.add(t.log(params.sigma), t.div(sq, var2));
    match weights {
        Some(w) => {
            let weighted = t.mul(per_point, w);
            let total_w = t.sum(w);
            t.div(t.sum(weighted), total_w)
        }
        None => t.mean(per_point),
    }
}

/// One standard-normal draw via Box–Muller. The scalar primitive behind
/// both the matrix samplers and the per-trajectory stream samplers — all
/// paths must consume the generator identically (two uniforms per normal)
/// so sequential and stream-parallel sampling stay bit-compatible.
pub fn draw_standard_normal(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(1e-7..1.0f32);
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// One draw from `N(mu, sigma)`.
pub fn draw_gaussian(rng: &mut StdRng, mu: f32, sigma: f32) -> f32 {
    mu + sigma * draw_standard_normal(rng)
}

/// One Student-t draw: `mu + sigma · Z / sqrt(V/k)` with `Z ~ N(0,1)` and
/// `V ~ chi²(k)` built from `k = max(ceil(nu), 3)` squared normals —
/// element-for-element the same recipe as [`sample_student_t`].
pub fn draw_student_t(rng: &mut StdRng, mu: f32, sigma: f32, nu: f32) -> f32 {
    let k = nu.ceil().max(3.0) as usize;
    let z = draw_standard_normal(rng);
    let chi2: f32 = (0..k).map(|_| draw_standard_normal(rng).powi(2)).sum();
    mu + sigma * z / (chi2 / k as f32).sqrt().max(1e-4)
}

/// Draw one sample per row from `N(mu, sigma)` given concrete parameter
/// values (forecast time, no tape involvement).
pub fn sample_gaussian(rng: &mut StdRng, mu: &Matrix, sigma: &Matrix) -> Matrix {
    assert_eq!(mu.shape(), sigma.shape(), "sample_gaussian shape mismatch");
    let mut out = mu.clone();
    for (o, &s) in out.as_mut_slice().iter_mut().zip(sigma.as_slice()) {
        *o += s * draw_standard_normal(rng);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rpf_autodiff::Tape;

    #[test]
    fn sigma_is_strictly_positive() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(13);
        let head = GaussianHead::new(&mut store, &mut rng, "out", 8);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let h = tape.leaf(Matrix::from_fn(5, 8, |r, c| {
            (r as f32 - 2.0) * (c as f32 - 4.0)
        }));
        let p = head.forward(&bind, h);
        let sigma = tape.value(p.sigma);
        assert!(sigma.as_slice().iter().all(|&s| s >= SIGMA_FLOOR));
    }

    #[test]
    fn nll_is_minimized_at_true_mean() {
        // For fixed sigma, NLL(mu = z) < NLL(mu != z).
        let tape = Tape::new();
        let store = ParamStore::new();
        let bind = Binding::new(&tape, &store);
        let z = tape.leaf(Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]));
        let sigma = tape.leaf(Matrix::full(3, 1, 1.0));

        let mu_exact = tape.leaf(Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]));
        let mu_off = tape.leaf(Matrix::from_vec(3, 1, vec![2.0, 3.0, 4.0]));
        let nll_exact = gaussian_nll(
            &bind,
            GaussianParams {
                mu: mu_exact,
                sigma,
            },
            z,
            None,
        );
        let nll_off = gaussian_nll(&bind, GaussianParams { mu: mu_off, sigma }, z, None);
        assert!(tape.scalar(nll_exact) < tape.scalar(nll_off));
    }

    #[test]
    fn weights_emphasize_selected_rows() {
        // Doubling the weight of a badly-predicted row increases the loss.
        let tape = Tape::new();
        let store = ParamStore::new();
        let bind = Binding::new(&tape, &store);
        let z = tape.leaf(Matrix::from_vec(2, 1, vec![0.0, 10.0]));
        let mu = tape.leaf(Matrix::from_vec(2, 1, vec![0.0, 0.0]));
        let sigma = tape.leaf(Matrix::full(2, 1, 1.0));

        let w_flat = tape.leaf(Matrix::from_vec(2, 1, vec![1.0, 1.0]));
        let w_hot = tape.leaf(Matrix::from_vec(2, 1, vec![1.0, 9.0]));
        let nll_flat = gaussian_nll(&bind, GaussianParams { mu, sigma }, z, Some(w_flat));
        let nll_hot = gaussian_nll(&bind, GaussianParams { mu, sigma }, z, Some(w_hot));
        assert!(tape.scalar(nll_hot) > tape.scalar(nll_flat));
    }

    #[test]
    fn fitting_mu_sigma_by_gradient_descent_recovers_distribution() {
        // Observe data from N(3, 0.5) and fit (mu, sigma) directly.
        let mut rng = StdRng::seed_from_u64(14);
        let data = sample_gaussian(
            &mut rng,
            &Matrix::full(256, 1, 3.0),
            &Matrix::full(256, 1, 0.5),
        );
        let mut store = ParamStore::new();
        let mu_p = store.register("mu", Matrix::zeros(1, 1));
        let s_p = store.register("sigma_raw", Matrix::zeros(1, 1));
        for _ in 0..400 {
            store.zero_grads();
            let tape = Tape::new();
            let bind = Binding::new(&tape, &store);
            // Broadcast scalar params over rows via matmul with a ones column.
            let ones = tape.leaf(Matrix::ones(256, 1));
            let mu = tape.matmul(ones, bind.var(mu_p));
            let sigma =
                tape.add_scalar(tape.softplus(tape.matmul(ones, bind.var(s_p))), SIGMA_FLOOR);
            let z = tape.leaf(data.clone());
            let nll = gaussian_nll(&bind, GaussianParams { mu, sigma }, z, None);
            let __g = bind.into_grads(nll);
            store.apply_grads(__g);
            store.update_each(|_, v, g| rpf_tensor::ops::axpy(v, -0.05, g));
        }
        let mu = store.value(mu_p).get(0, 0);
        let sigma = sigma_from_raw(store.value(s_p).get(0, 0));
        assert!((mu - 3.0).abs() < 0.15, "mu {mu}");
        assert!((sigma - 0.5).abs() < 0.15, "sigma {sigma}");
    }

    #[test]
    fn softplus_survives_extreme_preactivations() {
        // The naive (1 + e^x).ln() overflows at x ≈ 88.73; the stable form
        // must stay finite and near-identity far beyond it.
        for raw in [88.0f32, 100.0, 500.0, 1e4, f32::MAX.ln()] {
            let s = softplus(raw);
            assert!(s.is_finite(), "softplus({raw}) = {s}");
            assert!((s - raw).abs() < 1e-3, "softplus({raw}) = {s} should ≈ x");
            assert!(sigma_from_raw(raw).is_finite());
        }
        // Deep negative tail: positive, tiny, finite.
        for raw in [-88.0f32, -500.0, -1e4] {
            let s = softplus(raw);
            assert!(s.is_finite() && s >= 0.0, "softplus({raw}) = {s}");
        }
        // Agreement with the naive form where that form is safe.
        for raw in [-5.0f32, -0.5, 0.0, 0.5, 5.0, 20.0] {
            let naive = (1.0 + raw.exp()).ln();
            assert!((softplus(raw) - naive).abs() < 1e-5);
        }
        // sigma_from_raw is floored everywhere.
        assert!(sigma_from_raw(-1e4) >= SIGMA_FLOOR);
    }

    #[test]
    fn samples_follow_parameters() {
        let mut rng = StdRng::seed_from_u64(15);
        let mu = Matrix::full(2000, 1, -1.0);
        let sigma = Matrix::full(2000, 1, 2.0);
        let s = sample_gaussian(&mut rng, &mu, &sigma);
        let mean = s.mean();
        let var = s
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / s.len() as f32;
        assert!((mean + 1.0).abs() < 0.2, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.2, "std {}", var.sqrt());
    }
}

/// Student-t negative log-likelihood with fixed degrees of freedom `nu`
/// (location `mu`, scale `sigma`), dropping the mu/sigma-independent
/// normalising constant:
///
/// `L = Σ w_i [ log σ_i + (ν+1)/2 · log(1 + (z_i − µ_i)² / (ν σ_i²)) ] / Σ w_i`
///
/// Heavy tails make the likelihood robust to the rare large rank jumps at
/// pit stops — the ablation counterpart to the paper's Gaussian head.
pub fn student_t_nll(
    bind: &Binding<'_>,
    params: GaussianParams,
    target: Var,
    weights: Option<Var>,
    nu: f32,
) -> Var {
    assert!(nu > 2.0, "need nu > 2 for finite variance");
    let t = bind.tape();
    let diff = t.sub(target, params.mu);
    let sq = t.square(diff);
    let nu_var = t.scale(t.square(params.sigma), nu);
    let ratio = t.div(sq, nu_var);
    let log_term = t.scale(t.log(t.add_scalar(ratio, 1.0)), (nu + 1.0) / 2.0);
    let per_point = t.add(t.log(params.sigma), log_term);
    match weights {
        Some(w) => {
            let weighted = t.mul(per_point, w);
            t.div(t.sum(weighted), t.sum(w))
        }
        None => t.mean(per_point),
    }
}

/// Draw one Student-t sample per row: `mu + sigma · Z / sqrt(V/nu)` with
/// `Z ~ N(0,1)` and `V ~ chi²(nu)` built from `ceil(nu)` squared normals.
pub fn sample_student_t(rng: &mut StdRng, mu: &Matrix, sigma: &Matrix, nu: f32) -> Matrix {
    assert_eq!(mu.shape(), sigma.shape());
    let mut out = mu.clone();
    for (o, &s) in out.as_mut_slice().iter_mut().zip(sigma.as_slice()) {
        *o = draw_student_t(rng, *o, s, nu);
    }
    out
}

#[cfg(test)]
mod student_t_tests {
    use super::*;
    use rand::SeedableRng;
    use rpf_autodiff::Tape;

    #[test]
    fn t_nll_minimized_at_true_location() {
        let tape = Tape::new();
        let store = ParamStore::new();
        let bind = Binding::new(&tape, &store);
        let z = tape.leaf(Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]));
        let sigma = tape.leaf(Matrix::full(3, 1, 1.0));
        let exact = tape.leaf(Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]));
        let off = tape.leaf(Matrix::from_vec(3, 1, vec![3.0, 4.0, 5.0]));
        let a = student_t_nll(&bind, GaussianParams { mu: exact, sigma }, z, None, 5.0);
        let b = student_t_nll(&bind, GaussianParams { mu: off, sigma }, z, None, 5.0);
        assert!(tape.scalar(a) < tape.scalar(b));
    }

    #[test]
    fn t_nll_penalises_outliers_less_than_gaussian() {
        // The whole point of heavy tails: a 10-sigma outlier costs far less
        // under Student-t than under the Gaussian.
        let tape = Tape::new();
        let store = ParamStore::new();
        let bind = Binding::new(&tape, &store);
        let z = tape.leaf(Matrix::full(1, 1, 10.0));
        let mu = tape.leaf(Matrix::full(1, 1, 0.0));
        let sigma = tape.leaf(Matrix::full(1, 1, 1.0));
        let t_loss = student_t_nll(&bind, GaussianParams { mu, sigma }, z, None, 5.0);
        let g_loss = gaussian_nll(&bind, GaussianParams { mu, sigma }, z, None);
        assert!(
            tape.scalar(t_loss) < tape.scalar(g_loss) / 2.0,
            "t {} vs gaussian {}",
            tape.scalar(t_loss),
            tape.scalar(g_loss)
        );
    }

    #[test]
    fn t_nll_gradients_check_out() {
        let mu0 = Matrix::from_vec(4, 1, vec![0.3, -0.2, 0.8, 0.0]);
        let z = Matrix::from_vec(4, 1, vec![1.0, -1.0, 0.5, 2.0]);
        let raw_sigma = Matrix::from_vec(4, 1, vec![0.1, 0.5, -0.3, 0.2]);
        let err = rpf_autodiff::gradcheck(&mu0, 1e-2, |t, mu| {
            let z = t.leaf(z.clone());
            let rs = t.leaf(raw_sigma.clone());
            let sigma = t.add_scalar(t.softplus(rs), SIGMA_FLOOR);
            // Recreate the nll inline (gradcheck has no Binding).
            let diff = t.sub(z, mu);
            let sq = t.square(diff);
            let nu = 5.0f32;
            let nu_var = t.scale(t.square(sigma), nu);
            let ratio = t.div(sq, nu_var);
            let log_term = t.scale(t.log(t.add_scalar(ratio, 1.0)), (nu + 1.0) / 2.0);
            t.mean(t.add(t.log(sigma), log_term))
        });
        assert!(err < 2e-2, "gradient error {err}");
    }

    #[test]
    fn t_samples_are_centered_and_heavier_tailed() {
        let mut rng = StdRng::seed_from_u64(21);
        let mu = Matrix::full(4000, 1, 2.0);
        let sigma = Matrix::full(4000, 1, 1.0);
        let t = sample_student_t(&mut rng, &mu, &sigma, 5.0);
        let mean = t.mean();
        assert!((mean - 2.0).abs() < 0.15, "mean {mean}");
        // Tail mass beyond 3 sigma should exceed the Gaussian's ~0.3%.
        let tail = t
            .as_slice()
            .iter()
            .filter(|&&v| (v - 2.0).abs() > 3.0)
            .count() as f32
            / t.len() as f32;
        assert!(tail > 0.005, "tail fraction {tail} not heavy");
    }
}
