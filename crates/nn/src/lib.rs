//! Neural-network layers, probabilistic heads and the training loop used by
//! the RankNet reproduction.
//!
//! Everything the paper's models need is here:
//!
//! * [`params`] — a central parameter store (values, gradients, Adam state)
//!   that layers reference by id, plus the per-forward-pass
//!   [`Binding`] that bridges parameters onto an autodiff
//!   [`Tape`](rpf_autodiff::Tape),
//! * [`linear`], [`embedding`], [`mlp`] — dense building blocks,
//! * [`lstm`] — the LSTM cell and the 2-layer stack the paper uses for both
//!   encoder and decoder (shared weights, exactly like the DeepAR
//!   implementation in GluonTS it builds on),
//! * [`attention`] — multi-head attention and the Transformer
//!   encoder/decoder layers of the §IV-I comparison,
//! * [`infer`] — the tape-free inference runtime: forward-only mirrors of
//!   the layers above, converted one-shot from a trained [`ParamStore`] and
//!   stepping on reusable scratch buffers; bit-identical to the tape
//!   forward pass but without its per-step allocation and bookkeeping,
//! * [`gaussian`] — the probabilistic output: a network predicts
//!   `θ = (µ, σ)` with `σ = softplus(...)`, trained by Gaussian negative
//!   log-likelihood (paper Eq. 1) and sampled ancestrally at forecast time,
//! * [`adam`] — the Adam optimizer with gradient clipping,
//! * [`train`] — minibatch loop with learning-rate decay on plateau and
//!   early stopping (paper §IV-C), shard-parallel gradient computation via
//!   crossbeam, and the µs/sample throughput measurements behind Fig 10.

pub mod adam;
pub mod attention;
pub mod data;
pub mod embedding;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod gaussian;
pub mod infer;
pub mod init;
pub mod linear;
pub mod lstm;
pub mod mlp;
pub mod params;
pub mod stream;
pub mod train;

pub use adam::{Adam, AdamState};
pub use data::{Batch, BatchIter};
pub use gaussian::GaussianHead;
pub use infer::{
    BatchScratch, InferEmbedding, InferGaussianHead, InferLinear, InferLstmCell, InferMlp,
    InferStackedLstm, LstmScratch, MlpScratch,
};
pub use linear::Linear;
pub use lstm::{LstmCell, StackedLstm};
pub use mlp::Mlp;
pub use params::{Binding, ParamId, ParamStore};
pub use stream::RngStreams;
