//! Multi-head attention and Transformer layers for the paper's §IV-I
//! comparison ("RankNet with Transformer": 8 heads, model dimension 32).
//!
//! Sequences are processed one series at a time as `(T, d)` matrices; the
//! Transformer is a comparison model here (the paper finds the LSTM
//! slightly better on this small-data problem), so clarity wins over
//! batched attention.

use crate::linear::Linear;
use crate::params::{Binding, ParamId, ParamStore};
use rand::rngs::StdRng;
use rpf_autodiff::Var;
use rpf_tensor::Matrix;

/// Layer normalization over the feature dimension with learned gain/bias.
///
/// Implemented entirely from differentiable primitives: row means/variances
/// are computed with a ones-vector matmul so the whole thing backprops
/// through the standard tape ops.
#[derive(Clone, Copy, Debug)]
pub struct LayerNorm {
    pub gamma: ParamId,
    pub beta: ParamId,
    pub dim: usize,
}

impl LayerNorm {
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> LayerNorm {
        LayerNorm {
            gamma: store.register(format!("{name}.gamma"), Matrix::ones(1, dim)),
            beta: store.register(format!("{name}.beta"), Matrix::zeros(1, dim)),
            dim,
        }
    }

    pub fn forward(&self, bind: &Binding<'_>, x: Var) -> Var {
        let t = bind.tape();
        let (rows, d) = t.shape(x);
        debug_assert_eq!(d, self.dim);
        let inv_d = 1.0 / d as f32;
        let ones_col = t.leaf(Matrix::ones(d, 1));
        let ones_row = t.leaf(Matrix::ones(1, d));
        // Row mean broadcast back to (rows, d).
        let mean = t.scale(t.matmul(x, ones_col), inv_d);
        let mean_bc = t.matmul(mean, ones_row);
        let centered = t.sub(x, mean_bc);
        // Row variance, same trick.
        let var = t.scale(t.matmul(t.square(centered), ones_col), inv_d);
        let sd = t.sqrt(t.add_scalar(var, 1e-5));
        let sd_bc = t.matmul(sd, ones_row);
        let normed = t.div(centered, sd_bc);
        // Learned gain and shift.
        let ones_rows = t.leaf(Matrix::ones(rows, 1));
        let gamma_bc = t.matmul(ones_rows, bind.var(self.gamma));
        t.add_row(t.mul(normed, gamma_bc), bind.var(self.beta))
    }
}

/// Sinusoidal positional encoding `(T, d)` (Vaswani et al.).
pub fn positional_encoding(t_len: usize, d: usize) -> Matrix {
    Matrix::from_fn(t_len, d, |pos, i| {
        let rate = (pos as f64) / 10000f64.powf((2 * (i / 2)) as f64 / d as f64);
        if i % 2 == 0 {
            rate.sin() as f32
        } else {
            rate.cos() as f32
        }
    })
}

/// Additive attention mask: 0 where attending is allowed, -1e9 above the
/// diagonal (future positions) for causal decoding.
pub fn causal_mask(t_len: usize) -> Matrix {
    Matrix::from_fn(t_len, t_len, |q, k| if k > q { -1e9 } else { 0.0 })
}

/// Multi-head scaled dot-product attention over one sequence.
#[derive(Clone, Debug)]
pub struct MultiHeadAttention {
    pub wq: Linear,
    pub wk: Linear,
    pub wv: Linear,
    pub wo: Linear,
    pub heads: usize,
    pub dim: usize,
}

impl MultiHeadAttention {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        dim: usize,
        heads: usize,
    ) -> MultiHeadAttention {
        assert_eq!(dim % heads, 0, "model dim must divide into heads");
        MultiHeadAttention {
            wq: Linear::new(store, rng, &format!("{name}.wq"), dim, dim),
            wk: Linear::new(store, rng, &format!("{name}.wk"), dim, dim),
            wv: Linear::new(store, rng, &format!("{name}.wv"), dim, dim),
            wo: Linear::new(store, rng, &format!("{name}.wo"), dim, dim),
            heads,
            dim,
        }
    }

    /// `query`: `(Tq, d)`, `context`: `(Tk, d)`; optional additive mask of
    /// shape `(Tq, Tk)`.
    pub fn forward(
        &self,
        bind: &Binding<'_>,
        query: Var,
        context: Var,
        mask: Option<&Matrix>,
    ) -> Var {
        let t = bind.tape();
        let dh = self.dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();

        let q = self.wq.forward(bind, query);
        let k = self.wk.forward(bind, context);
        let v = self.wv.forward(bind, context);

        let mask_leaf = mask.map(|m| t.leaf(m.clone()));
        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let (lo, hi) = (h * dh, (h + 1) * dh);
            let qh = t.slice_cols(q, lo, hi);
            let kh = t.slice_cols(k, lo, hi);
            let vh = t.slice_cols(v, lo, hi);
            let mut scores = t.scale(t.matmul(qh, t.transpose(kh)), scale);
            if let Some(m) = mask_leaf {
                scores = t.add(scores, m);
            }
            let weights = t.softmax_rows(scores);
            head_outputs.push(t.matmul(weights, vh));
        }
        let concat = t.hstack(&head_outputs);
        self.wo.forward(bind, concat)
    }
}

/// Pre-norm Transformer encoder layer: self-attention + position-wise FFN,
/// each with a residual connection.
#[derive(Clone, Debug)]
pub struct EncoderLayer {
    pub attn: MultiHeadAttention,
    pub norm1: LayerNorm,
    pub norm2: LayerNorm,
    pub ff1: Linear,
    pub ff2: Linear,
}

impl EncoderLayer {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        dim: usize,
        heads: usize,
        ff_dim: usize,
    ) -> EncoderLayer {
        EncoderLayer {
            attn: MultiHeadAttention::new(store, rng, &format!("{name}.attn"), dim, heads),
            norm1: LayerNorm::new(store, &format!("{name}.norm1"), dim),
            norm2: LayerNorm::new(store, &format!("{name}.norm2"), dim),
            ff1: Linear::new(store, rng, &format!("{name}.ff1"), dim, ff_dim),
            ff2: Linear::new(store, rng, &format!("{name}.ff2"), ff_dim, dim),
        }
    }

    pub fn forward(&self, bind: &Binding<'_>, x: Var) -> Var {
        let t = bind.tape();
        let a = self.attn.forward(
            bind,
            self.norm1.forward(bind, x),
            self.norm1.forward(bind, x),
            None,
        );
        let x = t.add(x, a);
        let n = self.norm2.forward(bind, x);
        let f = self.ff2.forward(bind, t.relu(self.ff1.forward(bind, n)));
        t.add(x, f)
    }
}

/// Pre-norm Transformer decoder layer: causal self-attention, cross
/// attention over the encoder memory, and the FFN — all residual.
#[derive(Clone, Debug)]
pub struct DecoderLayer {
    pub self_attn: MultiHeadAttention,
    pub cross_attn: MultiHeadAttention,
    pub norm1: LayerNorm,
    pub norm2: LayerNorm,
    pub norm3: LayerNorm,
    pub ff1: Linear,
    pub ff2: Linear,
}

impl DecoderLayer {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        dim: usize,
        heads: usize,
        ff_dim: usize,
    ) -> DecoderLayer {
        DecoderLayer {
            self_attn: MultiHeadAttention::new(store, rng, &format!("{name}.self"), dim, heads),
            cross_attn: MultiHeadAttention::new(store, rng, &format!("{name}.cross"), dim, heads),
            norm1: LayerNorm::new(store, &format!("{name}.norm1"), dim),
            norm2: LayerNorm::new(store, &format!("{name}.norm2"), dim),
            norm3: LayerNorm::new(store, &format!("{name}.norm3"), dim),
            ff1: Linear::new(store, rng, &format!("{name}.ff1"), dim, ff_dim),
            ff2: Linear::new(store, rng, &format!("{name}.ff2"), ff_dim, dim),
        }
    }

    /// `x`: decoder input `(Td, d)`; `memory`: encoder output `(Te, d)`.
    pub fn forward(&self, bind: &Binding<'_>, x: Var, memory: Var) -> Var {
        let t = bind.tape();
        let (td, _) = t.shape(x);
        let mask = causal_mask(td);
        let n1 = self.norm1.forward(bind, x);
        let a = self.self_attn.forward(bind, n1, n1, Some(&mask));
        let x = t.add(x, a);
        let n2 = self.norm2.forward(bind, x);
        let c = self.cross_attn.forward(bind, n2, memory, None);
        let x = t.add(x, c);
        let n3 = self.norm3.forward(bind, x);
        let f = self.ff2.forward(bind, t.relu(self.ff1.forward(bind, n3)));
        t.add(x, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rpf_autodiff::Tape;

    #[test]
    fn positional_encoding_is_bounded_and_distinct() {
        let pe = positional_encoding(20, 16);
        assert!(pe.as_slice().iter().all(|v| v.abs() <= 1.0));
        assert_ne!(pe.row(0), pe.row(7));
    }

    #[test]
    fn causal_mask_blocks_future() {
        let m = causal_mask(4);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(0, 3), -1e9);
        assert_eq!(m.get(3, 0), 0.0);
        assert_eq!(m.get(2, 3), -1e9);
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 8);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let x = tape.leaf(Matrix::from_fn(3, 8, |r, c| (r * 8 + c) as f32));
        let y = tape.value(ln.forward(&bind, x));
        for r in 0..3 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 8.0;
            let var: f32 = y
                .row(r)
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f32>()
                / 8.0;
            assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row {r} var {var}");
        }
    }

    #[test]
    fn attention_output_shape_and_grad() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(16);
        let mha = MultiHeadAttention::new(&mut store, &mut rng, "mha", 32, 8);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let x = tape.leaf(Matrix::from_fn(6, 32, |r, c| {
            ((r * 31 + c) % 7) as f32 / 7.0
        }));
        let y = mha.forward(&bind, x, x, None);
        assert_eq!(tape.shape(y), (6, 32));
        let loss = tape.sum(tape.square(y));
        let __g = bind.into_grads(loss);
        store.apply_grads(__g);
        assert!(store.grad(mha.wq.w).frob_norm() > 0.0);
        assert!(store.grad(mha.wo.w).frob_norm() > 0.0);
    }

    #[test]
    fn causal_attention_ignores_future_tokens() {
        // Changing a future token must not change earlier outputs.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(17);
        let mha = MultiHeadAttention::new(&mut store, &mut rng, "mha", 16, 4);
        let mask = causal_mask(5);

        let base = Matrix::from_fn(5, 16, |r, c| ((r + c) % 5) as f32 / 5.0);
        let mut modified = base.clone();
        for v in modified.row_mut(4) {
            *v += 10.0;
        }

        let run = |input: &Matrix| {
            let tape = Tape::new();
            let bind = Binding::new(&tape, &store);
            let x = tape.leaf(input.clone());
            let y = mha.forward(&bind, x, x, Some(&mask));
            tape.value(y)
        };
        let y1 = run(&base);
        let y2 = run(&modified);
        for r in 0..4 {
            for (a, b) in y1.row(r).iter().zip(y2.row(r)) {
                assert!((a - b).abs() < 1e-5, "row {r} leaked future info");
            }
        }
        // The final row (which may attend to itself) does change.
        assert!(y1
            .row(4)
            .iter()
            .zip(y2.row(4))
            .any(|(a, b)| (a - b).abs() > 1e-3));
    }

    #[test]
    fn encoder_decoder_layers_run_and_train() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(18);
        let enc = EncoderLayer::new(&mut store, &mut rng, "enc", 16, 4, 32);
        let dec = DecoderLayer::new(&mut store, &mut rng, "dec", 16, 4, 32);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let src = tape.leaf(Matrix::from_fn(7, 16, |r, c| ((r * c) % 3) as f32 / 3.0));
        let tgt = tape.leaf(Matrix::from_fn(4, 16, |r, c| {
            ((r + 2 * c) % 5) as f32 / 5.0
        }));
        let memory = enc.forward(&bind, src);
        let out = dec.forward(&bind, tgt, memory);
        assert_eq!(tape.shape(out), (4, 16));
        let loss = tape.mean(tape.square(out));
        let __g = bind.into_grads(loss);
        store.apply_grads(__g);
        assert!(store.grad(enc.attn.wq.w).frob_norm() > 0.0);
        assert!(store.grad(dec.cross_attn.wk.w).frob_norm() > 0.0);
    }
}
