//! Central parameter storage and the tape binding.
//!
//! Layers own [`ParamId`]s into a shared [`ParamStore`]; a [`Binding`] is
//! created per forward pass to lift parameter values onto the autodiff tape
//! (once each — repeated use of a parameter reuses the same tape leaf so
//! gradients accumulate correctly, which matters for the shared
//! encoder/decoder weights and for LSTM weights reused across time steps).

use rpf_autodiff::{Gradients, Tape, Var};
use rpf_tensor::{ops, Matrix};
use std::cell::RefCell;

/// Identifier of one parameter tensor in a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

/// Values + gradient accumulators for every parameter of a model.
///
/// `Clone` copies values, gradients and names — the model-lifecycle layer
/// clones a live store to fine-tune a candidate without touching the
/// weights a serving engine is reading.
#[derive(Clone)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Matrix>,
    grads: Vec<Matrix>,
}

impl Default for ParamStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ParamStore {
    pub fn new() -> Self {
        ParamStore {
            names: Vec::new(),
            values: Vec::new(),
            grads: Vec::new(),
        }
    }

    /// Register a parameter with an initial value.
    pub fn register(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let id = ParamId(self.values.len());
        self.grads.push(Matrix::zeros(value.rows(), value.cols()));
        self.values.push(value);
        self.names.push(name.into());
        id
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar parameters (the paper quotes <30K for RankNet).
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(|m| m.len()).sum()
    }

    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.grads[id.0]
    }

    /// Add `g` into the gradient accumulator of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Matrix) {
        ops::axpy(&mut self.grads[id.0], 1.0, g);
    }

    /// Accumulate a list of gradients produced by [`Binding::into_grads`].
    pub fn apply_grads(&mut self, grads: Vec<(ParamId, Matrix)>) {
        for (id, g) in &grads {
            self.accumulate_grad(*id, g);
        }
    }

    /// The raw value slice, for worker threads that build a
    /// [`Binding::over_values`].
    pub fn values(&self) -> &[Matrix] {
        &self.values
    }

    /// Zero every gradient accumulator.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            for v in g.as_mut_slice() {
                *v = 0.0;
            }
        }
    }

    /// Iterate `(id, value, grad)` triples — what the optimizer consumes.
    pub fn iter_ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// Apply `f(value, grad)` to every parameter (optimizer update).
    pub fn update_each(&mut self, mut f: impl FnMut(usize, &mut Matrix, &Matrix)) {
        for i in 0..self.values.len() {
            f(i, &mut self.values[i], &self.grads[i]);
        }
    }

    /// Global L2 norm of all gradients (for clipping).
    pub fn grad_norm(&self) -> f32 {
        self.grads
            .iter()
            .map(|g| g.as_slice().iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scale all gradients by `s` (clipping).
    pub fn scale_grads(&mut self, s: f32) {
        for g in &mut self.grads {
            for v in g.as_mut_slice() {
                *v *= s;
            }
        }
    }

    /// Snapshot all values (for early-stopping "best weights" restore).
    pub fn snapshot(&self) -> Vec<Matrix> {
        self.values.clone()
    }

    /// Restore values from a snapshot taken with [`ParamStore::snapshot`].
    pub fn restore(&mut self, snapshot: &[Matrix]) {
        assert_eq!(snapshot.len(), self.values.len(), "snapshot size mismatch");
        for (v, s) in self.values.iter_mut().zip(snapshot) {
            assert_eq!(v.shape(), s.shape(), "snapshot shape mismatch");
            *v = s.clone();
        }
    }
}

/// Per-forward-pass bridge between a [`ParamStore`] and a [`Tape`].
///
/// Lifts each referenced parameter onto the tape exactly once and remembers
/// the mapping so [`Binding::into_grads`] can hand tape gradients back to
/// the store (or into a detached buffer for shard-parallel training).
pub struct Binding<'a> {
    tape: &'a Tape,
    values: &'a [Matrix],
    bound: RefCell<Vec<Option<Var>>>,
}

impl<'a> Binding<'a> {
    /// Create a binding over the store's current values.
    pub fn new(tape: &'a Tape, store: &'a ParamStore) -> Self {
        Binding {
            tape,
            values: &store.values,
            bound: RefCell::new(vec![None; store.values.len()]),
        }
    }

    /// Create a binding directly over a value slice (used by worker threads
    /// that only have a shared reference to the values).
    pub fn over_values(tape: &'a Tape, values: &'a [Matrix]) -> Self {
        Binding {
            tape,
            values,
            bound: RefCell::new(vec![None; values.len()]),
        }
    }

    pub fn tape(&self) -> &'a Tape {
        self.tape
    }

    /// Tape node for parameter `id` (created on first use, cached after).
    pub fn var(&self, id: ParamId) -> Var {
        let mut bound = self.bound.borrow_mut();
        if let Some(v) = bound[id.0] {
            return v;
        }
        let v = self.tape.leaf(self.values[id.0].clone());
        bound[id.0] = Some(v);
        v
    }

    /// After `backward`, drain each bound parameter's gradient into `sink`.
    pub fn collect_grads(&self, grads: &mut Gradients) -> Vec<(ParamId, Matrix)> {
        let bound = self.bound.borrow();
        let mut out = Vec::new();
        for (i, v) in bound.iter().enumerate() {
            if let Some(var) = v {
                if let Some(g) = grads.take(*var) {
                    out.push((ParamId(i), g));
                }
            }
        }
        out
    }

    /// Run backward from `loss` and return the parameter gradients,
    /// consuming the binding (which releases its borrow of the store so the
    /// caller can then apply them with [`ParamStore::apply_grads`]).
    pub fn into_grads(self, loss: Var) -> Vec<(ParamId, Matrix)> {
        let mut grads = self.tape.backward(loss);
        self.collect_grads(&mut grads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::ones(2, 3));
        let b = store.register("b", Matrix::zeros(1, 3));
        assert_eq!(store.len(), 2);
        assert_eq!(store.num_scalars(), 9);
        assert_eq!(store.name(w), "w");
        assert_eq!(store.value(b).shape(), (1, 3));
    }

    #[test]
    fn binding_caches_leaves() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::ones(2, 2));
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let v1 = bind.var(w);
        let v2 = bind.var(w);
        assert_eq!(v1, v2);
        assert_eq!(tape.len(), 1);
    }

    #[test]
    fn grads_flow_back_to_store() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_vec(1, 2, vec![2.0, 3.0]));
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let wv = bind.var(w);
        let loss = tape.sum(tape.mul(wv, wv)); // d/dw = 2w
        let __g = bind.into_grads(loss);
        store.apply_grads(__g);
        assert_eq!(store.grad(w).as_slice(), &[4.0, 6.0]);
        // Accumulation on a second pass.
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let wv = bind.var(w);
        let loss = tape.sum(wv);
        let __g = bind.into_grads(loss);
        store.apply_grads(__g);
        assert_eq!(store.grad(w).as_slice(), &[5.0, 7.0]);
        store.zero_grads();
        assert_eq!(store.grad(w).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn grad_norm_and_scaling() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 2));
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let wv = bind.var(w);
        let t = tape.leaf(Matrix::from_vec(1, 2, vec![3.0, 4.0]));
        let loss = tape.sum(tape.mul(wv, t));
        let __g = bind.into_grads(loss);
        store.apply_grads(__g);
        assert!((store.grad_norm() - 5.0).abs() < 1e-6);
        store.scale_grads(0.5);
        assert!((store.grad_norm() - 2.5).abs() < 1e-6);
        let _ = w;
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::ones(2, 2));
        let snap = store.snapshot();
        store.value_mut(w).as_mut_slice()[0] = 99.0;
        assert_eq!(store.value(w).as_slice()[0], 99.0);
        store.restore(&snap);
        assert_eq!(store.value(w).as_slice()[0], 1.0);
    }
}

impl ParamStore {
    /// Export every parameter as `(name, value)` pairs for persistence.
    pub fn export(&self) -> Vec<(String, Matrix)> {
        self.names
            .iter()
            .cloned()
            .zip(self.values.iter().cloned())
            .collect()
    }

    /// Import values exported by [`ParamStore::export`] into a store with
    /// the *same architecture* (matched by name; shapes must agree). Values
    /// must be finite: a corrupted-but-parseable checkpoint with NaN or
    /// infinite weights is rejected here rather than silently poisoning
    /// every forecast downstream.
    pub fn import(&mut self, entries: &[(String, Matrix)]) -> Result<(), String> {
        for (name, value) in entries {
            let idx = self
                .names
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| format!("unknown parameter '{name}'"))?;
            if self.values[idx].shape() != value.shape() {
                return Err(format!(
                    "parameter '{name}' shape mismatch: {:?} vs {:?}",
                    self.values[idx].shape(),
                    value.shape()
                ));
            }
            if value.has_non_finite() {
                return Err(format!(
                    "parameter '{name}' contains non-finite values (corrupted checkpoint?)"
                ));
            }
            self.values[idx] = value.clone();
        }
        Ok(())
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;

    #[test]
    fn export_import_roundtrip() {
        let mut a = ParamStore::new();
        let w = a.register("w", Matrix::from_vec(1, 2, vec![1.5, -2.5]));
        let b = a.register("b", Matrix::from_vec(1, 1, vec![0.25]));
        let exported = a.export();

        let mut fresh = ParamStore::new();
        let w2 = fresh.register("w", Matrix::zeros(1, 2));
        let b2 = fresh.register("b", Matrix::zeros(1, 1));
        fresh.import(&exported).unwrap();
        assert_eq!(fresh.value(w2), a.value(w));
        assert_eq!(fresh.value(b2), a.value(b));
    }

    #[test]
    fn import_rejects_unknown_name() {
        let mut store = ParamStore::new();
        store.register("w", Matrix::zeros(1, 1));
        let err = store.import(&[("nope".to_string(), Matrix::zeros(1, 1))]);
        assert!(err.is_err());
    }

    #[test]
    fn import_rejects_shape_mismatch() {
        let mut store = ParamStore::new();
        store.register("w", Matrix::zeros(1, 2));
        let err = store.import(&[("w".to_string(), Matrix::zeros(2, 2))]);
        assert!(err.unwrap_err().contains("shape mismatch"));
    }

    #[test]
    fn import_rejects_non_finite_values() {
        let mut store = ParamStore::new();
        store.register("w", Matrix::zeros(1, 2));
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let err = store.import(&[("w".to_string(), Matrix::from_vec(1, 2, vec![1.0, bad]))]);
            assert!(err.unwrap_err().contains("non-finite"), "{bad} accepted");
        }
        // Untouched by the failed imports.
        assert_eq!(store.value(ParamId(0)).as_slice(), &[0.0, 0.0]);
    }
}
