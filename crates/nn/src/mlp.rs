//! Multilayer perceptron — the architecture of the paper's PitModel
//! (Fig 5b: "stacked Dense" layers with a probabilistic output).

use crate::linear::Linear;
use crate::params::{Binding, ParamStore};
use rand::rngs::StdRng;
use rpf_autodiff::Var;

/// Hidden-layer activation choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    Relu,
    Tanh,
}

/// A stack of dense layers with a fixed hidden activation. The final layer
/// is linear (heads apply their own link functions).
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use rpf_autodiff::Tape;
/// use rpf_nn::{mlp::Activation, Binding, Mlp, ParamStore};
/// use rpf_tensor::Matrix;
///
/// let mut store = ParamStore::new();
/// let mut rng = StdRng::seed_from_u64(0);
/// let net = Mlp::new(&mut store, &mut rng, "net", &[4, 8, 1], Activation::Relu);
///
/// let tape = Tape::new();
/// let bind = Binding::new(&tape, &store);
/// let x = tape.leaf(Matrix::ones(5, 4));
/// let y = net.forward(&bind, x);
/// assert_eq!(tape.shape(y), (5, 1));
/// ```
#[derive(Clone, Debug)]
pub struct Mlp {
    pub layers: Vec<Linear>,
    pub activation: Activation,
}

impl Mlp {
    /// `dims` is `[input, hidden..., output]`; at least one layer.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        dims: &[usize],
        activation: Activation,
    ) -> Mlp {
        assert!(dims.len() >= 2, "MLP needs at least input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, rng, &format!("{name}.fc{i}"), w[0], w[1]))
            .collect();
        Mlp { layers, activation }
    }

    pub fn out_dim(&self) -> usize {
        // The constructor guarantees at least one layer.
        self.layers.last().map_or(0, |l| l.out_dim)
    }

    /// Forward pass over a `(batch, input)` matrix.
    pub fn forward(&self, bind: &Binding<'_>, x: Var) -> Var {
        let t = bind.tape();
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(bind, h);
            if i < last {
                h = match self.activation {
                    Activation::Relu => t.relu(h),
                    Activation::Tanh => t.tanh(h),
                };
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rpf_autodiff::Tape;
    use rpf_tensor::Matrix;

    #[test]
    fn forward_shape() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(10);
        let mlp = Mlp::new(
            &mut store,
            &mut rng,
            "pit",
            &[6, 16, 16, 2],
            Activation::Relu,
        );
        assert_eq!(mlp.layers.len(), 3);
        assert_eq!(mlp.out_dim(), 2);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let x = tape.leaf(Matrix::ones(4, 6));
        let y = mlp.forward(&bind, x);
        assert_eq!(tape.shape(y), (4, 2));
    }

    #[test]
    fn can_fit_a_simple_function() {
        // Tiny sanity check: a 1-16-1 MLP trained by plain SGD fits y = 2x.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(11);
        let mlp = Mlp::new(&mut store, &mut rng, "f", &[1, 16, 1], Activation::Tanh);
        let xs = Matrix::from_fn(16, 1, |r, _| r as f32 / 8.0 - 1.0);
        let ys = rpf_tensor::ops::scale(&xs, 2.0);
        let mut last_loss = f32::MAX;
        for _ in 0..300 {
            store.zero_grads();
            let tape = Tape::new();
            let bind = Binding::new(&tape, &store);
            let x = tape.leaf(xs.clone());
            let t = tape.leaf(ys.clone());
            let pred = mlp.forward(&bind, x);
            let loss = tape.mean(tape.square(tape.sub(pred, t)));
            last_loss = tape.scalar(loss);
            let __g = bind.into_grads(loss);
            store.apply_grads(__g);
            store.update_each(|_, v, g| rpf_tensor::ops::axpy(v, -0.05, g));
        }
        assert!(last_loss < 0.01, "MLP failed to fit y=2x: loss {last_loss}");
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_single_dim() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(12);
        let _ = Mlp::new(&mut store, &mut rng, "bad", &[4], Activation::Relu);
    }
}

/// Inverted dropout as a tape operation: multiplies by a Bernoulli(1-p)
/// mask scaled by `1/(1-p)`, so the expected activation is unchanged.
///
/// Used for MC-dropout uncertainty (Gal & Ghahramani, one of the paper's
/// related-work threads): keep dropout active at inference and the spread
/// of repeated forward passes estimates model uncertainty.
pub fn dropout(
    bind: &crate::params::Binding<'_>,
    x: rpf_autodiff::Var,
    p: f32,
    rng: &mut rand::rngs::StdRng,
) -> rpf_autodiff::Var {
    assert!((0.0..1.0).contains(&p), "dropout rate must be in [0, 1)");
    if p == 0.0 {
        return x;
    }
    use rand::Rng;
    let t = bind.tape();
    let (rows, cols) = t.shape(x);
    let keep = 1.0 - p;
    let mask = rpf_tensor::Matrix::from_fn(rows, cols, |_, _| {
        if rng.gen::<f32>() < keep {
            1.0 / keep
        } else {
            0.0
        }
    });
    t.mul(x, t.leaf(mask))
}

#[cfg(test)]
mod dropout_tests {
    use super::*;
    use crate::params::{Binding, ParamStore};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rpf_autodiff::Tape;
    use rpf_tensor::Matrix;

    #[test]
    fn zero_rate_is_identity() {
        let store = ParamStore::new();
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let x = tape.leaf(Matrix::ones(2, 3));
        let mut rng = StdRng::seed_from_u64(1);
        let y = dropout(&bind, x, 0.0, &mut rng);
        assert_eq!(tape.value(y), tape.value(x));
    }

    #[test]
    fn expectation_is_preserved() {
        let store = ParamStore::new();
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let x = tape.leaf(Matrix::ones(1, 20_000));
        let mut rng = StdRng::seed_from_u64(2);
        let y = dropout(&bind, x, 0.3, &mut rng);
        let mean = tape.value(y).mean();
        assert!(
            (mean - 1.0).abs() < 0.02,
            "dropout should be unbiased, mean {mean}"
        );
    }

    #[test]
    fn mc_dropout_passes_differ() {
        let store = ParamStore::new();
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let x = tape.leaf(Matrix::ones(2, 8));
        let mut rng = StdRng::seed_from_u64(3);
        let a = tape.value(dropout(&bind, x, 0.5, &mut rng));
        let b = tape.value(dropout(&bind, x, 0.5, &mut rng));
        assert_ne!(a, b, "independent masks per pass");
    }

    #[test]
    fn gradients_flow_through_kept_units_only() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::ones(1, 4));
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let wv = bind.var(w);
        let mut rng = StdRng::seed_from_u64(4);
        let y = dropout(&bind, wv, 0.5, &mut rng);
        let loss = tape.sum(y);
        let g = bind.into_grads(loss);
        store.apply_grads(g);
        let grad = store.grad(w);
        // Each coordinate's grad is either 0 (dropped) or 1/keep (kept).
        for &gv in grad.as_slice() {
            assert!(gv == 0.0 || (gv - 2.0).abs() < 1e-6, "unexpected grad {gv}");
        }
    }

    #[test]
    #[should_panic(expected = "dropout rate")]
    fn rate_one_rejected() {
        let store = ParamStore::new();
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let x = tape.leaf(Matrix::ones(1, 1));
        let mut rng = StdRng::seed_from_u64(5);
        let _ = dropout(&bind, x, 1.0, &mut rng);
    }
}
