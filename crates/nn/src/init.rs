//! Weight initialization.

use rand::rngs::StdRng;
use rand::Rng;
use rpf_tensor::Matrix;

/// Glorot/Xavier uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. The standard choice for tanh/sigmoid
/// networks like the LSTM used here.
pub fn xavier_uniform(rng: &mut StdRng, fan_in: usize, fan_out: usize) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-a..a))
}

/// Small-scale normal initialization for embeddings.
pub fn normal_scaled(rng: &mut StdRng, rows: usize, cols: usize, std: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        // Box–Muller.
        let u1: f32 = rng.gen_range(1e-7..1.0f32);
        let u2: f32 = rng.gen();
        std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = xavier_uniform(&mut rng, 40, 160);
        let a = (6.0f32 / 200.0).sqrt();
        assert!(w.as_slice().iter().all(|&v| v.abs() <= a));
        // Not degenerate.
        assert!(w.as_slice().iter().any(|&v| v.abs() > a / 10.0));
    }

    #[test]
    fn normal_has_roughly_right_std() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = normal_scaled(&mut rng, 100, 100, 0.5);
        let mean = w.mean();
        let var = w
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / w.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.05, "std {}", var.sqrt());
    }
}
