//! Dense (fully-connected) layer.

use crate::init::xavier_uniform;
use crate::params::{Binding, ParamId, ParamStore};
use rand::rngs::StdRng;
use rpf_autodiff::Var;

/// `y = x W + b` with `W: (in, out)`, `b: (1, out)` broadcast over rows.
#[derive(Clone, Copy, Debug)]
pub struct Linear {
    pub w: ParamId,
    pub b: ParamId,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    /// Register a new layer's parameters in `store`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Linear {
        let w = store.register(format!("{name}.w"), xavier_uniform(rng, in_dim, out_dim));
        let b = store.register(format!("{name}.b"), rpf_tensor::Matrix::zeros(1, out_dim));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Forward pass: `x` is `(batch, in_dim)`.
    pub fn forward(&self, bind: &Binding<'_>, x: Var) -> Var {
        let t = bind.tape();
        debug_assert_eq!(t.shape(x).1, self.in_dim, "Linear input width mismatch");
        let wx = t.matmul(x, bind.var(self.w));
        t.add_row(wx, bind.var(self.b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rpf_autodiff::Tape;
    use rpf_tensor::Matrix;

    #[test]
    fn forward_shapes_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let lin = Linear::new(&mut store, &mut rng, "l", 4, 2);
        // Make the weights known.
        *store.value_mut(lin.w) = Matrix::zeros(4, 2);
        *store.value_mut(lin.b) = Matrix::from_vec(1, 2, vec![5.0, -1.0]);

        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let x = tape.leaf(Matrix::ones(3, 4));
        let y = lin.forward(&bind, x);
        assert_eq!(tape.shape(y), (3, 2));
        let v = tape.value(y);
        for r in 0..3 {
            assert_eq!(v.row(r), &[5.0, -1.0]);
        }
    }

    #[test]
    fn gradient_reaches_both_params() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let lin = Linear::new(&mut store, &mut rng, "l", 3, 2);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let x = tape.leaf(Matrix::ones(5, 3));
        let y = lin.forward(&bind, x);
        let loss = tape.sum(tape.square(y));
        let __g = bind.into_grads(loss);
        store.apply_grads(__g);
        assert!(store.grad(lin.w).frob_norm() > 0.0);
        assert!(store.grad(lin.b).frob_norm() > 0.0);
    }

    #[test]
    fn registered_names_are_qualified() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let lin = Linear::new(&mut store, &mut rng, "head.mu", 3, 1);
        assert_eq!(store.name(lin.w), "head.mu.w");
        assert_eq!(store.name(lin.b), "head.mu.b");
    }
}
