//! Categorical embedding (the paper embeds `CarId`, §III-C).

use crate::init::normal_scaled;
use crate::params::{Binding, ParamId, ParamStore};
use rand::rngs::StdRng;
use rpf_autodiff::Var;

/// A `(vocab, dim)` table; forward gathers one row per index.
#[derive(Clone, Copy, Debug)]
pub struct Embedding {
    pub table: ParamId,
    pub vocab: usize,
    pub dim: usize,
}

impl Embedding {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        vocab: usize,
        dim: usize,
    ) -> Embedding {
        let table = store.register(format!("{name}.table"), normal_scaled(rng, vocab, dim, 0.1));
        Embedding { table, vocab, dim }
    }

    /// Look up `indices`, producing a `(indices.len(), dim)` output.
    pub fn forward(&self, bind: &Binding<'_>, indices: &[usize]) -> Var {
        debug_assert!(
            indices.iter().all(|&i| i < self.vocab),
            "embedding index out of vocab"
        );
        bind.tape().gather_rows(bind.var(self.table), indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rpf_autodiff::Tape;
    use rpf_tensor::Matrix;

    #[test]
    fn lookup_rows() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(6);
        let emb = Embedding::new(&mut store, &mut rng, "car", 5, 3);
        *store.value_mut(emb.table) = Matrix::from_fn(5, 3, |r, _| r as f32);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let out = emb.forward(&bind, &[4, 0, 4]);
        let v = tape.value(out);
        assert_eq!(v.row(0), &[4.0, 4.0, 4.0]);
        assert_eq!(v.row(1), &[0.0, 0.0, 0.0]);
        assert_eq!(v.row(2), &[4.0, 4.0, 4.0]);
    }

    #[test]
    fn repeated_indices_accumulate_grads() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let emb = Embedding::new(&mut store, &mut rng, "car", 3, 2);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let out = emb.forward(&bind, &[1, 1]);
        let loss = tape.sum(out);
        let __g = bind.into_grads(loss);
        store.apply_grads(__g);
        let g = store.grad(emb.table);
        assert_eq!(g.row(0), &[0.0, 0.0]);
        assert_eq!(g.row(1), &[2.0, 2.0]); // used twice
        assert_eq!(g.row(2), &[0.0, 0.0]);
    }
}
