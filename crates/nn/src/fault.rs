//! Deterministic fault injection (behind the `fault-inject` feature).
//!
//! Robustness code that is never executed is hope, not engineering. This
//! module lets tests *plan* faults at exact, reproducible points — "the loss
//! of batch 3 is NaN", "decoder trajectory row 7 is poisoned" — and have the
//! production code paths hit them for real. Plans are keyed by counters the
//! caller already owns (batch index, global trajectory row), never by wall
//! clock or thread schedule, so an injected fault fires at the same place on
//! every run and on every thread count.
//!
//! The hooks compile to nothing without the feature: `train` and the decoder
//! call [`corrupt_loss`] / [`poison_decoder_sample`] only under
//! `#[cfg(feature = "fault-inject")]`.
//!
//! File-corruption helpers ([`truncate_file`], [`flip_byte`]) are plain
//! utilities for checkpoint-corruption tests; they don't consult the plan.

use std::collections::BTreeSet;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Mutex;

/// A reproducible set of faults to inject, keyed by deterministic counters.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    nan_loss_batches: BTreeSet<u64>,
    poisoned_decoder_rows: BTreeSet<u64>,
}

impl FaultPlan {
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Poison the training loss of global batch `k` (counted across epochs
    /// and retries) to NaN.
    pub fn nan_loss_at_batch(mut self, k: u64) -> FaultPlan {
        self.nan_loss_batches.insert(k);
        self
    }

    /// Poison every draw of decoder trajectory row `row` (the stable global
    /// row index `car_slot * n_samples + sample`) to NaN.
    pub fn poison_decoder_row(mut self, row: u64) -> FaultPlan {
        self.poisoned_decoder_rows.insert(row);
        self
    }
}

static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

fn with_plan<T>(f: impl FnOnce(Option<&FaultPlan>) -> T) -> T {
    // A test that panicked while holding the lock must not take every later
    // test down with it: recover the (plain-data) plan from the poison.
    let guard = match PLAN.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    f(guard.as_ref())
}

/// Install `plan` for the whole process. Tests sharing a binary must
/// serialize themselves around this global (take a shared test mutex).
pub fn install(plan: FaultPlan) {
    let mut guard = match PLAN.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    *guard = Some(plan);
}

/// Remove any installed plan; subsequent hooks pass values through.
pub fn clear() {
    let mut guard = match PLAN.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    *guard = None;
}

/// Training-loop hook: returns NaN if the plan poisons global batch
/// `batch`, otherwise passes `loss` through.
pub fn corrupt_loss(batch: u64, loss: f32) -> f32 {
    with_plan(|p| match p {
        Some(plan) if plan.nan_loss_batches.contains(&batch) => f32::NAN,
        _ => loss,
    })
}

/// Decoder hook: returns NaN if the plan poisons trajectory `row`,
/// otherwise passes the drawn value through.
pub fn poison_decoder_sample(row: u64, value: f32) -> f32 {
    with_plan(|p| match p {
        Some(plan) if plan.poisoned_decoder_rows.contains(&row) => f32::NAN,
        _ => value,
    })
}

/// Truncate the file at `path` to its first `keep_bytes` bytes — a torn
/// (partially written) checkpoint.
pub fn truncate_file(path: impl AsRef<Path>, keep_bytes: u64) -> std::io::Result<()> {
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(keep_bytes)?;
    f.sync_all()
}

/// XOR the byte at `offset` with `mask` — a single-bit (or few-bit) flip of
/// an on-disk checkpoint.
pub fn flip_byte(path: impl AsRef<Path>, offset: u64, mask: u8) -> std::io::Result<()> {
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)?;
    let mut byte = [0u8; 1];
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(&mut byte)?;
    byte[0] ^= mask;
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(&byte)?;
    f.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The plan is process-global; these tests all touch it, so they share
    // one lock to stay order-independent.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        match TEST_LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn hooks_pass_through_without_a_plan() {
        let _g = locked();
        clear();
        assert_eq!(corrupt_loss(3, 1.25), 1.25);
        assert_eq!(poison_decoder_sample(7, -0.5), -0.5);
    }

    #[test]
    fn planned_faults_fire_exactly_on_their_counter() {
        let _g = locked();
        install(FaultPlan::new().nan_loss_at_batch(2).poison_decoder_row(5));
        assert_eq!(corrupt_loss(1, 0.5), 0.5);
        assert!(corrupt_loss(2, 0.5).is_nan());
        assert_eq!(poison_decoder_sample(4, 1.0), 1.0);
        assert!(poison_decoder_sample(5, 1.0).is_nan());
        clear();
        assert!(corrupt_loss(2, 0.5).is_finite());
    }

    #[test]
    fn file_corruption_helpers_modify_bytes() {
        let _g = locked();
        let dir = std::env::temp_dir().join("rpf_fault_helpers");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("victim.json");
        std::fs::write(&path, b"0123456789").expect("write");
        flip_byte(&path, 3, 0xFF).expect("flip");
        let flipped = std::fs::read(&path).expect("read");
        assert_eq!(flipped[3], b'3' ^ 0xFF);
        truncate_file(&path, 4).expect("truncate");
        assert_eq!(std::fs::read(&path).expect("read").len(), 4);
        std::fs::remove_file(&path).ok();
    }
}
