//! Tape-free inference runtime: lean forward-only mirrors of the layers.
//!
//! Training needs the autodiff tape; serving does not. The Monte-Carlo
//! forecast path (100 sampled trajectories, each stepping the decoder
//! autoregressively) is pure forward computation, yet running it through
//! [`Binding`](crate::params::Binding)/`Tape` pays, per step: one clone of
//! every weight matrix onto the tape, node bookkeeping for each op, and a
//! clone of every output back off the tape. The `Infer*` structs here are
//! built by a **one-shot conversion** from a trained [`ParamStore`]
//! (weights cloned once, at conversion time) and then step on caller-owned
//! scratch buffers — zero per-step allocation after the first step warms
//! the buffers up.
//!
//! # Parity guarantee
//!
//! Every forward below computes each output element with the *same
//! per-element arithmetic order* as the corresponding tape forward, even
//! where the serving kernels tile or fuse differently: `matmul_into`
//! accumulates over ascending `k` with separate mul/add (Rust never
//! contracts them into FMAs) and preserves the zero-skip, the fused
//! gate/state kernels apply the same scalar chain per element as the
//! unfused tape ops, and both backends share the single `sigmoid`/`tanh`
//! definition in `rpf_tensor::scalar`. Only the order *across* elements
//! changes, which no element observes — so the results are
//! **bit-identical** to the tape path, pinned by
//! `crates/nn/tests/infer_parity.rs` and the engine-level determinism
//! suite in `crates/core`.

use crate::attention::{causal_mask, DecoderLayer, EncoderLayer, LayerNorm, MultiHeadAttention};
use crate::embedding::Embedding;
use crate::gaussian::{GaussianHead, SIGMA_FLOOR};
use crate::linear::Linear;
use crate::lstm::{LstmCell, StackedLstm};
use crate::mlp::{Activation, Mlp};
use crate::params::ParamStore;
use rpf_tensor::batched::{dual_affine_into, lstm_step_fused_batched};
use rpf_tensor::matmul::{matmul, matmul_into};
use rpf_tensor::{ops, Matrix};

/// Forward-only dense layer: concrete `W` and `b`, no tape.
#[derive(Clone, Debug)]
pub struct InferLinear {
    pub w: Matrix,
    pub b: Matrix,
}

impl InferLinear {
    /// One-shot conversion from a trained layer (clones the weights once).
    pub fn from_store(store: &ParamStore, lin: &Linear) -> InferLinear {
        InferLinear {
            w: store.value(lin.w).clone(),
            b: store.value(lin.b).clone(),
        }
    }

    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// `out = x W + b` into a reusable buffer (allocation-free once warm).
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        matmul_into(x, &self.w, out);
        ops::add_row_assign(out, &self.b);
    }

    /// Allocating forward for callers without a scratch buffer.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        ops::add_row(&matmul(x, &self.w), &self.b)
    }
}

/// Reusable pre-activation buffers shared by every LSTM layer in a stack.
#[derive(Clone, Debug)]
pub struct LstmScratch {
    gates: Matrix,
    gh: Matrix,
}

impl LstmScratch {
    pub fn new() -> LstmScratch {
        LstmScratch {
            gates: Matrix::zeros(0, 0),
            gh: Matrix::zeros(0, 0),
        }
    }
}

impl Default for LstmScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Pre-activation buffer for the batched lock-step decode path
/// ([`InferStackedLstm::step_batch`]). Caller-owned like [`LstmScratch`]
/// and allocation-free once warm; kept as a distinct type so a call site
/// can hold both backends' scratch without the buffers thrashing each
/// other's shapes. `gates` holds only a `4 × 4·hidden` tile: the fused
/// step kernel ([`lstm_step_fused_batched`]) runs GEMM, activation, and
/// state update tile-by-tile, so the batch-sized pre-activation block is
/// never materialised.
#[derive(Clone, Debug)]
pub struct BatchScratch {
    gates: Matrix,
}

impl BatchScratch {
    pub fn new() -> BatchScratch {
        BatchScratch {
            gates: Matrix::zeros(0, 0),
        }
    }
}

impl Default for BatchScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Forward-only LSTM cell. Gate layout `[i f g o]`, matching
/// [`LstmCell`](crate::lstm::LstmCell).
#[derive(Clone, Debug)]
pub struct InferLstmCell {
    pub w_ih: Matrix,
    pub w_hh: Matrix,
    pub bias: Matrix,
    pub input_dim: usize,
    pub hidden_dim: usize,
}

impl InferLstmCell {
    pub fn from_store(store: &ParamStore, cell: &LstmCell) -> InferLstmCell {
        InferLstmCell {
            w_ih: store.value(cell.w_ih).clone(),
            w_hh: store.value(cell.w_hh).clone(),
            bias: store.value(cell.bias).clone(),
            input_dim: cell.input_dim,
            hidden_dim: cell.hidden_dim,
        }
    }

    /// One time step, updating `h` and `c` in place. Per element the math is
    /// the tape's op sequence exactly — matmul, matmul, add, broadcast-add,
    /// gate activations, state update — so the new state is bit-identical to
    /// [`LstmCell::step`](crate::lstm::LstmCell::step); the adds, bias
    /// broadcast, and activations are collapsed into one buffer sweep
    /// ([`ops::lstm_gates_fused`]), which elementwise ops permit without
    /// changing any value.
    pub fn step(&self, x: &Matrix, h: &mut Matrix, c: &mut Matrix, scratch: &mut LstmScratch) {
        let LstmScratch { gates, gh } = scratch;
        matmul_into(x, &self.w_ih, gates);
        matmul_into(h, &self.w_hh, gh);
        ops::lstm_gates_fused(gates, gh, &self.bias, self.hidden_dim);
        ops::lstm_state_update(gates, c, h, self.hidden_dim);
    }

    /// Batched lock-step variant of [`InferLstmCell::step`] on the FMA /
    /// fast-activation kernels (`rpf_tensor::batched`). Not bit-identical
    /// to the tape — within a few ulps per element — but row-independent
    /// and bit-deterministic for a fixed batch layout; see the batched
    /// decode tolerance contract in `DESIGN.md` §13.
    pub fn step_batch(
        &self,
        x: &Matrix,
        h: &mut Matrix,
        c: &mut Matrix,
        scratch: &mut BatchScratch,
    ) {
        let BatchScratch { gates } = scratch;
        lstm_step_fused_batched(
            x,
            &self.w_ih,
            &self.w_hh,
            &self.bias,
            h,
            c,
            self.hidden_dim,
            gates,
        );
    }
}

/// Forward-only stack of LSTM layers; layer `k` feeds layer `k+1` its new
/// hidden output within the same time step, like
/// [`StackedLstm`](crate::lstm::StackedLstm).
#[derive(Clone, Debug)]
pub struct InferStackedLstm {
    pub layers: Vec<InferLstmCell>,
}

impl InferStackedLstm {
    pub fn from_store(store: &ParamStore, stack: &StackedLstm) -> InferStackedLstm {
        InferStackedLstm {
            layers: stack
                .layers
                .iter()
                .map(|c| InferLstmCell::from_store(store, c))
                .collect(),
        }
    }

    pub fn hidden_dim(&self) -> usize {
        self.layers[0].hidden_dim
    }

    /// Concrete zero `(h, c)` state per layer for a batch.
    pub fn zero_state(&self, batch: usize) -> Vec<(Matrix, Matrix)> {
        self.layers
            .iter()
            .map(|l| {
                (
                    Matrix::zeros(batch, l.hidden_dim),
                    Matrix::zeros(batch, l.hidden_dim),
                )
            })
            .collect()
    }

    /// One time step through the full stack, updating every layer's state in
    /// place; the top layer's hidden output is `states.last().0` afterwards.
    pub fn step(&self, x: &Matrix, states: &mut [(Matrix, Matrix)], scratch: &mut LstmScratch) {
        assert_eq!(states.len(), self.layers.len(), "state count mismatch");
        {
            let (h, c) = &mut states[0];
            self.layers[0].step(x, h, c, scratch);
        }
        for l in 1..self.layers.len() {
            let (prev, rest) = states.split_at_mut(l);
            let (h, c) = &mut rest[0];
            self.layers[l].step(&prev[l - 1].0, h, c, scratch);
        }
    }

    /// Batched lock-step mirror of [`InferStackedLstm::step`] on a
    /// caller-owned [`BatchScratch`] — zero per-step allocation once the
    /// scratch is warm. Same stacking semantics; kernels are the
    /// tolerance-pinned `rpf_tensor::batched` set.
    pub fn step_batch(
        &self,
        x: &Matrix,
        states: &mut [(Matrix, Matrix)],
        scratch: &mut BatchScratch,
    ) {
        assert_eq!(states.len(), self.layers.len(), "state count mismatch");
        {
            let (h, c) = &mut states[0];
            self.layers[0].step_batch(x, h, c, scratch);
        }
        for l in 1..self.layers.len() {
            let (prev, rest) = states.split_at_mut(l);
            let (h, c) = &mut rest[0];
            self.layers[l].step_batch(&prev[l - 1].0, h, c, scratch);
        }
    }
}

/// Ping-pong buffers for [`InferMlp::forward_into`].
#[derive(Clone, Debug)]
pub struct MlpScratch {
    a: Matrix,
    b: Matrix,
}

impl MlpScratch {
    pub fn new() -> MlpScratch {
        MlpScratch {
            a: Matrix::zeros(0, 0),
            b: Matrix::zeros(0, 0),
        }
    }
}

impl Default for MlpScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Forward-only MLP with the hidden activation applied in place.
#[derive(Clone, Debug)]
pub struct InferMlp {
    pub layers: Vec<InferLinear>,
    pub activation: Activation,
}

impl InferMlp {
    pub fn from_store(store: &ParamStore, mlp: &Mlp) -> InferMlp {
        InferMlp {
            layers: mlp
                .layers
                .iter()
                .map(|l| InferLinear::from_store(store, l))
                .collect(),
            activation: mlp.activation,
        }
    }

    fn activate(&self, m: &mut Matrix) {
        match self.activation {
            Activation::Relu => ops::relu_assign(m),
            Activation::Tanh => ops::tanh_assign(m),
        }
    }

    /// Forward pass into `out`, alternating between the two scratch buffers
    /// for the hidden layers (the final layer is linear, like the tape path).
    pub fn forward_into(&self, x: &Matrix, scratch: &mut MlpScratch, out: &mut Matrix) {
        let n = self.layers.len();
        if n == 1 {
            self.layers[0].forward_into(x, out);
            return;
        }
        self.layers[0].forward_into(x, &mut scratch.a);
        self.activate(&mut scratch.a);
        for i in 1..n - 1 {
            if i % 2 == 1 {
                self.layers[i].forward_into(&scratch.a, &mut scratch.b);
                self.activate(&mut scratch.b);
            } else {
                self.layers[i].forward_into(&scratch.b, &mut scratch.a);
                self.activate(&mut scratch.a);
            }
        }
        let src = if (n - 1) % 2 == 1 {
            &scratch.a
        } else {
            &scratch.b
        };
        self.layers[n - 1].forward_into(src, out);
    }
}

/// Forward-only Gaussian head: `µ = W_µ h + b_µ`,
/// `σ = softplus(W_σ h + b_σ) + SIGMA_FLOOR` — the same `softplus` kernel
/// (threshold form) the tape uses, so sigma is bit-identical.
#[derive(Clone, Debug)]
pub struct InferGaussianHead {
    pub mu: InferLinear,
    pub sigma: InferLinear,
}

impl InferGaussianHead {
    pub fn from_store(store: &ParamStore, head: &GaussianHead) -> InferGaussianHead {
        InferGaussianHead {
            mu: InferLinear::from_store(store, &head.mu),
            sigma: InferLinear::from_store(store, &head.sigma),
        }
    }

    /// `h` is `(batch, hidden)`; fills `(batch, 1)` `mu_out` / `sigma_out`.
    pub fn forward_into(&self, h: &Matrix, mu_out: &mut Matrix, sigma_out: &mut Matrix) {
        // The head's constituent kernels (two GEMVs, softplus, floor add)
        // profile as one `gaussian_head` row in the operator breakdown.
        let _scope = rpf_obs::ops::class_scope(rpf_obs::ops::OpClass::GaussianHead);
        self.mu.forward_into(h, mu_out);
        self.sigma.forward_into(h, sigma_out);
        ops::softplus_assign(sigma_out);
        ops::add_scalar_assign(sigma_out, SIGMA_FLOOR);
    }

    /// Batched mirror of [`InferGaussianHead::forward_into`] for the
    /// lock-step decode backend: the mu/sigma projections run as one fused
    /// pass over the `(batch, hidden)` block (`dual_affine_into`) instead
    /// of two `n == 1` GEMVs, then the same softplus + floor sweeps. Within
    /// a few ulps of the tape head; row-independent, so each row's output
    /// is invariant to the rest of the batch.
    pub fn forward_batch(&self, h: &Matrix, mu_out: &mut Matrix, sigma_out: &mut Matrix) {
        let _scope = rpf_obs::ops::class_scope(rpf_obs::ops::OpClass::GaussianHead);
        dual_affine_into(
            h,
            &self.mu.w,
            self.mu.b.as_slice()[0],
            &self.sigma.w,
            self.sigma.b.as_slice()[0],
            mu_out,
            sigma_out,
        );
        ops::softplus_assign(sigma_out);
        ops::add_scalar_assign(sigma_out, SIGMA_FLOOR);
    }
}

/// Forward-only embedding: a concrete table with row gather.
#[derive(Clone, Debug)]
pub struct InferEmbedding {
    pub table: Matrix,
    pub vocab: usize,
    pub dim: usize,
}

impl InferEmbedding {
    pub fn from_store(store: &ParamStore, emb: &Embedding) -> InferEmbedding {
        InferEmbedding {
            table: store.value(emb.table).clone(),
            vocab: emb.vocab,
            dim: emb.dim,
        }
    }

    /// Look up `indices`, producing a `(indices.len(), dim)` output.
    pub fn forward(&self, indices: &[usize]) -> Matrix {
        debug_assert!(
            indices.iter().all(|&i| i < self.vocab),
            "embedding index out of vocab"
        );
        self.table.gather_rows(indices)
    }

    /// Borrow the embedding row for one index (no copy).
    pub fn row(&self, index: usize) -> &[f32] {
        self.table.row(index)
    }
}

// ---------------------------------------------------------------------------
// Transformer inference layers.
//
// The Transformer serving path rebuilds the decoder stack over the whole
// accumulated prefix each step, so what dominates is not scratch reuse but
// dropping the tape: no node bookkeeping, no per-op weight clones. These
// forwards allocate their outputs but call the same `rpf_tensor` kernels in
// the tape's op order, preserving bit parity.
// ---------------------------------------------------------------------------

/// Elementwise division in the tape's evaluation order (`clone` then `/=`),
/// kept private so the accounting story stays with the tape's.
fn div_elem(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = a.clone();
    for (o, &x) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o /= x;
    }
    out
}

/// Forward-only layer norm mirroring
/// [`LayerNorm::forward`](crate::attention::LayerNorm::forward)'s
/// ones-matmul mean/variance formulation kernel for kernel.
#[derive(Clone, Debug)]
pub struct InferLayerNorm {
    pub gamma: Matrix,
    pub beta: Matrix,
    pub dim: usize,
}

impl InferLayerNorm {
    pub fn from_store(store: &ParamStore, ln: &LayerNorm) -> InferLayerNorm {
        InferLayerNorm {
            gamma: store.value(ln.gamma).clone(),
            beta: store.value(ln.beta).clone(),
            dim: ln.dim,
        }
    }

    pub fn forward(&self, x: &Matrix) -> Matrix {
        let (rows, d) = x.shape();
        debug_assert_eq!(d, self.dim);
        let inv_d = 1.0 / d as f32;
        let ones_col = Matrix::ones(d, 1);
        let ones_row = Matrix::ones(1, d);
        let mean = ops::scale(&matmul(x, &ones_col), inv_d);
        let mean_bc = matmul(&mean, &ones_row);
        let centered = ops::sub(x, &mean_bc);
        let var = ops::scale(&matmul(&ops::map(&centered, |v| v * v), &ones_col), inv_d);
        let sd = ops::map(&ops::add_scalar(&var, 1e-5), f32::sqrt);
        let sd_bc = matmul(&sd, &ones_row);
        let normed = div_elem(&centered, &sd_bc);
        let ones_rows = Matrix::ones(rows, 1);
        let gamma_bc = matmul(&ones_rows, &self.gamma);
        ops::add_row(&ops::mul(&normed, &gamma_bc), &self.beta)
    }
}

/// Forward-only multi-head attention, one sequence at a time.
#[derive(Clone, Debug)]
pub struct InferMha {
    pub wq: InferLinear,
    pub wk: InferLinear,
    pub wv: InferLinear,
    pub wo: InferLinear,
    pub heads: usize,
    pub dim: usize,
}

impl InferMha {
    pub fn from_store(store: &ParamStore, mha: &MultiHeadAttention) -> InferMha {
        InferMha {
            wq: InferLinear::from_store(store, &mha.wq),
            wk: InferLinear::from_store(store, &mha.wk),
            wv: InferLinear::from_store(store, &mha.wv),
            wo: InferLinear::from_store(store, &mha.wo),
            heads: mha.heads,
            dim: mha.dim,
        }
    }

    pub fn forward(&self, query: &Matrix, context: &Matrix, mask: Option<&Matrix>) -> Matrix {
        let dh = self.dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let q = self.wq.forward(query);
        let k = self.wk.forward(context);
        let v = self.wv.forward(context);
        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let (lo, hi) = (h * dh, (h + 1) * dh);
            let qh = q.slice_cols(lo, hi);
            let kh = k.slice_cols(lo, hi);
            let vh = v.slice_cols(lo, hi);
            let mut scores = ops::scale(&matmul(&qh, &kh.transpose()), scale);
            if let Some(m) = mask {
                scores = ops::add(&scores, m);
            }
            let weights = ops::softmax_rows(&scores);
            head_outputs.push(matmul(&weights, &vh));
        }
        let refs: Vec<&Matrix> = head_outputs.iter().collect();
        self.wo.forward(&Matrix::hstack(&refs))
    }
}

/// Forward-only pre-norm encoder layer.
#[derive(Clone, Debug)]
pub struct InferEncoderLayer {
    pub attn: InferMha,
    pub norm1: InferLayerNorm,
    pub norm2: InferLayerNorm,
    pub ff1: InferLinear,
    pub ff2: InferLinear,
}

impl InferEncoderLayer {
    pub fn from_store(store: &ParamStore, enc: &EncoderLayer) -> InferEncoderLayer {
        InferEncoderLayer {
            attn: InferMha::from_store(store, &enc.attn),
            norm1: InferLayerNorm::from_store(store, &enc.norm1),
            norm2: InferLayerNorm::from_store(store, &enc.norm2),
            ff1: InferLinear::from_store(store, &enc.ff1),
            ff2: InferLinear::from_store(store, &enc.ff2),
        }
    }

    pub fn forward(&self, x: &Matrix) -> Matrix {
        let n1 = self.norm1.forward(x);
        let a = self.attn.forward(&n1, &n1, None);
        let x = ops::add(x, &a);
        let n = self.norm2.forward(&x);
        let f = self.ff2.forward(&ops::relu(&self.ff1.forward(&n)));
        ops::add(&x, &f)
    }
}

/// Forward-only pre-norm decoder layer (causal self-attention + cross
/// attention over the encoder memory + FFN, all residual).
#[derive(Clone, Debug)]
pub struct InferDecoderLayer {
    pub self_attn: InferMha,
    pub cross_attn: InferMha,
    pub norm1: InferLayerNorm,
    pub norm2: InferLayerNorm,
    pub norm3: InferLayerNorm,
    pub ff1: InferLinear,
    pub ff2: InferLinear,
}

impl InferDecoderLayer {
    pub fn from_store(store: &ParamStore, dec: &DecoderLayer) -> InferDecoderLayer {
        InferDecoderLayer {
            self_attn: InferMha::from_store(store, &dec.self_attn),
            cross_attn: InferMha::from_store(store, &dec.cross_attn),
            norm1: InferLayerNorm::from_store(store, &dec.norm1),
            norm2: InferLayerNorm::from_store(store, &dec.norm2),
            norm3: InferLayerNorm::from_store(store, &dec.norm3),
            ff1: InferLinear::from_store(store, &dec.ff1),
            ff2: InferLinear::from_store(store, &dec.ff2),
        }
    }

    pub fn forward(&self, x: &Matrix, memory: &Matrix) -> Matrix {
        let td = x.rows();
        let mask = causal_mask(td);
        let n1 = self.norm1.forward(x);
        let a = self.self_attn.forward(&n1, &n1, Some(&mask));
        let x = ops::add(x, &a);
        let n2 = self.norm2.forward(&x);
        let c = self.cross_attn.forward(&n2, memory, None);
        let x = ops::add(&x, &c);
        let n3 = self.norm3.forward(&x);
        let f = self.ff2.forward(&ops::relu(&self.ff1.forward(&n3)));
        ops::add(&x, &f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Binding;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rpf_autodiff::Tape;

    fn ramp(rows: usize, cols: usize, scale_by: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| ((r * cols + c) as f32 - 5.0) * scale_by)
    }

    fn assert_bits_eq(a: &Matrix, b: &Matrix) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
    }

    #[test]
    fn linear_matches_tape_bitwise() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(30);
        let lin = Linear::new(&mut store, &mut rng, "l", 6, 3);
        let x = ramp(4, 6, 0.17);

        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let y_tape = tape.value(lin.forward(&bind, tape.leaf(x.clone())));

        let inf = InferLinear::from_store(&store, &lin);
        let mut out = Matrix::zeros(0, 0);
        inf.forward_into(&x, &mut out);
        assert_bits_eq(&out, &y_tape);
        assert_bits_eq(&inf.forward(&x), &y_tape);
    }

    #[test]
    fn stacked_lstm_steps_match_tape_bitwise() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(31);
        let stack = StackedLstm::new(&mut store, &mut rng, "enc", 5, 4, 2);

        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let mut tape_states = stack.zero_state(&bind, 3);

        let inf = InferStackedLstm::from_store(&store, &stack);
        let mut states = inf.zero_state(3);
        let mut scratch = LstmScratch::new();

        for step in 0..4 {
            let x = ramp(3, 5, 0.1 * (step as f32 + 1.0));
            let (_, new_states) = stack.step(&bind, tape.leaf(x.clone()), &tape_states);
            tape_states = new_states;
            inf.step(&x, &mut states, &mut scratch);
            for (l, s) in tape_states.iter().enumerate() {
                assert_bits_eq(&states[l].0, &tape.value(s.h));
                assert_bits_eq(&states[l].1, &tape.value(s.c));
            }
        }
    }

    #[test]
    fn mlp_matches_tape_bitwise() {
        for (dims, act) in [
            (vec![2usize, 16, 16, 1], Activation::Relu),
            (vec![3, 8, 2], Activation::Tanh),
            (vec![4, 2], Activation::Relu),
        ] {
            let mut store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(32);
            let mlp = Mlp::new(&mut store, &mut rng, "m", &dims, act);
            let x = ramp(5, dims[0], 0.23);

            let tape = Tape::new();
            let bind = Binding::new(&tape, &store);
            let y_tape = tape.value(mlp.forward(&bind, tape.leaf(x.clone())));

            let inf = InferMlp::from_store(&store, &mlp);
            let mut scratch = MlpScratch::new();
            let mut out = Matrix::zeros(0, 0);
            inf.forward_into(&x, &mut scratch, &mut out);
            assert_bits_eq(&out, &y_tape);
        }
    }

    #[test]
    fn gaussian_head_matches_tape_bitwise() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(33);
        let head = GaussianHead::new(&mut store, &mut rng, "h", 7);
        let h = ramp(6, 7, 0.31);

        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let p = head.forward(&bind, tape.leaf(h.clone()));
        let mu_tape = tape.value(p.mu);
        let sigma_tape = tape.value(p.sigma);

        let inf = InferGaussianHead::from_store(&store, &head);
        let mut mu = Matrix::zeros(0, 0);
        let mut sigma = Matrix::zeros(0, 0);
        inf.forward_into(&h, &mut mu, &mut sigma);
        assert_bits_eq(&mu, &mu_tape);
        assert_bits_eq(&sigma, &sigma_tape);
        assert!(sigma.as_slice().iter().all(|&s| s >= SIGMA_FLOOR));
    }

    #[test]
    fn embedding_matches_tape_bitwise() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(34);
        let emb = Embedding::new(&mut store, &mut rng, "car", 9, 4);
        let idx = [7usize, 0, 7, 3];

        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let y_tape = tape.value(emb.forward(&bind, &idx));

        let inf = InferEmbedding::from_store(&store, &emb);
        assert_bits_eq(&inf.forward(&idx), &y_tape);
        assert_eq!(inf.row(7), y_tape.row(0));
    }

    #[test]
    fn transformer_layers_match_tape_bitwise() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(35);
        let enc = EncoderLayer::new(&mut store, &mut rng, "enc", 16, 4, 32);
        let dec = DecoderLayer::new(&mut store, &mut rng, "dec", 16, 4, 32);
        let src = ramp(7, 16, 0.07);
        let tgt = ramp(4, 16, 0.05);

        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let memory = enc.forward(&bind, tape.leaf(src.clone()));
        let out_tape = tape.value(dec.forward(&bind, tape.leaf(tgt.clone()), memory));
        let memory_val = tape.value(memory);

        let inf_enc = InferEncoderLayer::from_store(&store, &enc);
        let inf_dec = InferDecoderLayer::from_store(&store, &dec);
        let inf_memory = inf_enc.forward(&src);
        assert_bits_eq(&inf_memory, &memory_val);
        assert_bits_eq(&inf_dec.forward(&tgt, &inf_memory), &out_tape);
    }
}
