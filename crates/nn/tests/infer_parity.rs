//! Property-based parity suite for the tape-free inference runtime: for
//! arbitrary weight seeds (→ arbitrary `ParamStore` contents) and arbitrary
//! inputs, every `Infer*` forward must be **bit-identical** to the tape
//! forward of the layer it mirrors. Comparisons are on `f32::to_bits`, not
//! tolerances — the runtime's whole contract is that splitting serving off
//! the training graph changes no output at all.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpf_autodiff::Tape;
use rpf_nn::mlp::Activation;
use rpf_nn::{
    Binding, GaussianHead, InferGaussianHead, InferLinear, InferMlp, InferStackedLstm, Linear,
    LstmScratch, Mlp, MlpScratch, ParamStore, StackedLstm,
};
use rpf_tensor::Matrix;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

fn assert_bits(got: &Matrix, want: &Matrix) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.shape(), want.shape());
    for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "{} vs {}", x, y);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn linear_parity(x in matrix(4, 6), seed in 0u64..1000) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let lin = Linear::new(&mut store, &mut rng, "l", 6, 3);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let want = tape.value(lin.forward(&bind, tape.leaf(x.clone())));

        let inf = InferLinear::from_store(&store, &lin);
        let mut out = Matrix::zeros(0, 0);
        inf.forward_into(&x, &mut out);
        assert_bits(&out, &want)?;
        assert_bits(&inf.forward(&x), &want)?;
    }

    #[test]
    fn stacked_lstm_parity(
        x0 in matrix(3, 5),
        x1 in matrix(3, 5),
        x2 in matrix(3, 5),
        seed in 0u64..1000,
    ) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let stack = StackedLstm::new(&mut store, &mut rng, "s", 5, 4, 2);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let mut tape_states = stack.zero_state(&bind, 3);

        let inf = InferStackedLstm::from_store(&store, &stack);
        let mut states = inf.zero_state(3);
        let mut scratch = LstmScratch::new();

        // Multi-step: state feedback means a single first-step divergence
        // would compound, so agreement here pins the whole recurrence.
        for x in [&x0, &x1, &x2] {
            let (_, new_states) = stack.step(&bind, tape.leaf(x.clone()), &tape_states);
            tape_states = new_states;
            inf.step(x, &mut states, &mut scratch);
        }
        for (l, s) in tape_states.iter().enumerate() {
            assert_bits(&states[l].0, &tape.value(s.h))?;
            assert_bits(&states[l].1, &tape.value(s.c))?;
        }
    }

    #[test]
    fn mlp_parity(x in matrix(5, 3), seed in 0u64..1000, relu in 0u8..2) {
        let act = if relu == 1 { Activation::Relu } else { Activation::Tanh };
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&mut store, &mut rng, "m", &[3, 16, 16, 1], act);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let want = tape.value(mlp.forward(&bind, tape.leaf(x.clone())));

        let inf = InferMlp::from_store(&store, &mlp);
        let mut scratch = MlpScratch::new();
        let mut out = Matrix::zeros(0, 0);
        inf.forward_into(&x, &mut scratch, &mut out);
        assert_bits(&out, &want)?;
    }

    #[test]
    fn gaussian_head_parity(h in matrix(6, 7), seed in 0u64..1000) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let head = GaussianHead::new(&mut store, &mut rng, "g", 7);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let p = head.forward(&bind, tape.leaf(h.clone()));

        let inf = InferGaussianHead::from_store(&store, &head);
        let mut mu = Matrix::zeros(0, 0);
        let mut sigma = Matrix::zeros(0, 0);
        inf.forward_into(&h, &mut mu, &mut sigma);
        assert_bits(&mu, &tape.value(p.mu))?;
        assert_bits(&sigma, &tape.value(p.sigma))?;
    }

    #[test]
    fn scratch_reuse_across_shapes_is_clean(
        a in matrix(2, 6),
        b in matrix(7, 6),
        seed in 0u64..1000,
    ) {
        // A scratch buffer warmed at one batch size must not leak stale
        // values into a differently-sized call.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let lin = Linear::new(&mut store, &mut rng, "l", 6, 4);
        let inf = InferLinear::from_store(&store, &lin);
        let mut out = Matrix::zeros(0, 0);
        inf.forward_into(&a, &mut out);
        inf.forward_into(&b, &mut out);
        assert_bits(&out, &inf.forward(&b))?;
    }
}
