//! Property-based parity suite for the tape-free inference runtime: for
//! arbitrary weight seeds (→ arbitrary `ParamStore` contents) and arbitrary
//! inputs, every `Infer*` forward must be **bit-identical** to the tape
//! forward of the layer it mirrors. Comparisons are on `f32::to_bits`, not
//! tolerances — the runtime's whole contract is that splitting serving off
//! the training graph changes no output at all.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpf_autodiff::Tape;
use rpf_nn::mlp::Activation;
use rpf_nn::{
    BatchScratch, Binding, GaussianHead, InferGaussianHead, InferLinear, InferMlp,
    InferStackedLstm, Linear, LstmScratch, Mlp, MlpScratch, ParamStore, StackedLstm,
};
use rpf_tensor::Matrix;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

fn assert_bits(got: &Matrix, want: &Matrix) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.shape(), want.shape());
    for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "{} vs {}", x, y);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn linear_parity(x in matrix(4, 6), seed in 0u64..1000) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let lin = Linear::new(&mut store, &mut rng, "l", 6, 3);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let want = tape.value(lin.forward(&bind, tape.leaf(x.clone())));

        let inf = InferLinear::from_store(&store, &lin);
        let mut out = Matrix::zeros(0, 0);
        inf.forward_into(&x, &mut out);
        assert_bits(&out, &want)?;
        assert_bits(&inf.forward(&x), &want)?;
    }

    #[test]
    fn stacked_lstm_parity(
        x0 in matrix(3, 5),
        x1 in matrix(3, 5),
        x2 in matrix(3, 5),
        seed in 0u64..1000,
    ) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let stack = StackedLstm::new(&mut store, &mut rng, "s", 5, 4, 2);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let mut tape_states = stack.zero_state(&bind, 3);

        let inf = InferStackedLstm::from_store(&store, &stack);
        let mut states = inf.zero_state(3);
        let mut scratch = LstmScratch::new();

        // Multi-step: state feedback means a single first-step divergence
        // would compound, so agreement here pins the whole recurrence.
        for x in [&x0, &x1, &x2] {
            let (_, new_states) = stack.step(&bind, tape.leaf(x.clone()), &tape_states);
            tape_states = new_states;
            inf.step(x, &mut states, &mut scratch);
        }
        for (l, s) in tape_states.iter().enumerate() {
            assert_bits(&states[l].0, &tape.value(s.h))?;
            assert_bits(&states[l].1, &tape.value(s.c))?;
        }
    }

    #[test]
    fn mlp_parity(x in matrix(5, 3), seed in 0u64..1000, relu in 0u8..2) {
        let act = if relu == 1 { Activation::Relu } else { Activation::Tanh };
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&mut store, &mut rng, "m", &[3, 16, 16, 1], act);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let want = tape.value(mlp.forward(&bind, tape.leaf(x.clone())));

        let inf = InferMlp::from_store(&store, &mlp);
        let mut scratch = MlpScratch::new();
        let mut out = Matrix::zeros(0, 0);
        inf.forward_into(&x, &mut scratch, &mut out);
        assert_bits(&out, &want)?;
    }

    #[test]
    fn gaussian_head_parity(h in matrix(6, 7), seed in 0u64..1000) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let head = GaussianHead::new(&mut store, &mut rng, "g", 7);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let p = head.forward(&bind, tape.leaf(h.clone()));

        let inf = InferGaussianHead::from_store(&store, &head);
        let mut mu = Matrix::zeros(0, 0);
        let mut sigma = Matrix::zeros(0, 0);
        inf.forward_into(&h, &mut mu, &mut sigma);
        assert_bits(&mu, &tape.value(p.mu))?;
        assert_bits(&sigma, &tape.value(p.sigma))?;
    }

    #[test]
    fn scratch_reuse_across_shapes_is_clean(
        a in matrix(2, 6),
        b in matrix(7, 6),
        seed in 0u64..1000,
    ) {
        // A scratch buffer warmed at one batch size must not leak stale
        // values into a differently-sized call.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let lin = Linear::new(&mut store, &mut rng, "l", 6, 4);
        let inf = InferLinear::from_store(&store, &lin);
        let mut out = Matrix::zeros(0, 0);
        inf.forward_into(&a, &mut out);
        inf.forward_into(&b, &mut out);
        assert_bits(&out, &inf.forward(&b))?;
    }
}

// ---- batched backend parity --------------------------------------------
//
// The batched mirrors (`step_batch` / `forward_batch`) run FMA-contracted
// GEMMs and polynomial fast activations, so their contract is *tolerance*,
// not bits: outputs track the bitwise reference path within `BATCH_TOL`,
// and are bit-deterministic / row-independent in their own right.

/// Pinned batched-vs-reference bound. Headroom decomposition: the fast
/// tanh/sigmoid rationals are within 2e-6 of libm, FMA contraction differs
/// from separate mul/add by a few ulps per dot product, and the LSTM state
/// feedback compounds those over `STEPS` steps — comfortably under 1e-4
/// for unit-scale activations. Tightening kernels may never loosen this.
const BATCH_TOL: f32 = 1e-4;

/// Recurrent steps run in the batched parity tests (feedback compounds any
/// first-step divergence, so multi-step agreement pins the recurrence).
const STEPS: usize = 3;

const IN_DIM: usize = 5;
const HID_DIM: usize = 4;

fn assert_close(got: &Matrix, want: &Matrix, tol: f32) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.shape(), want.shape());
    for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
        prop_assert!((x - y).abs() <= tol, "{} vs {} (tol {})", x, y, tol);
    }
    Ok(())
}

/// The ISSUE-pinned batch sizes plus `STEPS` input matrices for each.
fn batch_inputs() -> impl Strategy<Value = (usize, Vec<Matrix>)> {
    prop::sample::select(vec![1usize, 2, 7, 100])
        .prop_flat_map(|b| (Just(b), prop::collection::vec(matrix(b, IN_DIM), STEPS)))
}

fn head_inputs() -> impl Strategy<Value = Matrix> {
    prop::sample::select(vec![1usize, 2, 7, 100]).prop_flat_map(|b| matrix(b, 7))
}

fn lstm_fixture(seed: u64) -> (ParamStore, StackedLstm) {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let stack = StackedLstm::new(&mut store, &mut rng, "s", IN_DIM, HID_DIM, 2);
    (store, stack)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn step_batch_tracks_per_row_reference(
        (b, xs) in batch_inputs(),
        seed in 0u64..1000,
    ) {
        let (store, stack) = lstm_fixture(seed);
        let inf = InferStackedLstm::from_store(&store, &stack);
        let mut ref_states = inf.zero_state(b);
        let mut bat_states = inf.zero_state(b);
        let mut ref_scratch = LstmScratch::new();
        let mut bat_scratch = BatchScratch::new();
        for x in &xs {
            inf.step(x, &mut ref_states, &mut ref_scratch);
            inf.step_batch(x, &mut bat_states, &mut bat_scratch);
        }
        for l in 0..ref_states.len() {
            assert_close(&bat_states[l].0, &ref_states[l].0, BATCH_TOL)?;
            assert_close(&bat_states[l].1, &ref_states[l].1, BATCH_TOL)?;
        }
    }

    #[test]
    fn forward_batch_tracks_reference(h in head_inputs(), seed in 0u64..1000) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let head = GaussianHead::new(&mut store, &mut rng, "g", 7);
        let inf = InferGaussianHead::from_store(&store, &head);
        let (mut mu, mut sigma) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
        inf.forward_into(&h, &mut mu, &mut sigma);
        let (mut mu_b, mut sigma_b) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
        inf.forward_batch(&h, &mut mu_b, &mut sigma_b);
        assert_close(&mu_b, &mu, BATCH_TOL)?;
        assert_close(&sigma_b, &sigma, BATCH_TOL)?;
        // Sigma keeps the head's positivity floor through the batched path.
        for &s in sigma_b.as_slice() {
            prop_assert!(s > 0.0);
        }
    }

    #[test]
    fn step_batch_rows_are_layout_independent(
        (b, xs) in batch_inputs(),
        seed in 0u64..1000,
    ) {
        // The serving fold depends on this: a row's bits may not change
        // when it is decoded alone vs inside a larger lock-step batch.
        let (store, stack) = lstm_fixture(seed);
        let inf = InferStackedLstm::from_store(&store, &stack);
        let mut full = inf.zero_state(b);
        let mut scratch = BatchScratch::new();
        for x in &xs {
            inf.step_batch(x, &mut full, &mut scratch);
        }
        for r in 0..b {
            let mut solo = inf.zero_state(1);
            let mut solo_scratch = BatchScratch::new();
            for x in &xs {
                let xr = Matrix::from_vec(1, IN_DIM, x.row(r).to_vec());
                inf.step_batch(&xr, &mut solo, &mut solo_scratch);
            }
            for l in 0..full.len() {
                for (got, want) in solo[l].0.row(0).iter().zip(full[l].0.row(r)) {
                    prop_assert_eq!(got.to_bits(), want.to_bits());
                }
                for (got, want) in solo[l].1.row(0).iter().zip(full[l].1.row(r)) {
                    prop_assert_eq!(got.to_bits(), want.to_bits());
                }
            }
        }
    }
}

/// Repeated batched runs at a fixed layout are bit-identical — the batched
/// contract's own determinism half (the other half, tolerance against the
/// reference, is the proptests above).
#[test]
fn batched_runs_are_bit_deterministic_for_fixed_layout() {
    let (store, stack) = lstm_fixture(7);
    let inf = InferStackedLstm::from_store(&store, &stack);
    let mut head_store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(11);
    let head = GaussianHead::new(&mut head_store, &mut rng, "g", HID_DIM);
    let inf_head = InferGaussianHead::from_store(&head_store, &head);

    let xs: Vec<Matrix> = (0..STEPS)
        .map(|s| {
            Matrix::from_vec(
                100,
                IN_DIM,
                (0..100 * IN_DIM)
                    .map(|i| ((i * 37 + s * 101) % 97) as f32 / 48.5 - 1.0)
                    .collect(),
            )
        })
        .collect();

    let run = || {
        let mut states = inf.zero_state(100);
        let mut scratch = BatchScratch::new();
        for x in &xs {
            inf.step_batch(x, &mut states, &mut scratch);
        }
        let (mut mu, mut sigma) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
        inf_head.forward_batch(&states[1].0, &mut mu, &mut sigma);
        (states, mu, sigma)
    };
    let (s1, mu1, sig1) = run();
    let (s2, mu2, sig2) = run();
    for l in 0..s1.len() {
        assert_eq!(
            s1[l]
                .0
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            s2[l]
                .0
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
        assert_eq!(
            s1[l]
                .1
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            s2[l]
                .1
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(
        mu1.as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        mu2.as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
    );
    assert_eq!(
        sig1.as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        sig2.as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
    );
}
