//! Kill–resume bit-identity: a training run checkpointed mid-way and
//! continued in a fresh process-state must end with weights bit-identical
//! to an uninterrupted run. This is the contract `core::persist` builds its
//! crash-safe checkpoints on.

use rpf_autodiff::Tape;
use rpf_nn::train::{try_train_resumable, TrainCheckpoint, TrainConfig, TrainError};
use rpf_nn::{Binding, ParamStore};
use rpf_tensor::Matrix;

const N: usize = 64;

fn data() -> (Vec<f32>, Vec<f32>) {
    let xs: Vec<f32> = (0..N).map(|i| i as f32 / 32.0 - 1.0).collect();
    let ys: Vec<f32> = xs.iter().map(|x| 3.0 * x - 1.0).collect();
    (xs, ys)
}

fn fresh_store() -> (ParamStore, rpf_nn::ParamId, rpf_nn::ParamId) {
    let mut store = ParamStore::new();
    let w = store.register("w", Matrix::zeros(1, 1));
    let b = store.register("b", Matrix::zeros(1, 1));
    (store, w, b)
}

fn cfg(max_epochs: usize) -> TrainConfig {
    TrainConfig {
        max_epochs,
        batch_size: 16,
        lr: 0.05,
        ..Default::default()
    }
}

/// Run the loop on a fresh store; returns the final weight snapshot and the
/// last checkpoint the loop handed out.
fn run(
    max_epochs: usize,
    resume: Option<&TrainCheckpoint>,
    store_override: Option<(ParamStore, rpf_nn::ParamId, rpf_nn::ParamId)>,
) -> (Vec<Matrix>, Option<TrainCheckpoint>) {
    let (xs, ys) = data();
    let (mut store, w, b) = store_override.unwrap_or_else(fresh_store);
    let mut last_ckpt: Option<TrainCheckpoint> = None;
    let mut on_epoch = |c: &TrainCheckpoint| last_ckpt = Some(c.clone());
    let report = try_train_resumable(
        &mut store,
        N,
        &cfg(max_epochs),
        |store, batch| {
            let tape = Tape::new();
            let bind = Binding::new(&tape, store);
            let x = tape.leaf(Matrix::from_vec(
                batch.len(),
                1,
                batch.iter().map(|&i| xs[i]).collect(),
            ));
            let t = tape.leaf(Matrix::from_vec(
                batch.len(),
                1,
                batch.iter().map(|&i| ys[i]).collect(),
            ));
            let ones = tape.leaf(Matrix::ones(batch.len(), 1));
            let pred = tape.add(tape.matmul(x, bind.var(w)), tape.matmul(ones, bind.var(b)));
            let loss = tape.mean(tape.square(tape.sub(pred, t)));
            let out = tape.scalar(loss);
            let grads = bind.into_grads(loss);
            store.apply_grads(grads);
            out
        },
        |store| {
            let wv = store.value(w).get(0, 0);
            let bv = store.value(b).get(0, 0);
            xs.iter()
                .zip(&ys)
                .map(|(x, y)| (wv * x + bv - y) * (wv * x + bv - y))
                .sum::<f32>()
                / xs.len() as f32
        },
        resume,
        Some(&mut on_epoch),
    );
    assert!(report.is_ok(), "training failed: {:?}", report.err());
    (store.snapshot(), last_ckpt)
}

fn bits(snapshot: &[Matrix]) -> Vec<Vec<u32>> {
    snapshot
        .iter()
        .map(|m| m.as_slice().iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn killed_and_resumed_run_matches_uninterrupted_bit_for_bit() {
    // Uninterrupted reference: 6 epochs straight through.
    let (reference, _) = run(6, None, None);

    // "Killed" run: 3 epochs, keep the last checkpoint, drop everything else.
    let (_, ckpt) = run(3, None, None);
    let ckpt = ckpt.expect("checkpoint after 3 epochs");
    assert_eq!(ckpt.next_epoch, 3);

    // Resume on a completely fresh store (fresh optimizer, fresh iterator).
    let (resumed, _) = run(6, Some(&ckpt), Some(fresh_store()));

    assert_eq!(
        bits(&reference),
        bits(&resumed),
        "resumed weights must be bit-identical to the uninterrupted run"
    );
}

#[test]
fn resume_checkpoint_records_loop_bookkeeping() {
    let (_, ckpt) = run(4, None, None);
    let ckpt = ckpt.expect("checkpoint");
    assert_eq!(ckpt.next_epoch, 4);
    assert_eq!(ckpt.epochs_drawn, 4);
    assert_eq!(ckpt.epoch_losses.len(), 4);
    assert!(ckpt.samples_seen >= (N * 4) as u64);
    assert!(
        ckpt.recoveries.is_empty(),
        "healthy run records no recoveries"
    );
}

#[test]
fn mismatched_checkpoint_is_a_clean_error() {
    // Checkpoint from the 2-tensor linear model...
    let (_, ckpt) = run(2, None, None);
    let ckpt = ckpt.expect("checkpoint");

    // ...resumed into a model with a different tensor count.
    let mut store = ParamStore::new();
    let _ = store.register("only", Matrix::zeros(1, 1));
    let err = try_train_resumable(
        &mut store,
        N,
        &cfg(4),
        |_, _| 0.0,
        |_| 0.0,
        Some(&ckpt),
        None,
    )
    .expect_err("shape-mismatched checkpoint must be rejected");
    assert!(matches!(err, TrainError::BadCheckpoint(_)), "got {err:?}");
}
