//! Fault-injection matrix for the training loop (requires the
//! `fault-inject` feature): planned NaN losses must trigger divergence
//! recovery — rollback, LR halving, a recorded [`RecoveryEvent`] — and
//! exhausting the retry budget must surface as a typed error, never a
//! panic.
#![cfg(feature = "fault-inject")]

use rpf_autodiff::Tape;
use rpf_nn::fault::{self, FaultPlan};
use rpf_nn::train::{try_train, DivergenceCause, TrainConfig, TrainError};
use rpf_nn::{Binding, ParamStore};
use rpf_tensor::Matrix;
use std::sync::Mutex;

// The fault plan is process-global: tests installing plans serialize here.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    match TEST_LOCK.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

const N: usize = 64;

/// Linear-regression training run under whatever fault plan is installed.
fn train_linear(cfg: &TrainConfig) -> Result<rpf_nn::train::TrainReport, TrainError> {
    let xs: Vec<f32> = (0..N).map(|i| i as f32 / 32.0 - 1.0).collect();
    let ys: Vec<f32> = xs.iter().map(|x| 3.0 * x - 1.0).collect();
    let mut store = ParamStore::new();
    let w = store.register("w", Matrix::zeros(1, 1));
    let b = store.register("b", Matrix::zeros(1, 1));
    try_train(
        &mut store,
        N,
        cfg,
        |store, batch| {
            let tape = Tape::new();
            let bind = Binding::new(&tape, store);
            let x = tape.leaf(Matrix::from_vec(
                batch.len(),
                1,
                batch.iter().map(|&i| xs[i]).collect(),
            ));
            let t = tape.leaf(Matrix::from_vec(
                batch.len(),
                1,
                batch.iter().map(|&i| ys[i]).collect(),
            ));
            let ones = tape.leaf(Matrix::ones(batch.len(), 1));
            let pred = tape.add(tape.matmul(x, bind.var(w)), tape.matmul(ones, bind.var(b)));
            let loss = tape.mean(tape.square(tape.sub(pred, t)));
            let out = tape.scalar(loss);
            let grads = bind.into_grads(loss);
            store.apply_grads(grads);
            out
        },
        |store| {
            let wv = store.value(w).get(0, 0);
            let bv = store.value(b).get(0, 0);
            xs.iter()
                .zip(&ys)
                .map(|(x, y)| (wv * x + bv - y) * (wv * x + bv - y))
                .sum::<f32>()
                / xs.len() as f32
        },
    )
}

fn cfg(max_epochs: usize) -> TrainConfig {
    TrainConfig {
        max_epochs,
        batch_size: 16,
        lr: 0.05,
        ..Default::default()
    }
}

#[test]
fn single_nan_loss_is_recovered_and_recorded() {
    let _g = locked();
    // Poison the loss of global batch 2 (epoch 0, third batch).
    fault::install(FaultPlan::new().nan_loss_at_batch(2));
    // The rollback halves the LR for good, so give the run enough epochs
    // to converge at the reduced rate.
    let report = train_linear(&cfg(60));
    fault::clear();

    let report = report.expect("one injected NaN must be survivable");
    assert_eq!(report.recoveries.len(), 1, "exactly one rollback");
    let r = &report.recoveries[0];
    assert_eq!(r.epoch, 0);
    assert_eq!(r.batch, 2);
    assert_eq!(r.cause, DivergenceCause::NonFiniteLoss);
    assert!(r.lr_after < 0.05, "LR must be reduced after rollback");
    assert!(
        report.best_val_loss < 0.05,
        "training must still converge after recovery: {}",
        report.best_val_loss
    );
}

#[test]
fn persistent_nan_loss_exhausts_retries_without_panicking() {
    let _g = locked();
    // Every batch of the first epoch (across all retries) is poisoned:
    // rollback can never help, so the loop must give up cleanly.
    let mut plan = FaultPlan::new();
    for k in 0..64 {
        plan = plan.nan_loss_at_batch(k);
    }
    fault::install(plan);
    let err = train_linear(&cfg(4)).err();
    fault::clear();

    match err.expect("persistent NaN must fail training") {
        TrainError::Diverged { epoch, retries, .. } => {
            assert_eq!(epoch, 0);
            assert_eq!(retries, TrainConfig::default().max_divergence_retries);
        }
        other => panic!("expected Diverged, got {other:?}"),
    }
}

#[test]
fn recovery_halves_lr_per_attempt() {
    let _g = locked();
    // Three poisoned batches early in epoch 0: each retry trips the next
    // one, so three rollbacks land with compounding LR cuts.
    fault::install(
        FaultPlan::new()
            .nan_loss_at_batch(0)
            .nan_loss_at_batch(4)
            .nan_loss_at_batch(8),
    );
    let report = train_linear(&cfg(6));
    fault::clear();

    let report = report.expect("three faults fit inside the retry budget");
    assert_eq!(report.recoveries.len(), 3);
    let lrs: Vec<f32> = report.recoveries.iter().map(|r| r.lr_after).collect();
    assert!((lrs[0] - 0.025).abs() < 1e-6, "lrs {lrs:?}");
    assert!((lrs[1] - 0.0125).abs() < 1e-6, "lrs {lrs:?}");
    assert!((lrs[2] - 0.00625).abs() < 1e-6, "lrs {lrs:?}");
}
