//! Property tests over the neural building blocks: output ranges,
//! composite-gradient checks, and optimizer behaviour for arbitrary data.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpf_autodiff::Tape;
use rpf_nn::gaussian::{gaussian_nll, GaussianParams, SIGMA_FLOOR};
use rpf_nn::mlp::Activation;
use rpf_nn::{Adam, Binding, GaussianHead, LstmCell, Mlp, ParamStore};
use rpf_tensor::Matrix;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lstm_hidden_state_is_bounded(x in matrix(3, 5), seed in 0u64..100) {
        // h = o ⊙ tanh(c) with o ∈ (0,1) means |h| < 1 for ANY input/weights.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let cell = LstmCell::new(&mut store, &mut rng, "c", 5, 6);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let xv = tape.leaf(x);
        let mut state = cell.zero_state(&bind, 3);
        for _ in 0..4 {
            state = cell.step(&bind, xv, state);
        }
        let h = tape.value(state.h);
        prop_assert!(h.as_slice().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn gaussian_head_sigma_positive_for_any_hidden(h in matrix(4, 6), seed in 0u64..100) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let head = GaussianHead::new(&mut store, &mut rng, "g", 6);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let hv = tape.leaf(h);
        let p = head.forward(&bind, hv);
        let sigma = tape.value(p.sigma);
        prop_assert!(sigma.as_slice().iter().all(|&s| s >= SIGMA_FLOOR && s.is_finite()));
    }

    #[test]
    fn nll_gradient_points_mu_toward_target(mu0 in -3.0f32..3.0, target in -3.0f32..3.0) {
        // One gradient step on mu must reduce |mu - target| (fixed sigma).
        prop_assume!((mu0 - target).abs() > 0.1);
        let mut store = ParamStore::new();
        let mu_p = store.register("mu", Matrix::full(1, 1, mu0));
        let tape = Tape::new();
        let bind = Binding::new(&tape, &store);
        let mu = bind.var(mu_p);
        let sigma = tape.leaf(Matrix::full(1, 1, 1.0));
        let z = tape.leaf(Matrix::full(1, 1, target));
        let nll = gaussian_nll(&bind, GaussianParams { mu, sigma }, z, None);
        let g = bind.into_grads(nll);
        store.apply_grads(g);
        let grad = store.grad(mu_p).get(0, 0);
        // Gradient sign: positive when mu > target (pushes mu down).
        prop_assert_eq!(grad > 0.0, mu0 > target, "grad {} mu {} target {}", grad, mu0, target);
    }

    #[test]
    fn adam_step_is_bounded_by_lr(seed in 0u64..100, g in -1000.0f32..1000.0) {
        prop_assume!(g.abs() > 1e-3);
        // Adam's per-coordinate step magnitude is ~lr regardless of the
        // gradient scale — the property that makes it robust to the paper's
        // unnormalised rank targets.
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 1));
        let mut adam = Adam::new(&store, 0.01);
        adam.clip_norm = 0.0; // isolate the Adam scaling itself
        store.accumulate_grad(w, &Matrix::full(1, 1, g));
        adam.step(&mut store);
        let moved = store.value(w).get(0, 0).abs();
        prop_assert!(moved <= 0.011, "step {} too large for lr 0.01 (seed {seed})", moved);
    }

    #[test]
    fn mlp_is_deterministic_given_seed(x in matrix(2, 3), seed in 0u64..50) {
        let build = |seed: u64| {
            let mut store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(seed);
            let mlp = Mlp::new(&mut store, &mut rng, "m", &[3, 8, 1], Activation::Tanh);
            let tape = Tape::new();
            let bind = Binding::new(&tape, &store);
            let xv = tape.leaf(x.clone());
            tape.value(mlp.forward(&bind, xv))
        };
        prop_assert_eq!(build(seed), build(seed));
    }
}
