//! Forecast throughput: Algorithm 2's ancestral sampling through the
//! [`ForecastEngine`], measured as trajectories/sec versus decoder thread
//! count at the paper's operating point (100 samples × full field, two-lap
//! horizon), plus the long-horizon stint shape.
//!
//! The thread sweep is the engine's scaling story: the samples are
//! bit-identical at every thread count (see
//! `crates/core/tests/engine_determinism.rs`), so the sweep measures pure
//! scheduling gain. On an N-core machine the 4-thread row should clear
//! 2× the 1-thread row; on a single-core machine the rows collapse to
//! spawn overhead, which is itself worth seeing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ranknet_core::engine::ForecastEngine;
use ranknet_core::features::extract_sequences;
use ranknet_core::instances::TrainingSet;
use ranknet_core::rank_model::{oracle_covariates, RankModel, TargetKind};
use ranknet_core::ranknet::{RankNet, RankNetVariant};
use ranknet_core::RankNetConfig;
use rpf_nn::RngStreams;
use rpf_racesim::{simulate_race, Event, EventConfig};

fn trained_ranknet(cfg: &RankNetConfig) -> (RankNet, ranknet_core::features::RaceContext) {
    let ctx = extract_sequences(&simulate_race(
        &EventConfig::for_race(Event::Indy500, 2019),
        1,
    ));
    let (model, _) = RankNet::fit(
        vec![ctx.clone()],
        vec![ctx.clone()],
        cfg.clone(),
        RankNetVariant::Oracle,
        16,
    );
    (model, ctx)
}

fn bench_engine_thread_scaling(c: &mut Criterion) {
    let cfg = RankNetConfig {
        max_epochs: 1,
        ..Default::default()
    };
    let (model, ctx) = trained_ranknet(&cfg);

    let origin = 100;
    let horizon = 2;
    let n_samples = 100;
    let active = ctx.sequences.iter().filter(|s| s.len() >= origin).count();

    let mut group = c.benchmark_group("engine_thread_scaling");
    group.sample_size(10);
    group.throughput(Throughput::Elements((active * n_samples) as u64));
    for &threads in &[1usize, 2, 4, 8] {
        let engine = ForecastEngine::new(&model, 7).with_threads(threads);
        // Warm the encoder cache so the sweep isolates the decoder.
        let _ = engine.forecast(&ctx, origin, horizon, n_samples);
        group.bench_with_input(
            BenchmarkId::new("two_lap_full_field_100_samples", threads),
            &threads,
            |bench, _| {
                bench.iter(|| {
                    std::hint::black_box(engine.forecast(&ctx, origin, horizon, n_samples))
                });
            },
        );
    }
    group.finish();
}

fn bench_raw_model_paths(c: &mut Criterion) {
    let cfg = RankNetConfig {
        max_epochs: 1,
        ..Default::default()
    };
    let ctx = extract_sequences(&simulate_race(
        &EventConfig::for_race(Event::Indy500, 2019),
        1,
    ));
    let ts = TrainingSet::build(vec![ctx.clone()], &cfg, 16);
    let mut model = RankModel::new(cfg.clone(), TargetKind::RankOnly, ts.max_car_id);
    let _ = model.train(&ts, &ts); // weights just need to be initialised/finite

    let mut group = c.benchmark_group("forecast");
    group.sample_size(10);
    for &n_samples in &[10usize, 100] {
        let cov = oracle_covariates(&ctx, 100, 2, cfg.prediction_len);
        group.throughput(Throughput::Elements(n_samples as u64));
        group.bench_with_input(
            BenchmarkId::new("two_lap_full_field", n_samples),
            &n_samples,
            |bench, &n| {
                let mut rng = StdRng::seed_from_u64(2);
                bench
                    .iter(|| std::hint::black_box(model.forecast(&ctx, &cov, 100, 2, n, &mut rng)));
            },
        );
    }
    // The long-horizon stint forecast (TaskB shape).
    let cov = oracle_covariates(&ctx, 100, 30, cfg.prediction_len);
    group.bench_function("thirty_lap_stint_20_samples", |bench| {
        let mut rng = StdRng::seed_from_u64(3);
        bench.iter(|| std::hint::black_box(model.forecast(&ctx, &cov, 100, 30, 20, &mut rng)));
    });
    group.finish();
}

/// Tape vs tape-free vs batched decode at the paper's operating point.
/// `tape` and `tape_free` produce bit-identical samples (pinned in
/// `crates/core/tests/engine_determinism.rs`); `batched` is tolerance-equal
/// (pinned in `crates/core/tests/decode_parity.rs`) and trades the bitwise
/// contract for FMA-contracted lock-step GEMMs, polynomial fast
/// activations, the fused dual-affine head and template-based input
/// assembly. Expected ordering single-threaded: tape_free ≥ 2× tape
/// (measured 2.18×), batched ≥ 2× tape_free at 100 samples — the release
/// gate in `crates/bench/tests/decode_perf_gate.rs` enforces the latter.
fn bench_decode_backends(c: &mut Criterion) {
    let cfg = RankNetConfig {
        max_epochs: 1,
        ..Default::default()
    };
    let ctx = extract_sequences(&simulate_race(
        &EventConfig::for_race(Event::Indy500, 2019),
        1,
    ));
    let ts = TrainingSet::build(vec![ctx.clone()], &cfg, 16);
    let mut model = RankModel::new(cfg.clone(), TargetKind::RankOnly, ts.max_car_id);
    let _ = model.train(&ts, &ts);

    let origin = 100;
    let horizon = 2;
    let n_samples = 100;
    let cov = oracle_covariates(&ctx, origin, horizon, cfg.prediction_len);
    let enc = model.encode(&ctx, origin);
    let streams = RngStreams::new(0x5EED);
    let active = ctx.sequences.iter().filter(|s| s.len() >= origin).count();

    let mut group = c.benchmark_group("decode_backend");
    group.sample_size(10);
    group.throughput(Throughput::Elements((active * n_samples) as u64));
    for &threads in &[1usize, 4] {
        group.bench_with_input(BenchmarkId::new("tape", threads), &threads, |bench, &t| {
            bench.iter(|| {
                std::hint::black_box(
                    model.decode_tape(&ctx, &cov, origin, horizon, n_samples, &enc, &streams, t),
                )
            });
        });
        group.bench_with_input(
            BenchmarkId::new("tape_free", threads),
            &threads,
            |bench, &t| {
                bench.iter(|| {
                    std::hint::black_box(
                        model.decode(&ctx, &cov, origin, horizon, n_samples, &enc, &streams, t),
                    )
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batched", threads),
            &threads,
            |bench, &t| {
                bench.iter(|| {
                    std::hint::black_box(
                        model.decode_batched(
                            &ctx, &cov, origin, horizon, n_samples, &enc, &streams, t,
                        ),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_thread_scaling,
    bench_raw_model_paths,
    bench_decode_backends
);
criterion_main!(benches);
