//! Forecast throughput: Algorithm 2's encoder + ancestral sampling, at the
//! sample counts the paper uses (100 samples/forecast).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ranknet_core::features::extract_sequences;
use ranknet_core::instances::TrainingSet;
use ranknet_core::rank_model::{oracle_covariates, RankModel, TargetKind};
use ranknet_core::RankNetConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpf_racesim::{simulate_race, Event, EventConfig};

fn bench_forecast(c: &mut Criterion) {
    let mut cfg = RankNetConfig::default();
    cfg.max_epochs = 1;
    let ctx = extract_sequences(&simulate_race(&EventConfig::for_race(Event::Indy500, 2019), 1));
    let ts = TrainingSet::build(vec![ctx.clone()], &cfg, 16);
    let mut model = RankModel::new(cfg.clone(), TargetKind::RankOnly, ts.max_car_id);
    let _ = model.train(&ts, &ts); // weights just need to be initialised/finite

    let mut group = c.benchmark_group("forecast");
    group.sample_size(10);
    for &n_samples in &[10usize, 100] {
        let cov = oracle_covariates(&ctx, 100, 2, cfg.prediction_len);
        group.throughput(Throughput::Elements(n_samples as u64));
        group.bench_with_input(
            BenchmarkId::new("two_lap_full_field", n_samples),
            &n_samples,
            |bench, &n| {
                let mut rng = StdRng::seed_from_u64(2);
                bench.iter(|| {
                    std::hint::black_box(model.forecast(&ctx, &cov, 100, 2, n, &mut rng))
                });
            },
        );
    }
    // The long-horizon stint forecast (TaskB shape).
    let cov = oracle_covariates(&ctx, 100, 30, cfg.prediction_len);
    group.bench_function("thirty_lap_stint_20_samples", |bench| {
        let mut rng = StdRng::seed_from_u64(3);
        bench.iter(|| std::hint::black_box(model.forecast(&ctx, &cov, 100, 30, 20, &mut rng)));
    });
    group.finish();
}

criterion_group!(benches, bench_forecast);
criterion_main!(benches);
