//! Kernel microbenchmarks: the five §IV-J LSTM operations at the exact
//! shapes the RankNet workload produces (batch × 4·hidden GEMMs etc.).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rpf_tensor::matmul::{matmul, matmul_bt};
use rpf_tensor::{ops, Matrix};
use std::hint::black_box;

fn mat(rows: usize, cols: usize, seed: u32) -> Matrix {
    let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
    Matrix::from_fn(rows, cols, |_, _| {
        s = s.wrapping_mul(1664525).wrapping_add(1013904223);
        ((s >> 9) as f32 / (1 << 23) as f32) - 1.0
    })
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    // The RankNet gate GEMM: (batch x hidden) * (hidden x 4*hidden).
    for &batch in &[32usize, 256, 3200] {
        let a = mat(batch, 40, 1);
        let b = mat(40, 160, 2);
        group.throughput(Throughput::Elements((2 * batch * 40 * 160) as u64));
        group.bench_with_input(BenchmarkId::new("gate_gemm", batch), &batch, |bench, _| {
            bench.iter(|| black_box(matmul(black_box(&a), black_box(&b))));
        });
    }
    // Backward-pass transposed form.
    let g = mat(256, 160, 3);
    let b = mat(40, 160, 4);
    group.bench_function("gate_gemm_bt_256", |bench| {
        bench.iter(|| black_box(matmul_bt(black_box(&g), black_box(&b))));
    });
    group.finish();
}

fn bench_pointwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("pointwise");
    for &batch in &[32usize, 3200] {
        let x = mat(batch, 40, 5);
        let y = mat(batch, 40, 6);
        group.throughput(Throughput::Elements((batch * 40) as u64));
        group.bench_with_input(BenchmarkId::new("mul", batch), &batch, |bench, _| {
            bench.iter(|| black_box(ops::mul(black_box(&x), black_box(&y))));
        });
        group.bench_with_input(BenchmarkId::new("add", batch), &batch, |bench, _| {
            bench.iter(|| black_box(ops::add(black_box(&x), black_box(&y))));
        });
        group.bench_with_input(BenchmarkId::new("sigmoid", batch), &batch, |bench, _| {
            bench.iter(|| black_box(ops::sigmoid(black_box(&x))));
        });
        group.bench_with_input(BenchmarkId::new("tanh", batch), &batch, |bench, _| {
            bench.iter(|| black_box(ops::tanh(black_box(&x))));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_pointwise
}
criterion_main!(benches);
