//! Serving-layer throughput: the micro-batching scheduler versus
//! one-request-per-call dispatch, swept over offered load (closed-loop
//! client counts). The workload is the live-race hot spot — many clients
//! asking a small pool of distinct questions — which is exactly where
//! coalescing pays: identical requests in a batch share one model run and
//! the clones are bit-identical by the determinism contract, so the win is
//! free of accuracy cost.
//!
//! Besides the criterion timings, each load level prints a one-line
//! summary with req/s, p50 and p99 request latency for both dispatch
//! modes (criterion's stub reports only mean wall-clock per iteration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ranknet_core::engine::ForecastEngine;
use ranknet_core::features::{extract_sequences, RaceContext};
use ranknet_core::lifecycle::VersionedModel;
use ranknet_core::ranknet::{RankNet, RankNetVariant};
use ranknet_core::RankNetConfig;
use rpf_nn::RngStreams;
use rpf_serve::loadgen::{LoadMix, MultiRaceMix};
use rpf_serve::{serve, serve_sharded, ServeConfig, ShardTopology};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ENGINE_SEED: u64 = 5;
const PER_CLIENT: usize = 8;
/// Closed-loop client counts: the three offered-load levels.
const LOADS: [usize; 3] = [2, 8, 32];

fn fixture() -> (RankNet, Vec<RaceContext>) {
    let race = |seed| extract_sequences(&simulate(seed));
    let mut cfg = RankNetConfig::tiny();
    cfg.max_epochs = 1;
    let train = vec![race(301)];
    let (model, _) = RankNet::fit(train.clone(), train, cfg, RankNetVariant::Oracle, 40);
    (model, vec![race(302), race(303), race(304), race(305)])
}

fn simulate(seed: u64) -> rpf_racesim::RaceResult {
    rpf_racesim::simulate_race(
        &rpf_racesim::EventConfig::for_race(rpf_racesim::Event::Indy500, 2017),
        seed,
    )
}

/// The hot-spot mix: a pool of 4 distinct queries with a decode-heavy
/// sample count, so duplicated work dominates and coalescing matters.
fn hot_mix() -> LoadMix {
    LoadMix {
        sample_counts: vec![8],
        unique_queries: Some(4),
        ..LoadMix::standard(2, (60, 100))
    }
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        workers: 4,
        max_batch: 16,
        max_delay: Duration::from_micros(500),
        queue_capacity: 4096,
    }
}

/// Closed-loop pass through the serving layer; returns per-request
/// latencies (submission to response).
fn run_batched(engine: &ForecastEngine, refs: &[&RaceContext], clients: usize) -> Vec<Duration> {
    let mix = hot_mix();
    let streams = RngStreams::new(0xBE7C);
    let (lat, _) = serve(engine, refs, &serve_cfg(), |client| {
        let mut all = Vec::with_capacity(clients * PER_CLIENT);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    // Every client draws from the SAME stream base: the
                    // 4-query hot pool is shared across clients, so
                    // concurrent callers really do ask the same questions.
                    let streams = &streams;
                    let mix = &mix;
                    s.spawn(move || {
                        let mut lats = Vec::with_capacity(PER_CLIENT);
                        for i in 0..PER_CLIENT {
                            let req = mix.request_at(streams, (c * PER_CLIENT + i) as u64);
                            let t0 = Instant::now();
                            let out = client.forecast(req).expect("queue sized for the load");
                            criterion::black_box(&out);
                            lats.push(t0.elapsed());
                        }
                        lats
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(lats) => all.extend(lats),
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
        });
        all
    });
    lat
}

/// The batched closed-loop load with a hot-swap thread flipping the live
/// model slot the whole time (~every 200 µs, alternating two bit-identical
/// weight sets so outputs stay comparable): the p99 under continuous swap
/// is the price of the lock-free slot read in the serving hot path.
fn run_swapped(
    engine: &ForecastEngine,
    refs: &[&RaceContext],
    clients: usize,
    weights: &[Arc<RankNet>; 2],
) -> Vec<Duration> {
    let mix = hot_mix();
    let streams = RngStreams::new(0xBE7C);
    let stop = AtomicBool::new(false);
    let (lat, _) = serve(engine, refs, &serve_cfg(), |client| {
        let mut all = Vec::with_capacity(clients * PER_CLIENT);
        std::thread::scope(|s| {
            let swapper = s.spawn(|| {
                let mut version = 1u64;
                while !stop.load(Ordering::Acquire) {
                    let next = Arc::clone(&weights[(version % 2) as usize]);
                    engine.swap_model(VersionedModel::new(version, next));
                    version += 1;
                    std::thread::sleep(Duration::from_micros(200));
                }
                version - 1
            });
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let streams = &streams;
                    let mix = &mix;
                    s.spawn(move || {
                        let mut lats = Vec::with_capacity(PER_CLIENT);
                        for i in 0..PER_CLIENT {
                            let req = mix.request_at(streams, (c * PER_CLIENT + i) as u64);
                            let t0 = Instant::now();
                            let out = client.forecast(req).expect("queue sized for the load");
                            criterion::black_box(&out);
                            lats.push(t0.elapsed());
                        }
                        lats
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(lats) => all.extend(lats),
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
            stop.store(true, Ordering::Release);
            let swaps = swapper.join().expect("swapper never panics");
            criterion::black_box(swaps);
        });
        all
    });
    lat
}

/// The scale-out mix: the same decode-heavy hot pool, spread over four
/// races with a Zipf-skewed popularity so the shard router has real
/// multi-race traffic to spread.
fn shard_mix() -> MultiRaceMix {
    MultiRaceMix {
        mix: LoadMix {
            sample_counts: vec![8],
            unique_queries: Some(4),
            ..LoadMix::standard(4, (60, 100))
        },
        zipf_exponent: 1.0,
        scenario_of: Vec::new(),
    }
}

/// Closed-loop pass through the sharded front router: requests hash to
/// per-race serving shards, each with its own forked engine and workers.
fn run_sharded(
    engine: &ForecastEngine,
    refs: &[&RaceContext],
    clients: usize,
    shards: usize,
) -> Vec<Duration> {
    let mix = shard_mix();
    let streams = RngStreams::new(0xBE7C);
    let (lat, _) = serve_sharded(
        engine,
        refs,
        &serve_cfg(),
        ShardTopology::new(shards),
        |client| {
            let mut all = Vec::with_capacity(clients * PER_CLIENT);
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..clients)
                    .map(|c| {
                        let streams = &streams;
                        let mix = &mix;
                        s.spawn(move || {
                            let mut lats = Vec::with_capacity(PER_CLIENT);
                            for i in 0..PER_CLIENT {
                                let req = mix.request_at(streams, (c * PER_CLIENT + i) as u64);
                                let t0 = Instant::now();
                                let out = client.forecast(req).expect("queue sized for the load");
                                criterion::black_box(&out);
                                lats.push(t0.elapsed());
                            }
                            lats
                        })
                    })
                    .collect();
                for h in handles {
                    match h.join() {
                        Ok(lats) => all.extend(lats),
                        Err(p) => std::panic::resume_unwind(p),
                    }
                }
            });
            all
        },
    );
    lat
}

/// The batched closed-loop load taken over real loopback sockets: the
/// gateway's HTTP front-end nests inside the serving region and every
/// client keeps one keep-alive connection, so the delta against the
/// `batched` mode is the whole network edge — parse, JSON codec, TCP
/// round-trip — at the same offered load.
fn run_gateway(engine: &ForecastEngine, refs: &[&RaceContext], clients: usize) -> Vec<Duration> {
    use rpf_gateway::routes::render_forecast_body;
    let mix = hot_mix();
    let streams = RngStreams::new(0xBE7C);
    let bus = rpf_gateway::LapBus::new();
    // One worker per client: every keep-alive connection pins a worker for
    // its lifetime, and the bench measures codec+transport cost, not
    // worker-pool queueing.
    let gw_cfg = rpf_gateway::GatewayConfig {
        conn_workers: clients,
        pending_conns: clients + 8,
        ..rpf_gateway::GatewayConfig::default()
    };
    let ((lat, _), _) = serve(engine, refs, &serve_cfg(), |client| {
        rpf_gateway::serve_http(client, refs.len(), &bus, &gw_cfg, None, |gw| {
            let addr = gw.addr();
            let mut all = Vec::with_capacity(clients * PER_CLIENT);
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..clients)
                    .map(|c| {
                        let streams = &streams;
                        let mix = &mix;
                        s.spawn(move || {
                            let mut http =
                                rpf_gateway::HttpClient::connect(addr, Duration::from_secs(10))
                                    .expect("gateway on loopback");
                            let mut lats = Vec::with_capacity(PER_CLIENT);
                            for i in 0..PER_CLIENT {
                                let req = mix.request_at(streams, (c * PER_CLIENT + i) as u64);
                                let body = render_forecast_body(&req);
                                let t0 = Instant::now();
                                let resp = http
                                    .post_json("/forecast", &body)
                                    .expect("queue sized for the load");
                                assert_eq!(resp.status, 200, "{}", resp.body_str());
                                criterion::black_box(resp.body.len());
                                lats.push(t0.elapsed());
                            }
                            lats
                        })
                    })
                    .collect();
                for h in handles {
                    match h.join() {
                        Ok(lats) => all.extend(lats),
                        Err(p) => std::panic::resume_unwind(p),
                    }
                }
            });
            all
        })
        .expect("gateway binds loopback")
    });
    lat
}

/// The same closed-loop load, but every client calls the engine directly —
/// one request, one model run, no batching and no coalescing.
fn run_direct(engine: &ForecastEngine, contexts: &[RaceContext], clients: usize) -> Vec<Duration> {
    let mix = hot_mix();
    let streams = RngStreams::new(0xBE7C);
    let mut all = Vec::with_capacity(clients * PER_CLIENT);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                // Same shared hot pool as the batched runner, for fairness.
                let streams = &streams;
                let mix = &mix;
                s.spawn(move || {
                    let mut lats = Vec::with_capacity(PER_CLIENT);
                    for i in 0..PER_CLIENT {
                        let req = mix.request_at(streams, (c * PER_CLIENT + i) as u64);
                        let t0 = Instant::now();
                        let out = engine.try_forecast_keyed(
                            req.race,
                            &contexts[req.race],
                            req.origin,
                            req.horizon,
                            req.n_samples,
                        );
                        criterion::black_box(&out);
                        lats.push(t0.elapsed());
                    }
                    lats
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(lats) => all.extend(lats),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    all
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn report(mode: &str, clients: usize, wall: Duration, mut lats: Vec<Duration>) {
    lats.sort();
    let n = lats.len();
    let rps = n as f64 / wall.as_secs_f64().max(1e-9);
    eprintln!(
        "serving {mode:>7} load={clients:>2} clients: {rps:>9.1} req/s  \
         p50={:?}  p99={:?}",
        percentile(&lats, 0.50),
        percentile(&lats, 0.99),
    );
}

fn bench_serving(c: &mut Criterion) {
    let (model, contexts) = fixture();
    let refs: Vec<&RaceContext> = contexts.iter().collect();

    let mut group = c.benchmark_group("serving_throughput");
    group.sample_size(10);
    for clients in LOADS {
        group.throughput(Throughput::Elements((clients * PER_CLIENT) as u64));
        group.bench_with_input(
            BenchmarkId::new("batched", clients),
            &clients,
            |b, &clients| {
                let engine = ForecastEngine::new(&model, ENGINE_SEED).with_threads(1);
                b.iter(|| criterion::black_box(run_batched(&engine, &refs, clients)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("direct", clients),
            &clients,
            |b, &clients| {
                let engine = ForecastEngine::new(&model, ENGINE_SEED).with_threads(1);
                b.iter(|| criterion::black_box(run_direct(&engine, &contexts, clients)));
            },
        );
    }
    group.finish();

    // Percentile summary at every load level, one measured pass each. At
    // the highest load the batched mode must come out ahead: 32 clients
    // over a 4-deep query pool hand the scheduler ~8-way coalescing. The
    // swap mode repeats the batched run under a continuous hot-swap thread
    // — its p99 against batched is the model-lifecycle serving overhead.
    let weights = [Arc::new(model.clone()), Arc::new(model.clone())];
    for clients in LOADS {
        let engine = ForecastEngine::new(&model, ENGINE_SEED).with_threads(1);
        let t0 = Instant::now();
        let lats = run_batched(&engine, &refs, clients);
        report("batched", clients, t0.elapsed(), lats);

        let engine = ForecastEngine::new(&model, ENGINE_SEED).with_threads(1);
        let t0 = Instant::now();
        let lats = run_direct(&engine, &contexts, clients);
        report("direct", clients, t0.elapsed(), lats);

        let engine = ForecastEngine::new(&model, ENGINE_SEED).with_threads(1);
        let t0 = Instant::now();
        let lats = run_swapped(&engine, &refs, clients, &weights);
        report("swap", clients, t0.elapsed(), lats);

        // The network edge at the same load: closed-loop keep-alive HTTP
        // clients through the gateway. gateway vs batched is the wire tax.
        let engine = ForecastEngine::new(&model, ENGINE_SEED).with_threads(1);
        let t0 = Instant::now();
        let lats = run_gateway(&engine, &refs, clients);
        report("gateway", clients, t0.elapsed(), lats);
    }

    // Scale-out summary at the heaviest load: the same multi-race mix
    // through 1, 2 and 4 serving shards. `bench_snapshot.sh shards` pins
    // these three lines; the machine-independent scaling gate itself lives
    // on the virtual clock in `rpf-serve`'s shard_scaling_gate test.
    for shards in [1usize, 2, 4] {
        let engine = ForecastEngine::new(&model, ENGINE_SEED).with_threads(1);
        let t0 = Instant::now();
        let lats = run_sharded(&engine, &refs, 32, shards);
        report(&format!("shard{shards}"), 32, t0.elapsed(), lats);
    }
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
