//! Training-step throughput vs batch size — the measured half of Fig 10.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ranknet_core::features::extract_sequences;
use ranknet_core::instances::TrainingSet;
use ranknet_core::rank_model::{RankModel, TargetKind};
use ranknet_core::RankNetConfig;
use rpf_racesim::{simulate_race, Event, EventConfig};

fn training_set(cfg: &RankNetConfig) -> TrainingSet {
    let ctxs: Vec<_> = (0..2u64)
        .map(|s| {
            extract_sequences(&simulate_race(
                &EventConfig::for_race(Event::Indy500, 2016),
                s,
            ))
        })
        .collect();
    TrainingSet::build(ctxs, cfg, 2)
}

fn bench_training_step(c: &mut Criterion) {
    let base = RankNetConfig {
        max_epochs: 1,
        ..Default::default()
    };
    let ts = training_set(&base);
    let mut group = c.benchmark_group("train_step");
    group.sample_size(10);
    for &batch in &[32usize, 128, 640] {
        let mut cfg = base.clone();
        cfg.batch_size = batch;
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::new("lstm_batch", batch), &batch, |bench, _| {
            // One optimizer step over a fresh model per iteration batch; the
            // measured quantity matches Fig 10's us/sample once divided by
            // the batch size (criterion reports per-element throughput).
            let take = batch.min(ts.len());
            let sub = TrainingSet {
                contexts: ts.contexts.clone(),
                instances: ts.instances[..take].to_vec(),
                max_car_id: ts.max_car_id,
            };
            let mut model = RankModel::new(cfg.clone(), TargetKind::RankOnly, sub.max_car_id);
            bench.iter(|| {
                let report = model.train(&sub, &sub);
                std::hint::black_box(report.us_per_sample)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training_step);
criterion_main!(benches);
