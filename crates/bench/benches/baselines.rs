//! Classical-baseline fitting throughput: the models of the paper's
//! Table III under the workloads the evaluation uses.

use criterion::{criterion_group, criterion_main, Criterion};
use rpf_baselines::forest::{ForestConfig, RandomForest};
use rpf_baselines::gbt::{GbtConfig, GradientBoostedTrees};
use rpf_baselines::svr::{Svr, SvrConfig};
use rpf_baselines::Arima;

fn synthetic_regression(n: usize, d: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<f32>) {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 40) as f32 / (1u64 << 24) as f32
    };
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f32> = (0..d).map(|_| next()).collect();
        let target = row[0] * 3.0 - row[1] * row[1] + (row[2] > 0.5) as i32 as f32;
        x.push(row);
        y.push(target);
    }
    (x, y)
}

fn bench_fits(c: &mut Criterion) {
    let (x, y) = synthetic_regression(2000, 9, 1);
    let mut group = c.benchmark_group("baseline_fit");
    group.sample_size(10);

    group.bench_function("random_forest_50_trees", |b| {
        b.iter(|| {
            std::hint::black_box(RandomForest::fit(
                &x,
                &y,
                &ForestConfig {
                    n_trees: 50,
                    ..Default::default()
                },
            ))
        });
    });
    group.bench_function("gbt_60_rounds", |b| {
        b.iter(|| {
            std::hint::black_box(GradientBoostedTrees::fit(
                &x,
                &y,
                &GbtConfig {
                    n_rounds: 60,
                    ..Default::default()
                },
            ))
        });
    });
    let (xs, ys) = synthetic_regression(600, 9, 2);
    group.bench_function("svr_smo_600_points", |b| {
        b.iter(|| {
            std::hint::black_box(Svr::fit(
                &xs,
                &ys,
                &SvrConfig {
                    max_passes: 25,
                    ..Default::default()
                },
            ))
        });
    });
    group.finish();
}

fn bench_arima(c: &mut Criterion) {
    // Per-car fit at forecast time, exactly the evaluation's workload.
    let series: Vec<f32> = (0..150)
        .map(|i| ((i as f32) * 0.3).sin() * 3.0 + 10.0 + (i % 7) as f32 * 0.1)
        .collect();
    c.bench_function("arima_fit_forecast_150", |b| {
        b.iter(|| {
            let model = Arima::fit(&series, 2, 0, 1).unwrap();
            std::hint::black_box(model.forecast(&series, 2))
        });
    });
}

criterion_group!(benches, bench_fits, bench_arima);
criterion_main!(benches);
