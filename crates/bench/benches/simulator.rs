//! Race-simulator throughput: full Table II races per second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ranknet_core::features::extract_sequences;
use rpf_racesim::{simulate_race, Event, EventConfig};

fn bench_simulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_race");
    for event in [Event::Indy500, Event::Iowa, Event::Texas] {
        let years = EventConfig::years(event);
        let cfg = EventConfig::for_race(event, years[0]);
        group.throughput(Throughput::Elements(
            cfg.total_laps as u64 * cfg.participants as u64,
        ));
        group.bench_with_input(
            BenchmarkId::new("event", event.name()),
            &cfg,
            |bench, cfg| {
                let mut seed = 0u64;
                bench.iter(|| {
                    seed += 1;
                    std::hint::black_box(simulate_race(cfg, seed))
                });
            },
        );
    }
    group.finish();
}

fn bench_featurize(c: &mut Criterion) {
    let race = simulate_race(&EventConfig::for_race(Event::Indy500, 2018), 7);
    c.bench_function("extract_sequences_indy500", |bench| {
        bench.iter(|| std::hint::black_box(extract_sequences(&race)));
    });
}

criterion_group!(benches, bench_simulate, bench_featurize);
criterion_main!(benches);
