//! Ablation targets for the design choices DESIGN.md calls out:
//! loss weighting (Fig 7 step 1), context length (step 2), the batch-size /
//! convergence trade-off (§IV-J), and transfer learning (§VI future work).

use crate::ascii::heading;
use crate::dataset::{event_data, full_dataset, one_event};
use crate::models::Profile;
use ranknet_core::baseline_adapters::CurRankForecaster;
use ranknet_core::eval::{eval_short_term, improvement};
use ranknet_core::instances::TrainingSet;
use ranknet_core::rank_model::{RankModel, TargetKind};
use ranknet_core::ranknet::{RankNet, RankNetVariant};
use ranknet_core::RankNetConfig;
use rpf_racesim::Event;
use std::sync::Arc;

/// Loss-weight sweep (Fig 7 step 1: "set optimal weight to 9").
pub fn weight_sweep(profile: &Profile) {
    heading("Ablation: loss weight for rank-change windows (Fig 7 step 1)");
    let d = one_event(Event::Indy500);
    let data = event_data(&d, Event::Indy500);
    let val = &data.val[0];
    let eval_cfg = profile.eval_cfg();
    let cur = eval_short_term(&CurRankForecaster, val, &eval_cfg);

    println!(
        "  {:>8} {:>12} {:>12} {:>14}",
        "weight", "all MAE", "pit MAE", "pit vs CurRank"
    );
    for weight in [1.0f32, 3.0, 6.0, 9.0] {
        let cfg = RankNetConfig {
            loss_weight: weight,
            max_epochs: profile.epochs,
            ..Default::default()
        };
        let (model, _) = RankNet::fit(
            data.train.clone(),
            data.val.clone(),
            cfg,
            RankNetVariant::Oracle,
            profile.stride,
        );
        let row = eval_short_term(&model, val, &eval_cfg);
        println!(
            "  {:>8.0} {:>12.2} {:>12.2} {:>13.0}%",
            weight,
            row.all.mae,
            row.pit_covered.mae,
            100.0 * improvement(cur.pit_covered.mae, row.pit_covered.mae)
        );
    }
}

/// Context-length sweep (Fig 7 step 2: "set optimal length to 60").
pub fn context_sweep(profile: &Profile) {
    heading("Ablation: encoder context length (Fig 7 step 2)");
    let d = one_event(Event::Indy500);
    let data = event_data(&d, Event::Indy500);
    let val = &data.val[0];
    let eval_cfg = profile.eval_cfg();

    println!("  {:>8} {:>12} {:>12}", "context", "all MAE", "pit MAE");
    for context in [30usize, 40, 60, 80] {
        let cfg = RankNetConfig {
            context_len: context,
            max_epochs: profile.epochs,
            ..Default::default()
        };
        let (model, _) = RankNet::fit(
            data.train.clone(),
            data.val.clone(),
            cfg,
            RankNetVariant::Oracle,
            profile.stride,
        );
        let row = eval_short_term(&model, val, &eval_cfg);
        println!(
            "  {:>8} {:>12.2} {:>12.2}",
            context, row.all.mae, row.pit_covered.mae
        );
    }
}

/// Batch-size vs convergence (§IV-J: "model trained with large batch
/// size=3200 (under a larger learning rate) obtains the same level of
/// validation loss ... by using about 4x epochs").
pub fn batch_accuracy(profile: &Profile) {
    heading("Ablation: batch size vs convergence (§IV-J)");
    let d = one_event(Event::Indy500);
    let data = event_data(&d, Event::Indy500);
    // A reduced epoch base: the x4 multiplier at batch 3200 makes full-depth
    // runs hours-long, and the trade-off shape shows at any depth.
    let base = RankNetConfig {
        max_epochs: (profile.epochs / 3).max(2),
        ..Default::default()
    };
    let ts = TrainingSet::build(data.train.clone(), &base, profile.stride);
    let vs = TrainingSet::build(data.val.clone(), &base, profile.stride * 2);

    println!(
        "  {:>8} {:>8} {:>8} {:>12} {:>14} {:>12}",
        "batch", "lr", "epochs", "best val", "us/sample", "wall s"
    );
    for (batch, lr_scale, epoch_scale) in
        [(64usize, 1.0f32, 1usize), (640, 3.0, 2), (3200, 10.0, 4)]
    {
        let mut cfg = base.clone();
        cfg.batch_size = batch;
        cfg.learning_rate = 1e-3 * lr_scale;
        cfg.max_epochs = base.max_epochs * epoch_scale;
        let mut model = RankModel::new(cfg, TargetKind::RankOnly, ts.max_car_id);
        let report = model.train(&ts, &vs);
        println!(
            "  {:>8} {:>8.4} {:>8} {:>12.4} {:>14.1} {:>12.1}",
            batch,
            1e-3 * lr_scale,
            report.epochs_run,
            report.best_val_loss,
            report.us_per_sample,
            report.wall_s
        );
    }
    println!("  (larger batches are far cheaper per sample but need more epochs)");
}

/// Transfer learning (§VI): Indy500 model fine-tuned on Texas vs trained
/// from scratch on Texas vs zero-shot.
pub fn transfer(profile: &Profile) {
    heading("Extension: transfer learning Indy500 -> Texas (paper §VI future work)");
    let d = full_dataset();
    let indy = event_data(&d, Event::Indy500);
    let texas = event_data(&d, Event::Texas);
    let test = &texas.test.iter().find(|(y, _)| *y == 2019).unwrap().1;
    let eval_cfg = profile.eval_cfg();
    let cur = eval_short_term(&CurRankForecaster, test, &eval_cfg);

    let cfg = RankNetConfig {
        max_epochs: profile.epochs,
        ..Default::default()
    };

    // Zero-shot: Indy500 weights applied to Texas directly.
    let (mut indy_model, _) = RankNet::fit(
        indy.train.clone(),
        indy.val.clone(),
        cfg.clone(),
        RankNetVariant::Mlp,
        profile.stride,
    );
    let zero_shot = eval_short_term(&indy_model, test, &eval_cfg);

    // Fine-tuned: a few extra epochs on Texas at reduced LR.
    let _ = indy_model.fine_tune(
        texas.train.clone(),
        texas.val.clone(),
        (profile.epochs / 2).max(2),
        profile.stride,
    );
    let tuned = eval_short_term(&indy_model, test, &eval_cfg);

    // From scratch on Texas only.
    let (scratch, _) = RankNet::fit(
        texas.train.clone(),
        texas.val.clone(),
        cfg,
        RankNetVariant::Mlp,
        profile.stride,
    );
    let scratch_row = eval_short_term(&scratch, test, &eval_cfg);

    println!(
        "  {:>24} {:>10} {:>10} {:>16}",
        "model", "all MAE", "pit MAE", "pit vs CurRank"
    );
    for (label, row) in [
        ("CurRank", &cur),
        ("Indy500 zero-shot", &zero_shot),
        ("Indy500 + fine-tune", &tuned),
        ("Texas from scratch", &scratch_row),
    ] {
        println!(
            "  {:>24} {:>10.2} {:>10.2} {:>15.0}%",
            label,
            row.all.mae,
            row.pit_covered.mae,
            100.0 * improvement(cur.pit_covered.mae, row.pit_covered.mae)
        );
    }
}

use rand::rngs::StdRng;
use rand::SeedableRng;
use ranknet_core::baseline_adapters::{ArimaForecaster, Forecaster};
use ranknet_core::config::Likelihood;
use ranknet_core::metrics::{interval_coverage, mean_crps, quantile};
use ranknet_core::ranknet::ranks_by_sorting;

/// Likelihood ablation: Gaussian vs Student-t output head (this
/// reproduction's extension — heavy tails for the pit-stop jumps).
pub fn likelihood_ablation(profile: &Profile) {
    heading("Extension: output likelihood ablation (Gaussian vs Student-t)");
    let d = one_event(Event::Indy500);
    let data = event_data(&d, Event::Indy500);
    let test = &data.test.iter().find(|(y, _)| *y == 2019).unwrap().1;
    let eval_cfg = profile.eval_cfg();

    println!(
        "  {:>14} {:>10} {:>10} {:>10} {:>10}",
        "likelihood", "all MAE", "pit MAE", "90-risk", "90% cover"
    );
    for (label, lik) in [
        ("Gaussian", Likelihood::Gaussian),
        ("Student-t(5)", Likelihood::StudentT(5.0)),
    ] {
        let cfg = RankNetConfig {
            likelihood: lik,
            max_epochs: profile.epochs,
            ..Default::default()
        };
        let (model, _) = RankNet::fit(
            data.train.clone(),
            data.val.clone(),
            cfg,
            RankNetVariant::Oracle,
            profile.stride,
        );
        let row = eval_short_term(&model, test, &eval_cfg);
        let cov = coverage_of(&model, test, &eval_cfg);
        println!(
            "  {:>14} {:>10.2} {:>10.2} {:>10.3} {:>9.0}%",
            label,
            row.all.mae,
            row.pit_covered.mae,
            row.all.risk90,
            cov * 100.0
        );
    }
}

/// Calibration report: 90%-interval coverage and CRPS for the probabilistic
/// forecasters (beyond the paper's ρ-risk).
pub fn calibration(profile: &Profile) {
    heading("Extension: forecast calibration (90% interval coverage, CRPS)");
    let d = one_event(Event::Indy500);
    let data = event_data(&d, Event::Indy500);
    let test = &data.test.iter().find(|(y, _)| *y == 2019).unwrap().1;
    let eval_cfg = profile.eval_cfg();

    let mlp = crate::models::ranknet_for(
        profile,
        Event::Indy500,
        &data.train,
        &data.val,
        RankNetVariant::Mlp,
    );
    println!("  {:>14} {:>12} {:>10}", "model", "90% cover", "CRPS");
    let arima = ArimaForecaster::default();
    for (label, model) in [
        ("ARIMA", &arima as &dyn Forecaster),
        ("RankNet-MLP", &*mlp as &dyn Forecaster),
    ] {
        let (cov, crps) = coverage_and_crps(model, test, &eval_cfg);
        println!("  {:>14} {:>11.0}% {:>10.3}", label, cov * 100.0, crps);
    }
    println!("  (well-calibrated 90% bands cover ~90%; lower CRPS = sharper + better centered)");
}

fn coverage_of(
    model: &dyn Forecaster,
    ctx: &ranknet_core::features::RaceContext,
    cfg: &ranknet_core::eval::EvalConfig,
) -> f32 {
    coverage_and_crps(model, ctx, cfg).0
}

fn coverage_and_crps(
    model: &dyn Forecaster,
    ctx: &ranknet_core::features::RaceContext,
    cfg: &ranknet_core::eval::EvalConfig,
) -> (f32, f32) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut samples_per_point: Vec<Vec<f32>> = Vec::new();
    let mut actuals: Vec<f32> = Vec::new();
    let step = cfg.horizon - 1;
    let mut origin = cfg.origin_start;
    while origin + cfg.horizon <= ctx.total_laps {
        let samples = model.forecast(ctx, origin, cfg.horizon, cfg.n_samples, &mut rng);
        let ranked = ranks_by_sorting(&samples, step);
        for (c, seq) in ctx.sequences.iter().enumerate() {
            if ranked[c].is_empty() || seq.len() <= origin + step {
                continue;
            }
            let _ = quantile(&ranked[c], 0.5); // sanity: non-empty
            samples_per_point.push(ranked[c].clone());
            actuals.push(seq.rank[origin + step]);
        }
        origin += cfg.origin_step;
    }
    (
        interval_coverage(&samples_per_point, &actuals, 0.05),
        mean_crps(&samples_per_point, &actuals),
    )
}

/// `engine` target: run the deterministic forecast engine down the repro
/// path — a batched multi-origin sweep at several thread counts, checking
/// bitwise sample identity between settings and reporting the per-phase
/// timing split that the criterion bench measures in isolation. A second
/// pass over the same batch shows the encoder-cache amortisation.
pub fn engine_report(profile: &Profile) {
    use ranknet_core::engine::{ForecastEngine, ForecastRequest};

    heading("Forecast engine: batched sweep, thread invariance, phase timings");
    let d = one_event(Event::Indy500);
    let data = event_data(&d, Event::Indy500);
    let test = &data.test.iter().find(|(y, _)| *y == 2019).unwrap().1;
    let model = crate::models::ranknet_for(
        profile,
        Event::Indy500,
        &data.train,
        &data.val,
        RankNetVariant::Mlp,
    );

    let requests: Vec<ForecastRequest> = (25..test.total_laps - 2)
        .step_by((profile.origin_step * 4).max(1))
        .map(|origin| ForecastRequest {
            race: 0,
            origin,
            horizon: 2,
            n_samples: profile.n_samples,
        })
        .collect();
    println!(
        "  batch: {} origins × {} samples, two-lap horizon, Indy500-2019",
        requests.len(),
        profile.n_samples
    );

    println!(
        "  {:>7} {:>11} {:>11} {:>11} {:>11} {:>12} {:>9}",
        "threads", "encode ms", "cov ms", "decode ms", "reuse ms", "traj/s", "bitwise"
    );
    let mut reference: Option<Vec<u32>> = None;
    for threads in [1usize, 2, 4, 8] {
        let engine = ForecastEngine::new(Arc::clone(&model), 7).with_threads(threads);
        let cold = engine.forecast_batch(&[test], &requests);
        let first = engine.timings();
        engine.reset_timings();
        // Same batch again: every origin now hits the encoder cache.
        let _warm = engine.forecast_batch(&[test], &requests);
        let second = engine.timings();

        let bits: Vec<u32> = cold
            .iter()
            .flatten()
            .flatten()
            .flatten()
            .map(|v| v.to_bits())
            .collect();
        let identical = match &reference {
            None => {
                reference = Some(bits);
                true
            }
            Some(r) => *r == bits,
        };
        println!(
            "  {:>7} {:>11.1} {:>11.1} {:>11.1} {:>11.1} {:>12.0} {:>9}",
            threads,
            first.encode.as_secs_f64() * 1e3,
            first.covariates.as_secs_f64() * 1e3,
            first.decode.as_secs_f64() * 1e3,
            second.encode.as_secs_f64() * 1e3,
            first.trajectories_per_sec(),
            if identical { "yes" } else { "NO" }
        );
        assert_eq!(
            second.encoder_reuses,
            requests.len() as u64,
            "warm pass must hit the cache"
        );
        assert!(identical, "engine samples must not depend on thread count");
    }
    println!("  (reuse ms: encoder time on a second pass over the batch — all cache hits)");
}
