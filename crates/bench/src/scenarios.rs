//! Cross-scenario benchmark: the paper's stint-level metrics (Table VI's
//! SignAcc / MAE) for each model family, on each scenario family of the
//! simulator's scenario engine.
//!
//! Two contracts anchor the table:
//!
//! * the IndyCar column runs on **exactly** the Table VI data path — the
//!   same `one_event(Indy500)` dataset, the same 2019 test race, the same
//!   halved-sample eval config, and the same cached models — so its
//!   CurRank / XGBoost / RankNet-MLP numbers reproduce `repro table6`
//!   to the bit;
//! * the synthetic families (tyre strategy, caution regime, wet/dry) are
//!   deterministic from `(ScenarioConfig, DATASET_SEED)`, and their
//!   RankNet is trained with `use_scenario_features = true`, exercising
//!   the scenario covariate path end to end.
//!
//! Besides the ASCII table, every cell is emitted as a machine-parseable
//! stdout line — `scenario <family> model=<name> sign_acc=<v> mae=<v>
//! n=<v>` — which `scripts/bench_snapshot.sh scenarios` turns into
//! `BENCH_<date>_scenarios.json`.

use crate::ascii;
use crate::dataset::{event_data, one_event, DATASET_SEED};
use crate::models::{self, Profile};
use ranknet_core::baseline_adapters::{
    ArimaForecaster, CurRankForecaster, Forecaster, RegKind, RegressionForecaster,
};
use ranknet_core::eval::{eval_stint, StintRow};
use ranknet_core::features::{extract_sequences, RaceContext};
use ranknet_core::ranknet::{RankNet, RankNetVariant};
use rpf_racesim::{generate_races, Event, ScenarioConfig, ScenarioFamily};

/// One scenario family's evaluated rows (model order: CurRank, ARIMA,
/// GBT, RankNet-MLP).
pub struct FamilyResult {
    pub family: ScenarioFamily,
    pub rows: Vec<StintRow>,
}

/// A profile small enough for the CI smoke gate: tiny training budget,
/// sparse windows, few forecast samples. The table is statistically
/// meaningless at this size — the gate checks wiring, not accuracy.
pub fn smoke_profile() -> Profile {
    Profile {
        stride: 48,
        epochs: 2,
        n_samples: 8,
        origin_step: 24,
        tx_stride: 64,
        tx_epochs: 1,
    }
}

/// Deterministic train/val/test split for one synthetic family:
/// `n_train + 2` races from the family's standard config, seeded off the
/// shared dataset seed, last two held out as validation and test.
fn scenario_split(
    family: ScenarioFamily,
    n_train: usize,
) -> (Vec<RaceContext>, Vec<RaceContext>, RaceContext) {
    let cfg = ScenarioConfig::standard(family, Event::Indy500, 2018);
    let races = generate_races(&cfg, DATASET_SEED, n_train + 2);
    let mut ctxs: Vec<RaceContext> = races.iter().map(extract_sequences).collect();
    let test = ctxs.pop().expect("split always has a test race");
    let val = ctxs.pop().expect("split always has a val race");
    (ctxs, vec![val], test)
}

/// Evaluate the four model families on one synthetic scenario family.
fn eval_synthetic_family(profile: &Profile, family: ScenarioFamily) -> FamilyResult {
    let n_train = if profile.stride >= 24 { 1 } else { 3 };
    let (train, val, test) = scenario_split(family, n_train);
    let mut eval_cfg = profile.eval_cfg();
    eval_cfg.n_samples = (eval_cfg.n_samples / 2).max(8); // long horizons, as Table VI

    let mut rows = Vec::new();
    rows.push(eval_stint(&CurRankForecaster, &test, &eval_cfg));
    rows.push(eval_stint(&ArimaForecaster::default(), &test, &eval_cfg));
    let gbt = RegressionForecaster::fit(RegKind::Gbt, &train, 8, (profile.stride * 2).max(4), 0);
    eprintln!("  [train] {} ({})", gbt.name(), family.name());
    rows.push(eval_stint(&gbt, &test, &eval_cfg));

    // The deep model sees the scenario covariates: this is the end-to-end
    // exercise of the widened feature schema (config flag -> encoder rows
    // -> scenario-aware pit model).
    let mut cfg = profile.model_cfg();
    cfg.use_scenario_features = true;
    let (ranknet, report) = RankNet::fit(train, val, cfg, RankNetVariant::Mlp, profile.stride);
    eprintln!(
        "  [train] {} ({}) epochs={} best_val={:.4}",
        RankNetVariant::Mlp.name(),
        family.name(),
        report.rank_model.epochs_run,
        report.rank_model.best_val_loss
    );
    rows.push(eval_stint(&ranknet, &test, &eval_cfg));
    FamilyResult { family, rows }
}

/// Evaluate the four model families on the IndyCar baseline via the exact
/// Table VI path: same dataset, same test race, same model caches.
fn eval_indycar_family(profile: &Profile) -> FamilyResult {
    let d = one_event(Event::Indy500);
    let data = event_data(&d, Event::Indy500);
    let test = &data
        .test
        .iter()
        .find(|(y, _)| *y == 2019)
        .expect("Indy500 test split includes 2019")
        .1;
    let mut eval_cfg = profile.eval_cfg();
    eval_cfg.n_samples = (eval_cfg.n_samples / 2).max(8); // long horizons, as Table VI

    let mut rows = Vec::new();
    rows.push(eval_stint(&CurRankForecaster, test, &eval_cfg));
    rows.push(eval_stint(&ArimaForecaster::default(), test, &eval_cfg));
    let regs = models::regressors_for(profile, Event::Indy500, &data.train, 8);
    let gbt = regs
        .iter()
        .find(|r| r.name() == "XGBoost")
        .expect("regressor set includes the GBT model");
    rows.push(eval_stint(gbt, test, &eval_cfg));
    let ranknet = models::ranknet_for(
        profile,
        Event::Indy500,
        &data.train,
        &data.val,
        RankNetVariant::Mlp,
    );
    rows.push(eval_stint(&*ranknet, test, &eval_cfg));
    FamilyResult {
        family: ScenarioFamily::IndyCar,
        rows,
    }
}

/// Run the full cross-scenario sweep: every model family x every scenario
/// family, IndyCar first (on the Table VI path).
pub fn run_cross_scenario(profile: &Profile) -> Vec<FamilyResult> {
    ScenarioFamily::ALL
        .iter()
        .map(|&family| match family {
            ScenarioFamily::IndyCar => eval_indycar_family(profile),
            other => eval_synthetic_family(profile, other),
        })
        .collect()
}

fn f2(v: f32) -> String {
    format!("{v:.2}")
}

/// The `repro scenarios` target: print the cross-scenario table and the
/// machine-parseable per-cell lines.
pub fn scenarios(profile: &Profile) {
    println!();
    println!("Cross-scenario benchmark: stint forecasting (SignAcc / MAE) per scenario family");
    println!("(IndyCar column = the Table VI data path; see EXPERIMENTS.md)");
    let results = run_cross_scenario(profile);

    let mut out = vec![vec![
        "Scenario".into(),
        "Model".into(),
        "SignAcc".into(),
        "MAE".into(),
        "50-Risk".into(),
        "90-Risk".into(),
        "n".into(),
    ]];
    for fr in &results {
        for row in &fr.rows {
            out.push(vec![
                fr.family.name().into(),
                row.model.clone(),
                f2(row.sign_acc),
                f2(row.mae),
                f2(row.risk50),
                f2(row.risk90),
                row.n.to_string(),
            ]);
        }
    }
    ascii::table(&out);

    for fr in &results {
        for row in &fr.rows {
            println!(
                "scenario {} model={} sign_acc={:.4} mae={:.4} n={}",
                fr.family.name(),
                row.model,
                row.sign_acc,
                row.mae,
                row.n
            );
        }
    }
}
