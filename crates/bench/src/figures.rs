//! Figure targets: Figs 1–12 of the paper, rendered as text series.

use crate::ascii::{self, heading};
use crate::dataset::{event_data, full_dataset, one_event, DATASET_SEED};
use crate::models::{self, Profile};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ranknet_core::baseline_adapters::{ArimaForecaster, CurRankForecaster, Forecaster};
use ranknet_core::eval::{eval_short_term, prediction_length_sweep, EvalConfig};
use ranknet_core::features::RaceContext;
use ranknet_core::instances::TrainingSet;
use ranknet_core::metrics::quantile;
use ranknet_core::rank_model::{RankModel, TargetKind};
use ranknet_core::ranknet::{ranks_by_sorting, RankNetVariant};
use ranknet_core::transformer_model::TransformerForecaster;
use ranknet_core::RankNetConfig;
use rpf_perfmodel::{hybrid_breakdown, Device, LstmWorkload, Roofline};
use rpf_racesim::{simulate_race, stats, Event, EventConfig};

/// Fig 1: data examples — records table and the winner's rank/laptime
/// sequence.
pub fn fig1(_profile: &Profile) {
    heading("Fig 1(a): Data records of Indy500-2018 (lap 31)");
    let race = simulate_race(
        &EventConfig::for_race(Event::Indy500, 2018),
        DATASET_SEED ^ 2018,
    );
    println!("  Rank CarId  Lap   LapTime  BehindLeader LapStatus TrackStatus");
    for rec in race.records.iter().filter(|r| r.lap == 31).take(8) {
        println!("  {}", rec.display_row());
    }

    heading("Fig 1(b): Rank and LapTime sequence of the winner");
    let winner = race.winner();
    let recs = race.car_records(winner);
    println!("  winner: car {winner}");
    let pts: Vec<(f64, f64)> = recs
        .iter()
        .step_by(10)
        .map(|r| (r.lap as f64, r.rank as f64))
        .collect();
    ascii::series("Rank", &pts, "lap", "rank");
    let pit_laps: Vec<u16> = recs
        .iter()
        .filter(|r| r.lap_status.is_pit())
        .map(|r| r.lap)
        .collect();
    println!("  pit stop laps: {pit_laps:?}");
    let caution: usize = race.caution_lap_count();
    println!("  caution laps: {caution}");
}

/// Shared trace printer: forecasts around a pit stop (Figs 2 and 8).
fn forecast_trace(
    model: &dyn Forecaster,
    ctx: &RaceContext,
    car_slot: usize,
    origins: impl Iterator<Item = usize>,
    n_samples: usize,
) {
    println!(
        "  {:>5} {:>9} {:>9} {:>9} {:>9}",
        "lap", "observed", "median", "q10", "q90"
    );
    let mut rng = StdRng::seed_from_u64(5);
    for origin in origins {
        let seq = &ctx.sequences[car_slot];
        if seq.len() < origin + 2 {
            continue;
        }
        let samples = model.forecast(ctx, origin, 2, n_samples, &mut rng);
        let ranked = ranks_by_sorting(&samples, 1);
        if ranked[car_slot].is_empty() {
            continue;
        }
        let med = quantile(&ranked[car_slot], 0.5);
        let q10 = quantile(&ranked[car_slot], 0.1);
        let q90 = quantile(&ranked[car_slot], 0.9);
        println!(
            "  {:>5} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            seq.laps[origin + 1],
            seq.rank[origin + 1],
            med,
            q10,
            q90
        );
    }
}

/// Pick the display car: the one nearest mid-field with a pit stop in the
/// window (the paper uses car 12 of Indy500-2019).
fn display_car(ctx: &RaceContext, lo: usize, hi: usize) -> usize {
    (0..ctx.sequences.len())
        .filter(|&c| {
            let s = &ctx.sequences[c];
            s.len() > hi && (lo..hi).any(|i| s.lap_status[i] == 1.0)
        })
        .min_by_key(|&c| (ctx.sequences[c].rank[lo] as i32 - 8).unsigned_abs())
        .unwrap_or(0)
}

/// Fig 2: two-lap forecasts around a pit stop for the four baselines.
pub fn fig2(profile: &Profile) {
    heading("Fig 2: Baseline forecasts around a pit stop (Indy500-2019)");
    let d = one_event(Event::Indy500);
    let data = event_data(&d, Event::Indy500);
    let test = &data.test.iter().find(|(y, _)| *y == 2019).unwrap().1;
    let car = display_car(test, 30, 56);
    println!("  display car: id {}", test.sequences[car].car_id);

    let regs = models::regressors_for(profile, Event::Indy500, &data.train, 2);
    let deepar = models::deepar_for(profile, Event::Indy500, &data.train, &data.val);

    let svm = regs.iter().find(|m| m.name() == "SVM").unwrap();
    let forest = regs.iter().find(|m| m.name() == "RandomForest").unwrap();
    for (label, model) in [
        ("SVR", svm as &dyn Forecaster),
        ("RandomForest", forest as &dyn Forecaster),
        ("ARIMA", &ArimaForecaster::default() as &dyn Forecaster),
        ("DeepAR", &*deepar as &dyn Forecaster),
    ] {
        println!("  --- {label} ---");
        forecast_trace(model, test, car, (26..56).step_by(3), profile.n_samples);
    }
}

/// Fig 4: pit stop statistics over the Indy500 training years.
pub fn fig4(_profile: &Profile) {
    heading("Fig 4: Statistics and analysis of pit stops (Indy500 training set)");
    let d = one_event(Event::Indy500);
    let mut stops = Vec::new();
    for (key, race) in d.split(Event::Indy500, rpf_racesim::Split::Training) {
        let _ = key;
        stops.extend(stats::pit_stops(race));
    }
    let summary = stats::summarize_pits(&stops);
    println!(
        "  normal pits: {}   caution pits: {}",
        summary.normal_count, summary.caution_count
    );

    println!("\n  (a) stint distance distribution (5-lap buckets)");
    let normal: Vec<f32> = stops
        .iter()
        .filter(|p| !p.caution)
        .map(|p| p.stint_length as f32)
        .collect();
    let caution: Vec<f32> = stops
        .iter()
        .filter(|p| p.caution)
        .map(|p| p.stint_length as f32)
        .collect();
    let hn = stats::histogram(normal.iter().copied(), 55.0, 5.0);
    let hc = stats::histogram(caution.iter().copied(), 55.0, 5.0);
    println!("  {:>8} {:>10} {:>12}", "laps", "normal", "caution");
    for (i, (n, c)) in hn.iter().zip(&hc).enumerate() {
        println!("  {:>5}-{:<2} {:>10} {:>12}", i * 5, (i + 1) * 5, n, c);
    }

    println!("\n  (b) stint distance CDF (normal pits)");
    let cdf = stats::empirical_cdf(&normal, 50);
    for x in (0..=50).step_by(10) {
        println!("  <= {:>2} laps: {:>5.1}%", x, cdf[x] * 100.0);
    }

    println!("\n  (c) pit stop distribution across race laps (20-lap buckets)");
    let hl = stats::histogram(stops.iter().map(|p| p.lap as f32), 200.0, 20.0);
    for (i, n) in hl.iter().enumerate() {
        println!("  {:>5}-{:<3} {:>8}", i * 20, (i + 1) * 20, n);
    }

    println!("\n  (d) rank-change impact");
    println!(
        "  mean |rank change|: normal {:.1}  caution {:.1}  (caution pits are cheaper)",
        summary.normal_rank_impact, summary.caution_rank_impact
    );
    println!(
        "  short (<24 lap) normal stints: {:.1}%",
        100.0 * summary.short_stint_fraction
    );
}

/// Fig 6: dataset distribution scatter.
pub fn fig6(_profile: &Profile) {
    heading("Fig 6: Data distribution of the IndyCar dataset");
    let d = full_dataset();
    let mut rows = vec![vec![
        "Race".into(),
        "PitLapsRatio".into(),
        "RankChangesRatio".into(),
        "Split".into(),
    ]];
    for key in d.keys() {
        let race = d.get(key).unwrap();
        rows.push(vec![
            key.label(),
            format!("{:.3}", stats::pit_laps_ratio(race)),
            format!("{:.3}", stats::rank_changes_ratio(race)),
            format!("{:?}", rpf_racesim::dataset::split_of(key)),
        ]);
    }
    ascii::table(&rows);
}

/// Fig 7: stepwise model optimisation (validation pit-lap MAE per step).
pub fn fig7(profile: &Profile) {
    heading("Fig 7: RankNet model optimization steps (validation = Indy500-2018)");
    let d = one_event(Event::Indy500);
    let data = event_data(&d, Event::Indy500);
    let val = &data.val[0];
    let eval_cfg = EvalConfig {
        horizon: 2,
        n_samples: profile.n_samples,
        origin_start: 25,
        origin_step: profile.origin_step,
        seed: 7,
    };

    struct Step {
        label: &'static str,
        cfg: RankNetConfig,
    }
    let base = RankNetConfig {
        max_epochs: profile.epochs,
        ..Default::default()
    };
    let steps = vec![
        Step {
            label: "(a) basic Oracle (w=1, ctx=40, no extras)",
            cfg: RankNetConfig {
                loss_weight: 1.0,
                context_len: 40,
                use_context_features: false,
                use_shift_features: false,
                ..base.clone()
            },
        },
        Step {
            label: "(b) + loss weights (w=9)",
            cfg: RankNetConfig {
                context_len: 40,
                use_context_features: false,
                use_shift_features: false,
                ..base.clone()
            },
        },
        Step {
            label: "(c) + context length 60",
            cfg: RankNetConfig {
                use_context_features: false,
                use_shift_features: false,
                ..base.clone()
            },
        },
        Step {
            label: "(d) + context features",
            cfg: RankNetConfig {
                use_shift_features: false,
                ..base.clone()
            },
        },
        Step {
            label: "(e) + shift features",
            cfg: base.clone(),
        },
    ];

    let mut results = Vec::new();
    for step in steps {
        let (model, _) = ranknet_core::ranknet::RankNet::fit(
            data.train.clone(),
            data.val.clone(),
            step.cfg,
            RankNetVariant::Oracle,
            profile.stride,
        );
        let row = eval_short_term(&model, val, &eval_cfg);
        println!(
            "  {:<45} pit-lap MAE {:.2}  all-lap MAE {:.2}",
            step.label, row.pit_covered.mae, row.all.mae
        );
        results.push((step.label, row.pit_covered.mae));
    }
    let cur = eval_short_term(&CurRankForecaster, val, &eval_cfg);
    println!(
        "  {:<45} pit-lap MAE {:.2}  (reference)",
        "CurRank", cur.pit_covered.mae
    );
}

/// Fig 8: RankNet vs Transformer forecast traces.
pub fn fig8(profile: &Profile) {
    heading("Fig 8: RankNet vs Transformer two-lap forecasts (Indy500-2019)");
    let d = one_event(Event::Indy500);
    let data = event_data(&d, Event::Indy500);
    let test = &data.test.iter().find(|(y, _)| *y == 2019).unwrap().1;
    let car = display_car(test, 30, 56);
    println!("  display car: id {}", test.sequences[car].car_id);

    let oracle = models::ranknet_for(
        profile,
        Event::Indy500,
        &data.train,
        &data.val,
        RankNetVariant::Oracle,
    );
    let mlp = models::ranknet_for(
        profile,
        Event::Indy500,
        &data.train,
        &data.val,
        RankNetVariant::Mlp,
    );
    let tx = models::train_transformer(profile, &data.train, &data.val);
    let tx_oracle = TransformerForecaster {
        model: tx,
        pit_model: None,
    };

    for (label, model) in [
        ("RankNet-Oracle", &*oracle as &dyn Forecaster),
        ("RankNet-MLP", &*mlp as &dyn Forecaster),
        ("Transformer-Oracle", &tx_oracle as &dyn Forecaster),
    ] {
        println!("  --- {label} ---");
        forecast_trace(
            model,
            test,
            car,
            (26..56).step_by(3),
            (profile.n_samples / 2).max(6),
        );
    }
}

/// Fig 9: MAE improvement over CurRank vs prediction length.
pub fn fig9(profile: &Profile) {
    heading("Fig 9: Impact of prediction length (MAE improvement % over CurRank, Indy500-2019)");
    let d = one_event(Event::Indy500);
    let data = event_data(&d, Event::Indy500);
    let test = &data.test.iter().find(|(y, _)| *y == 2019).unwrap().1;
    let horizons = [2usize, 4, 6, 8];
    let mut eval_cfg = profile.eval_cfg();
    eval_cfg.origin_step = eval_cfg.origin_step.max(8); // sweep is 4x the work
    eval_cfg.n_samples = (eval_cfg.n_samples / 2).max(8);

    let oracle = models::ranknet_for(
        profile,
        Event::Indy500,
        &data.train,
        &data.val,
        RankNetVariant::Oracle,
    );
    let mlp = models::ranknet_for(
        profile,
        Event::Indy500,
        &data.train,
        &data.val,
        RankNetVariant::Mlp,
    );
    let regs = models::regressors_for(profile, Event::Indy500, &data.train, 8);

    let mut all_rows = vec![vec![
        "Model".into(),
        "k=2".into(),
        "k=4".into(),
        "k=6".into(),
        "k=8".into(),
    ]];
    let mut row_for = |name: &str, model: &dyn Forecaster| {
        let pts = prediction_length_sweep(model, test, &horizons, &eval_cfg);
        let mut row = vec![name.to_string()];
        for (_, imp) in pts {
            row.push(format!("{:+.0}%", imp * 100.0));
        }
        all_rows.push(row);
    };
    row_for("RankNet-Oracle", &*oracle);
    row_for("RankNet-MLP", &*mlp);
    for reg in regs.iter() {
        if reg.name() != "SVM" {
            row_for(&reg.name(), reg);
        }
    }
    ascii::table(&all_rows);
}

/// Fig 10: training speed vs batch size — measured CPU + modeled devices.
pub fn fig10(profile: &Profile) {
    heading("Fig 10: Impact of batch size over training speed (us/sample)");
    let batches = [32usize, 64, 128, 256, 640, 1600, 3200];

    // Measured: the real Rust LSTM training on this machine.
    let d = one_event(Event::Indy500);
    let data = event_data(&d, Event::Indy500);
    let cfg = RankNetConfig {
        max_epochs: 1,
        ..Default::default()
    };
    let ts = TrainingSet::build(data.train.clone(), &cfg, profile.stride.max(4));
    println!("  measured (this machine, {} training windows):", ts.len());
    let mut measured = Vec::new();
    for &b in &batches {
        let mut cfg = cfg.clone();
        cfg.batch_size = b;
        // Keep wall time bounded: a couple of optimizer steps are enough for
        // throughput. The validation set is left empty so the measurement is
        // pure train-step time (validation is a fixed cost that would
        // otherwise be charged against the large-batch runs).
        let take = (2 * b).max(256).min(ts.len());
        let sub = TrainingSet {
            contexts: ts.contexts.clone(),
            instances: ts.instances[..take].to_vec(),
            max_car_id: ts.max_car_id,
        };
        let empty_val = TrainingSet {
            contexts: ts.contexts.clone(),
            instances: Vec::new(),
            max_car_id: ts.max_car_id,
        };
        let mut model = RankModel::new(cfg, TargetKind::RankOnly, sub.max_car_id);
        let report = model.train(&sub, &empty_val);
        measured.push((format!("batch {b}"), report.us_per_sample));
    }
    ascii::bars(&measured, "us/sample");

    println!("\n  device models (Table VIII hardware):");
    println!(
        "  {:>6} {:>12} {:>12} {:>12} {:>12}",
        "batch", "CPU", "GPU", "GPU-cuDNN", "VE"
    );
    for &b in &batches {
        let w = LstmWorkload::default().with_batch(b);
        println!(
            "  {:>6} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            b,
            Device::cpu().us_per_sample(&w),
            Device::gpu().us_per_sample(&w),
            Device::gpu_cudnn().us_per_sample(&w),
            Device::vector_engine().us_per_sample(&w),
        );
    }
}

/// Fig 11: roofline of the LSTM kernels at batch 32 vs 3200.
pub fn fig11() {
    heading("Fig 11: Roofline chart of RankNet on the CPU platform");
    let roof = Roofline::cpu();
    println!("  ceilings:");
    for (label, bw) in &roof.bandwidths {
        println!("    {label}: {:.0} GB/s", bw / 1e9);
    }
    for (label, p) in &roof.peaks {
        println!("    {label}: {:.1} GFLOP/s", p / 1e9);
    }
    let cpu = Device::cpu();
    for batch in [32usize, 3200] {
        println!("\n  kernels at batch {batch}:");
        println!(
            "    {:>8} {:>14} {:>12}",
            "kernel", "AI (FLOP/B)", "GFLOP/s"
        );
        for p in roof.points(&cpu, batch) {
            println!(
                "    {:>8} {:>14.3} {:>12.2}",
                p.kernel, p.arithmetic_intensity, p.gflops
            );
        }
    }
    println!("\n  (higher GFLOP/s at batch 3200 is why large-batch training wins)");
}

/// Fig 12: operation breakdown for the CPU+VE hybrid.
pub fn fig12() {
    heading("Fig 12: Operation breakdown, VE/CPU hybrid system");
    for batch in [32usize, 3200] {
        println!("\n  batch size = {batch}:");
        let slices = hybrid_breakdown(batch);
        let items: Vec<(String, f64)> = slices
            .iter()
            .map(|s| (s.label.to_string(), s.fraction * 100.0))
            .collect();
        ascii::bars(&items, "%");
        let off: f64 = slices
            .iter()
            .filter(|s| s.label.contains("(VE)"))
            .map(|s| s.fraction)
            .sum();
        println!("  offloaded to VE: {:.0}%", off * 100.0);
    }
}
