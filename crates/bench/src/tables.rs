//! Table targets: Tables II–VIII of the paper.

use crate::ascii::{self, f2, f3, heading};
use crate::dataset::{event_data, full_dataset, one_event};
use crate::models::{self, Profile};
use ranknet_core::baseline_adapters::{ArimaForecaster, CurRankForecaster};
use ranknet_core::eval::{
    eval_short_term, eval_stint, mae_improvement_pit_laps, ShortTermRow, StintRow,
};
use ranknet_core::ranknet::RankNetVariant;
use ranknet_core::transformer_model::TransformerForecaster;
use ranknet_core::RankNetConfig;
use rpf_perfmodel::Device;
use rpf_racesim::{Event, EventConfig};

/// Table II: dataset summary.
pub fn table2(_profile: &Profile) {
    heading("Table II: Summary of the data sets");
    let d = full_dataset();
    let mut rows = vec![vec![
        "Event".into(),
        "Years".into(),
        "TrackLen".into(),
        "Shape".into(),
        "Laps".into(),
        "AvgSpeed".into(),
        "Cars".into(),
        "#Records".into(),
        "Usage".into(),
    ]];
    for &event in &Event::ALL {
        for year in EventConfig::years(event) {
            let key = rpf_racesim::RaceKey::new(event, year);
            let race = d.get(key).unwrap();
            let cfg = &race.config;
            rows.push(vec![
                event.name().into(),
                year.to_string(),
                format!("{:.3}", cfg.track_length_miles),
                cfg.track_shape.clone(),
                cfg.total_laps.to_string(),
                format!("{:.0}mph", cfg.avg_speed_mph),
                cfg.participants.to_string(),
                race.records.len().to_string(),
                format!("{:?}", rpf_racesim::dataset::split_of(key)),
            ]);
        }
    }
    ascii::table(&rows);
    println!(
        "  total races: {}   total records: {}",
        d.len(),
        d.record_count()
    );
}

/// Table III: model feature matrix (static, from the paper).
pub fn table3() {
    heading("Table III: Features of the rank position forecasting models");
    ascii::table(&[
        vec![
            "Model".into(),
            "ReprLearning".into(),
            "Uncertainty".into(),
            "PitModel".into(),
        ],
        vec!["CurRank".into(), "N".into(), "N".into(), "N".into()],
        vec!["RandomForest".into(), "N".into(), "N".into(), "N".into()],
        vec!["SVM".into(), "N".into(), "N".into(), "N".into()],
        vec!["XGBoost".into(), "N".into(), "N".into(), "N".into()],
        vec!["ARIMA".into(), "N".into(), "Y".into(), "N".into()],
        vec!["DeepAR".into(), "Y".into(), "Y".into(), "N".into()],
        vec![
            "RankNet-Joint".into(),
            "Y".into(),
            "Y".into(),
            "Y (Joint Train)".into(),
        ],
        vec![
            "RankNet-MLP".into(),
            "Y".into(),
            "Y".into(),
            "Y (Decomposition)".into(),
        ],
        vec![
            "RankNet-Oracle".into(),
            "Y".into(),
            "Y".into(),
            "Y (Ground Truth)".into(),
        ],
    ]);
}

/// Table IV: dataset statistics and model parameters.
pub fn table4(profile: &Profile) {
    heading("Table IV: Dataset statistics and model parameters");
    let d = one_event(Event::Indy500);
    let data = event_data(&d, Event::Indy500);
    let cfg = RankNetConfig::default();
    let ts = ranknet_core::instances::TrainingSet::build(data.train.clone(), &cfg, 1);
    let model = ranknet_core::rank_model::RankModel::new(
        cfg.clone(),
        ranknet_core::rank_model::TargetKind::RankOnly,
        ts.max_car_id,
    );
    ascii::table(&[
        vec!["Parameter".into(), "Value".into()],
        vec![
            "# of time series (Indy500 train)".into(),
            (data.train.len() * 33).to_string(),
        ],
        vec![
            "# of training examples (stride 1)".into(),
            ts.len().to_string(),
        ],
        vec!["Granularity".into(), "Lap".into()],
        vec!["Encoder length".into(), cfg.context_len.to_string()],
        vec!["Decoder length k".into(), cfg.prediction_len.to_string()],
        vec!["Loss weight".into(), format!("{}", cfg.loss_weight)],
        vec!["Batch size".into(), cfg.batch_size.to_string()],
        vec!["Optimizer".into(), "ADAM".into()],
        vec!["Learning rate".into(), format!("{}", cfg.learning_rate)],
        vec!["LR decay factor".into(), "0.5".into()],
        vec!["# of LSTM layers".into(), cfg.num_layers.to_string()],
        vec!["# of LSTM nodes".into(), cfg.hidden_dim.to_string()],
        vec!["Model parameters".into(), model.num_params().to_string()],
        vec![
            "Profile (this run)".into(),
            format!("stride={} epochs={}", profile.stride, profile.epochs),
        ],
    ]);
}

fn short_term_table_rows(rows: &[ShortTermRow]) -> Vec<Vec<String>> {
    let mut out = vec![vec![
        "Model".into(),
        "Top1".into(),
        "MAE".into(),
        "50-R".into(),
        "90-R".into(),
        "| Top1".into(),
        "MAE".into(),
        "50-R".into(),
        "90-R".into(),
        "| Top1".into(),
        "MAE".into(),
        "50-R".into(),
        "90-R".into(),
    ]];
    for r in rows {
        out.push(vec![
            r.model.clone(),
            f2(r.all.top1_acc),
            f2(r.all.mae),
            f3(r.all.risk50),
            f3(r.all.risk90),
            format!("| {}", f2(r.normal.top1_acc)),
            f2(r.normal.mae),
            f3(r.normal.risk50),
            f3(r.normal.risk90),
            format!("| {}", f2(r.pit_covered.top1_acc)),
            f2(r.pit_covered.mae),
            f3(r.pit_covered.risk50),
            f3(r.pit_covered.risk90),
        ]);
    }
    out
}

/// Table V: short-term (k=2) forecasting on Indy500-2019, all nine models.
pub fn table5(profile: &Profile) {
    heading("Table V: Short-term rank position forecasting (k=2), Indy500-2019");
    println!("  columns: All Laps | Normal Laps | PitStop Covered Laps");
    let d = one_event(Event::Indy500);
    let data = event_data(&d, Event::Indy500);
    let test = &data.test.iter().find(|(y, _)| *y == 2019).unwrap().1;
    let eval_cfg = profile.eval_cfg();

    let mut rows: Vec<ShortTermRow> = Vec::new();
    rows.push(eval_short_term(&CurRankForecaster, test, &eval_cfg));
    rows.push(eval_short_term(
        &ArimaForecaster::default(),
        test,
        &eval_cfg,
    ));
    for reg in models::regressors_for(profile, Event::Indy500, &data.train, 2).iter() {
        rows.push(eval_short_term(reg, test, &eval_cfg));
    }
    let deepar = models::deepar_for(profile, Event::Indy500, &data.train, &data.val);
    rows.push(eval_short_term(&*deepar, test, &eval_cfg));
    for variant in [
        RankNetVariant::Joint,
        RankNetVariant::Mlp,
        RankNetVariant::Oracle,
    ] {
        let model = models::ranknet_for(profile, Event::Indy500, &data.train, &data.val, variant);
        rows.push(eval_short_term(&*model, test, &eval_cfg));
    }

    ascii::table(&short_term_table_rows(&rows));
    summarize_table5(&rows);
}

fn summarize_table5(rows: &[ShortTermRow]) {
    let get = |name: &str| rows.iter().find(|r| r.model == name);
    if let (Some(cur), Some(mlp), Some(oracle)) =
        (get("CurRank"), get("RankNet-MLP"), get("RankNet-Oracle"))
    {
        println!(
            "  MAE improvement over CurRank (all laps): MLP {:+.0}%  Oracle {:+.0}%",
            100.0 * (cur.all.mae - mlp.all.mae) / cur.all.mae,
            100.0 * (cur.all.mae - oracle.all.mae) / cur.all.mae,
        );
        println!(
            "  MAE improvement over CurRank (pit laps): MLP {:+.0}%  Oracle {:+.0}%",
            100.0 * (cur.pit_covered.mae - mlp.pit_covered.mae) / cur.pit_covered.mae,
            100.0 * (cur.pit_covered.mae - oracle.pit_covered.mae) / cur.pit_covered.mae,
        );
    }
}

/// Table VI: stint (TaskB) forecasting on Indy500-2019.
pub fn table6(profile: &Profile) {
    heading("Table VI: Rank position changes forecasting between pit stops, Indy500-2019");
    let d = one_event(Event::Indy500);
    let data = event_data(&d, Event::Indy500);
    let test = &data.test.iter().find(|(y, _)| *y == 2019).unwrap().1;
    let mut eval_cfg = profile.eval_cfg();
    eval_cfg.n_samples = (eval_cfg.n_samples / 2).max(8); // long horizons

    let mut rows: Vec<StintRow> = Vec::new();
    rows.push(eval_stint(&CurRankForecaster, test, &eval_cfg));
    for reg in models::regressors_for(profile, Event::Indy500, &data.train, 8).iter() {
        rows.push(eval_stint(reg, test, &eval_cfg));
    }
    let deepar = models::deepar_for(profile, Event::Indy500, &data.train, &data.val);
    rows.push(eval_stint(&*deepar, test, &eval_cfg));
    for variant in [
        RankNetVariant::Joint,
        RankNetVariant::Mlp,
        RankNetVariant::Oracle,
    ] {
        let model = models::ranknet_for(profile, Event::Indy500, &data.train, &data.val, variant);
        rows.push(eval_stint(&*model, test, &eval_cfg));
    }

    let mut out = vec![vec![
        "Model".into(),
        "SignAcc".into(),
        "MAE".into(),
        "50-Risk".into(),
        "90-Risk".into(),
        "n".into(),
    ]];
    for r in &rows {
        out.push(vec![
            r.model.clone(),
            f2(r.sign_acc),
            f2(r.mae),
            f3(r.risk50),
            f3(r.risk90),
            r.n.to_string(),
        ]);
    }
    ascii::table(&out);
}

/// Table VII: generalisation — MAE improvement over CurRank on pit-covered
/// laps, trained on Indy500 vs trained on the same event.
pub fn table7(profile: &Profile) {
    heading("Table VII: Two-lap forecasting on other races (MAE improvement vs CurRank, pit laps)");
    let d = full_dataset();
    let indy = event_data(&d, Event::Indy500);
    let eval_cfg = profile.eval_cfg();

    // Models trained on Indy500.
    let indy_mlp = models::ranknet_for(
        profile,
        Event::Indy500,
        &indy.train,
        &indy.val,
        RankNetVariant::Mlp,
    );
    let indy_joint = models::ranknet_for(
        profile,
        Event::Indy500,
        &indy.train,
        &indy.val,
        RankNetVariant::Joint,
    );
    let indy_regs = models::regressors_for(profile, Event::Indy500, &indy.train, 2);
    let indy_forest = &indy_regs[0];
    let indy_tx = {
        let model = models::train_transformer(profile, &indy.train, &indy.val);
        let pit = {
            let mut pm = ranknet_core::pit_model::PitModel::new(
                1,
                indy.train.first().map(|c| c.fuel_window).unwrap_or(50.0),
            );
            pm.train(&indy.train, &profile.model_cfg());
            pm
        };
        TransformerForecaster {
            model,
            pit_model: Some(pit),
        }
    };

    let mut rows = vec![vec![
        "Dataset".into(),
        "RankNet-MLP(I)".into(),
        "RForest(I)".into(),
        "RankNet-Joint(I)".into(),
        "Transformer-MLP(I)".into(),
        "RankNet-MLP(E)".into(),
        "RForest(E)".into(),
    ]];

    let test_sets: Vec<(Event, u16)> = vec![
        (Event::Indy500, 2019),
        (Event::Texas, 2018),
        (Event::Texas, 2019),
        (Event::Pocono, 2018),
        (Event::Iowa, 2019),
    ];

    for (event, year) in test_sets {
        let ed = event_data(&d, event);
        let test = &ed.test.iter().find(|(y, _)| *y == year).unwrap().1;

        let imp_mlp_i = mae_improvement_pit_laps(&*indy_mlp, test, &eval_cfg);
        let imp_rf_i = mae_improvement_pit_laps(indy_forest, test, &eval_cfg);
        let imp_joint_i = mae_improvement_pit_laps(&*indy_joint, test, &eval_cfg);
        let imp_tx_i = mae_improvement_pit_laps(&indy_tx, test, &eval_cfg);

        // Trained on the same event.
        let (imp_mlp_e, imp_rf_e) = if event == Event::Indy500 {
            (imp_mlp_i, imp_rf_i)
        } else {
            let same_mlp =
                models::ranknet_for(profile, event, &ed.train, &ed.val, RankNetVariant::Mlp);
            let same_regs = models::regressors_for(profile, event, &ed.train, 2);
            (
                mae_improvement_pit_laps(&*same_mlp, test, &eval_cfg),
                mae_improvement_pit_laps(&same_regs[0], test, &eval_cfg),
            )
        };

        rows.push(vec![
            format!("{}-{}", event.name(), year),
            f2(imp_mlp_i),
            f2(imp_rf_i),
            f2(imp_joint_i),
            f2(imp_tx_i),
            f2(imp_mlp_e),
            f2(imp_rf_e),
        ]);
    }
    ascii::table(&rows);
    println!("  (I) = trained on Indy500; (E) = trained on the same event");
}

/// Table VIII: hardware specification (the device models' constants).
pub fn table8() {
    heading("Table VIII: Experiments hardware specification (device models)");
    let mut rows = vec![vec![
        "Platform".into(),
        "Peak GFLOP/s".into(),
        "Mem GB/s".into(),
        "Launch us".into(),
        "Xfer GB/s".into(),
    ]];
    for dev in Device::all() {
        rows.push(vec![
            dev.name.into(),
            format!("{:.0}", dev.peak_flops / 1e9),
            format!("{:.0}", dev.mem_bw / 1e9),
            format!("{:.2}", dev.launch_overhead * 1e6),
            if dev.transfer_bw > 0.0 {
                format!("{:.0}", dev.transfer_bw / 1e9)
            } else {
                "-".into()
            },
        ]);
    }
    ascii::table(&rows);
    println!("  (CPU timings in Fig 10 are measured on this machine; GPU/VE are modeled)");
}
