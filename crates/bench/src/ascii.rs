//! Plain-text rendering helpers for tables and simple charts.

/// Print a header line for a table/figure target.
pub fn heading(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Render rows as an aligned table. `rows` includes the header row.
pub fn table(rows: &[Vec<String>]) {
    if rows.is_empty() {
        return;
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (c, cell) in row.iter().enumerate() {
            widths[c] = widths[c].max(cell.len());
        }
    }
    for (i, row) in rows.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(c, cell)| format!("{cell:>width$}", width = widths[c]))
            .collect();
        println!("  {}", line.join("  "));
        if i == 0 {
            let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
            println!("  {}", sep.join("  "));
        }
    }
}

/// A crude horizontal bar chart (one row per labelled value).
pub fn bars(items: &[(String, f64)], unit: &str) {
    let max = items
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::MIN, f64::max)
        .max(1e-12);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, v) in items {
        let n = ((v / max) * 50.0).round() as usize;
        println!(
            "  {label:<label_w$}  {:>10.3} {unit}  |{}",
            v,
            "#".repeat(n)
        );
    }
}

/// Render an x/y series as aligned columns (for figures that are curves).
pub fn series(name: &str, points: &[(f64, f64)], xlabel: &str, ylabel: &str) {
    println!("  series: {name}   ({xlabel} -> {ylabel})");
    for (x, y) in points {
        println!("    {x:>10.2}  {y:>12.4}");
    }
}

/// Format an f32 with 2 decimals (table cells).
pub fn f2(v: f32) -> String {
    format!("{v:.2}")
}

/// Format an f32 with 3 decimals (risk columns).
pub fn f3(v: f32) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f2(-0.5), "-0.50");
    }

    #[test]
    fn table_handles_empty_and_ragged() {
        table(&[]); // must not panic
        table(&[vec!["a".into(), "bb".into()], vec!["ccc".into()]]);
    }

    #[test]
    fn bars_handle_zero_values() {
        bars(&[("x".into(), 0.0), ("y".into(), 0.0)], "u"); // no div-by-zero
    }
}
