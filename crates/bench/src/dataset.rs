//! Dataset construction shared by every experiment target.

use ranknet_core::features::{extract_sequences, RaceContext};
use rpf_racesim::{Dataset, Event, Split};

/// Fixed dataset seed: every target sees the same 25 simulated races.
pub const DATASET_SEED: u64 = 0x1AD5_2021;

/// Featurized train/val/test contexts for one event.
pub struct EventData {
    /// Which event this data belongs to (carried for labelling).
    #[allow(dead_code)]
    pub event: Event,
    pub train: Vec<RaceContext>,
    pub val: Vec<RaceContext>,
    pub test: Vec<(u16, RaceContext)>,
}

/// Featurize every race of one event with Table II's splits.
pub fn event_data(dataset: &Dataset, event: Event) -> EventData {
    let mut out = EventData {
        event,
        train: Vec::new(),
        val: Vec::new(),
        test: Vec::new(),
    };
    for (key, race) in dataset.split(event, Split::Training) {
        let _ = key;
        out.train.push(extract_sequences(race));
    }
    for (_, race) in dataset.split(event, Split::Validation) {
        out.val.push(extract_sequences(race));
    }
    for (key, race) in dataset.split(event, Split::Test) {
        out.test.push((key.year, extract_sequences(race)));
    }
    // Events without a dedicated validation year use the last training race.
    if out.val.is_empty() && out.train.len() > 1 {
        let last = out.train.pop().unwrap();
        out.val.push(last);
    }
    out
}

/// Generate the full 25-race dataset.
pub fn full_dataset() -> Dataset {
    Dataset::generate(DATASET_SEED)
}

/// Generate a single event's races (cheaper for single-event targets).
pub fn one_event(event: Event) -> Dataset {
    Dataset::generate_event(event, DATASET_SEED)
}
