//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <target> [--full]
//!
//! targets:
//!   fig1 fig2 fig4 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//!   table2 table3 table4 table5 table6 table7 table8
//!   all        every target above
//! ```
//!
//! The default profile trains the deep models with subsampled windows and
//! fewer epochs so each target completes in minutes on a laptop; `--full`
//! uses the paper's stride-1 / long-training settings.

mod ablations;
mod ascii;
mod dataset;
mod figures;
mod models;
mod scenarios;
mod tables;

use std::env;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let target = args.first().map(String::as_str).unwrap_or("help");
    let profile = if full {
        models::Profile::full()
    } else {
        models::Profile::fast()
    };

    match target {
        "fig1" => figures::fig1(&profile),
        "fig2" => figures::fig2(&profile),
        "fig4" => figures::fig4(&profile),
        "fig6" => figures::fig6(&profile),
        "fig7" => figures::fig7(&profile),
        "fig8" => figures::fig8(&profile),
        "fig9" => figures::fig9(&profile),
        "fig10" => figures::fig10(&profile),
        "fig11" => figures::fig11(),
        "fig12" => figures::fig12(),
        "table2" => tables::table2(&profile),
        "table3" => tables::table3(),
        "table4" => tables::table4(&profile),
        "table5" => tables::table5(&profile),
        "table6" => tables::table6(&profile),
        "scenarios" => scenarios::scenarios(&profile),
        "scenarios-smoke" => scenarios::scenarios(&scenarios::smoke_profile()),
        "table7" => tables::table7(&profile),
        "table8" => tables::table8(),
        "weightsweep" => ablations::weight_sweep(&profile),
        "ctxsweep" => ablations::context_sweep(&profile),
        "batchacc" => ablations::batch_accuracy(&profile),
        "transfer" => ablations::transfer(&profile),
        "likelihood" => ablations::likelihood_ablation(&profile),
        "calibration" => ablations::calibration(&profile),
        "engine" => ablations::engine_report(&profile),
        "all" => {
            figures::fig1(&profile);
            tables::table2(&profile);
            tables::table3();
            figures::fig4(&profile);
            figures::fig6(&profile);
            tables::table4(&profile);
            figures::fig2(&profile);
            figures::fig7(&profile);
            tables::table5(&profile);
            figures::fig8(&profile);
            figures::fig9(&profile);
            tables::table6(&profile);
            tables::table7(&profile);
            tables::table8();
            figures::fig10(&profile);
            figures::fig11();
            figures::fig12();
        }
        _ => {
            eprintln!(
                "usage: repro <fig1|fig2|fig4|fig6|fig7|fig8|fig9|fig10|fig11|fig12|\n\
                 \u{20}              table2|table3|table4|table5|table6|table7|table8|\n\
                 \u{20}              weightsweep|ctxsweep|batchacc|transfer|likelihood|calibration|\n\
                 \u{20}              engine|scenarios|scenarios-smoke|all> [--full]"
            );
        }
    }
}
