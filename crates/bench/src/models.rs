//! Model training shared by the experiment targets, with fast / full
//! profiles.

use ranknet_core::baseline_adapters::{DeepArForecaster, RegKind, RegressionForecaster};
use ranknet_core::eval::EvalConfig;
use ranknet_core::features::RaceContext;
use ranknet_core::instances::TrainingSet;
use ranknet_core::rank_model::{RankModel, TargetKind};
use ranknet_core::ranknet::{RankNet, RankNetVariant};
use ranknet_core::transformer_model::TransformerModel;
use ranknet_core::RankNetConfig;

/// Experiment scale knobs.
#[derive(Clone, Debug)]
pub struct Profile {
    /// Window stride for deep-model training sets (paper: 1).
    pub stride: usize,
    /// Deep-model training epochs.
    pub epochs: usize,
    /// Monte-Carlo samples at evaluation (paper: 100).
    pub n_samples: usize,
    /// Forecast-origin stride during evaluation (paper: 1).
    pub origin_step: usize,
    /// Transformer training-set stride (Transformer is per-sequence and
    /// slower; it gets a sparser set).
    pub tx_stride: usize,
    pub tx_epochs: usize,
}

impl Profile {
    /// Minutes-scale runs for the default harness.
    pub fn fast() -> Profile {
        Profile {
            stride: 6,
            epochs: 18,
            n_samples: 30,
            origin_step: 6,
            tx_stride: 48,
            tx_epochs: 6,
        }
    }

    /// The paper's settings (hours-scale).
    pub fn full() -> Profile {
        Profile {
            stride: 1,
            epochs: 60,
            n_samples: 100,
            origin_step: 1,
            tx_stride: 8,
            tx_epochs: 30,
        }
    }

    pub fn model_cfg(&self) -> RankNetConfig {
        RankNetConfig {
            max_epochs: self.epochs,
            ..Default::default()
        }
    }

    pub fn eval_cfg(&self) -> EvalConfig {
        EvalConfig {
            horizon: 2,
            n_samples: self.n_samples,
            origin_start: 25,
            origin_step: self.origin_step,
            seed: 7,
        }
    }
}

/// Train a RankNet variant on the given contexts.
pub fn train_ranknet(
    profile: &Profile,
    train: &[RaceContext],
    val: &[RaceContext],
    variant: RankNetVariant,
) -> RankNet {
    let cfg = profile.model_cfg();
    let (model, report) = RankNet::fit(train.to_vec(), val.to_vec(), cfg, variant, profile.stride);
    eprintln!(
        "  [train] {} epochs={} best_val={:.4} ({:.1}s, {:.1} us/sample)",
        variant.name(),
        report.rank_model.epochs_run,
        report.rank_model.best_val_loss,
        report.rank_model.wall_s,
        report.rank_model.us_per_sample
    );
    model
}

/// Train the plain DeepAR baseline.
pub fn train_deepar(
    profile: &Profile,
    train: &[RaceContext],
    val: &[RaceContext],
) -> DeepArForecaster {
    let cfg = profile.model_cfg().deepar();
    let ts = TrainingSet::build(train.to_vec(), &cfg, profile.stride);
    let vs = TrainingSet::build(val.to_vec(), &cfg, (profile.stride * 2).max(4));
    let mut model = RankModel::new(cfg, TargetKind::RankOnly, ts.max_car_id.max(vs.max_car_id));
    let report = model.train(&ts, &vs);
    eprintln!(
        "  [train] DeepAR epochs={} best_val={:.4} ({:.1}s)",
        report.epochs_run, report.best_val_loss, report.wall_s
    );
    DeepArForecaster(model)
}

/// Train the Transformer variant with Oracle or MLP covariate handling
/// decided at forecast time by the caller (the network itself is shared).
pub fn train_transformer(
    profile: &Profile,
    train: &[RaceContext],
    val: &[RaceContext],
) -> TransformerModel {
    let mut cfg = profile.model_cfg();
    cfg.max_epochs = profile.tx_epochs;
    let ts = TrainingSet::build(train.to_vec(), &cfg, profile.tx_stride);
    let vs = TrainingSet::build(val.to_vec(), &cfg, (profile.tx_stride * 2).max(8));
    let mut model = TransformerModel::new(cfg, ts.max_car_id.max(vs.max_car_id));
    let report = model.train(&ts, &vs);
    eprintln!(
        "  [train] Transformer epochs={} best_val={:.4} ({:.1}s)",
        report.epochs_run, report.best_val_loss, report.wall_s
    );
    model
}

/// Fit the three classical regressors.
pub fn train_regressors(
    profile: &Profile,
    train: &[RaceContext],
    max_horizon: usize,
) -> Vec<RegressionForecaster> {
    let stride = (profile.stride * 2).max(4);
    [RegKind::Forest, RegKind::Svr, RegKind::Gbt]
        .into_iter()
        .map(|kind| {
            let m = RegressionForecaster::fit(kind, train, max_horizon, stride, 0);
            eprintln!("  [train] {}", m.name());
            m
        })
        .collect()
}

use ranknet_core::baseline_adapters::Forecaster;

// ---- model cache ------------------------------------------------------------
//
// `repro all` runs many targets that need the same trained models (Table V,
// Table VI, Fig 8, Fig 9 all want the Indy500 RankNet variants). Training is
// the expensive part, so share one instance per (event, variant, profile).

use parking_lot::Mutex;
use rpf_racesim::Event;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

fn profile_key(p: &Profile) -> String {
    format!("s{}e{}", p.stride, p.epochs)
}

static RANKNET_CACHE: OnceLock<Mutex<HashMap<String, Arc<RankNet>>>> = OnceLock::new();
static DEEPAR_CACHE: OnceLock<Mutex<HashMap<String, Arc<DeepArForecaster>>>> = OnceLock::new();
static REG_CACHE: OnceLock<Mutex<HashMap<String, Arc<Vec<RegressionForecaster>>>>> =
    OnceLock::new();

/// Cached [`train_ranknet`] keyed by event + variant + profile.
pub fn ranknet_for(
    profile: &Profile,
    event: Event,
    train: &[RaceContext],
    val: &[RaceContext],
    variant: RankNetVariant,
) -> Arc<RankNet> {
    let key = format!(
        "{}-{}-{}",
        event.name(),
        variant.name(),
        profile_key(profile)
    );
    let cache = RANKNET_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(m) = cache.lock().get(&key) {
        return m.clone();
    }
    let model = Arc::new(train_ranknet(profile, train, val, variant));
    cache.lock().insert(key, model.clone());
    model
}

/// Cached [`train_deepar`].
pub fn deepar_for(
    profile: &Profile,
    event: Event,
    train: &[RaceContext],
    val: &[RaceContext],
) -> Arc<DeepArForecaster> {
    let key = format!("{}-{}", event.name(), profile_key(profile));
    let cache = DEEPAR_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(m) = cache.lock().get(&key) {
        return m.clone();
    }
    let model = Arc::new(train_deepar(profile, train, val));
    cache.lock().insert(key, model.clone());
    model
}

/// Cached [`train_regressors`] (keyed by max horizon too).
pub fn regressors_for(
    profile: &Profile,
    event: Event,
    train: &[RaceContext],
    max_horizon: usize,
) -> Arc<Vec<RegressionForecaster>> {
    let key = format!("{}-h{}-{}", event.name(), max_horizon, profile_key(profile));
    let cache = REG_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(m) = cache.lock().get(&key) {
        return m.clone();
    }
    let models = Arc::new(train_regressors(profile, train, max_horizon));
    cache.lock().insert(key, models.clone());
    models
}
