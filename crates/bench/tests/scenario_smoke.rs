//! Fast cross-scenario bench smoke: runs the `repro scenarios-smoke`
//! target end to end (dataset generation, four model families, four
//! scenario families, stint evaluation) and checks the machine-parseable
//! output is complete and well-formed. Accuracy is not judged at smoke
//! scale — this gate catches wiring drift, not regressions in the numbers
//! (those are the snapshot script's job).

use std::collections::HashSet;
use std::process::Command;

const FAMILIES: [&str; 4] = ["IndyCar", "TyreStrategy", "CautionRegime", "WetDry"];
const MODELS: [&str; 4] = ["CurRank", "ARIMA", "XGBoost", "RankNet-MLP"];

#[test]
fn cross_scenario_smoke_covers_every_family_and_model() {
    if cfg!(debug_assertions) {
        eprintln!("scenario_smoke: skipped (debug build; CI runs it with --release)");
        return;
    }

    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("scenarios-smoke")
        .output()
        .expect("repro binary must run");
    assert!(
        out.status.success(),
        "repro scenarios-smoke failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);

    let mut seen: HashSet<(String, String)> = HashSet::new();
    for line in stdout.lines().filter(|l| l.starts_with("scenario ")) {
        // scenario <family> model=<name> sign_acc=<v> mae=<v> n=<v>
        let mut fields = line.split_whitespace();
        let _tag = fields.next();
        let family = fields.next().expect("family field").to_string();
        let model = fields
            .next()
            .and_then(|f| f.strip_prefix("model="))
            .expect("model field")
            .to_string();
        let sign_acc: f32 = fields
            .next()
            .and_then(|f| f.strip_prefix("sign_acc="))
            .expect("sign_acc field")
            .parse()
            .expect("sign_acc parses");
        let mae: f32 = fields
            .next()
            .and_then(|f| f.strip_prefix("mae="))
            .expect("mae field")
            .parse()
            .expect("mae parses");
        let n: usize = fields
            .next()
            .and_then(|f| f.strip_prefix("n="))
            .expect("n field")
            .parse()
            .expect("n parses");
        assert!(
            (0.0..=1.0).contains(&sign_acc),
            "sign_acc out of range: {line}"
        );
        assert!(mae.is_finite() && mae >= 0.0, "bad mae: {line}");
        assert!(n > 0, "empty evaluation: {line}");
        assert!(
            FAMILIES.contains(&family.as_str()),
            "unknown family: {line}"
        );
        assert!(MODELS.contains(&model.as_str()), "unknown model: {line}");
        seen.insert((family, model));
    }

    assert_eq!(
        seen.len(),
        FAMILIES.len() * MODELS.len(),
        "expected every (family, model) cell exactly once; got {seen:?}"
    );
}
