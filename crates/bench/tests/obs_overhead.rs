//! Pins the observability contract that makes it safe to leave the
//! profiling hooks compiled into the hot kernels: with the recorder
//! *disabled* (the default), the per-call cost of the hook — one relaxed
//! atomic load and an early return — must amount to less than 1% of the
//! decode bench's wall time. The test measures the real quantities on this
//! machine rather than assuming constants: how many operator records one
//! decode emits, what one disabled hook call costs, and how long the
//! decode itself takes.
//!
//! CI runs this with `--release` (scripts/ci.sh); in debug builds the
//! ratio is even more favourable because the decode slows down far more
//! than the atomic load does.

use ranknet_core::engine::ForecastEngine;
use ranknet_core::features::extract_sequences;
use ranknet_core::ranknet::{RankNet, RankNetVariant};
use ranknet_core::RankNetConfig;
use rpf_obs::ops::OpClass;
use rpf_racesim::{simulate_race, Event, EventConfig};
use std::hint::black_box;
use std::time::Instant;

#[test]
fn disabled_recorder_costs_under_one_percent_of_decode() {
    let ctx = extract_sequences(&simulate_race(
        &EventConfig::for_race(Event::Indy500, 2017),
        5,
    ));
    let mut cfg = RankNetConfig::tiny();
    cfg.max_epochs = 1;
    let train = vec![ctx.clone()];
    let (model, _) = RankNet::fit(train.clone(), train, cfg, RankNetVariant::Oracle, 40);
    let engine = ForecastEngine::new(&model, 7).with_threads(1);
    let (origin, horizon, n_samples) = (60, 2, 20);

    // 1. Count the operator records one decode emits, with profiling ON.
    rpf_obs::ops::reset();
    rpf_obs::ops::set_enabled(true);
    let _ = engine.forecast(&ctx, origin, horizon, n_samples);
    let records_per_decode: u64 = rpf_obs::ops::all_stats().iter().map(|(_, s)| s.calls).sum();
    rpf_obs::ops::set_enabled(false);
    rpf_obs::ops::reset();
    assert!(
        records_per_decode > 0,
        "decode must pass through the profiling hooks"
    );

    // 2. Cost of one disabled hook call, amortised over a tight loop.
    const LOOP: u64 = 2_000_000;
    let started = Instant::now();
    for i in 0..LOOP {
        rpf_obs::ops::record_nanos(
            black_box(OpClass::MatmulInto),
            black_box(i),
            black_box(i),
            black_box(i),
        );
    }
    let per_call_ns = started.elapsed().as_nanos() as f64 / LOOP as f64;

    // 3. Decode wall time with the recorder disabled (warm encoder cache,
    // best-of-three to shave scheduler noise).
    let _ = engine.forecast(&ctx, origin, horizon, n_samples);
    let decode_ns = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(engine.forecast(&ctx, origin, horizon, n_samples));
            t.elapsed().as_nanos() as f64
        })
        .fold(f64::INFINITY, f64::min);

    let hook_ns = per_call_ns * records_per_decode as f64;
    let share = hook_ns / decode_ns;
    eprintln!(
        "obs_overhead: {records_per_decode} records/decode × {per_call_ns:.2} ns/call \
         = {hook_ns:.0} ns against {decode_ns:.0} ns decode ({:.4}%)",
        share * 100.0
    );
    assert!(
        share < 0.01,
        "disabled recorder overhead is {:.4}% of the decode bench (limit 1%): \
         {records_per_decode} records × {per_call_ns:.2} ns vs {decode_ns:.0} ns decode",
        share * 100.0
    );
}
