//! Release-mode perf gate for the batched decode backend: at micro-batch
//! sizes the serving layer actually forms (≥ 16 trajectories per car), the
//! lock-step FMA backend must beat the per-row infer reference — otherwise
//! the tolerance contract it trades away buys nothing and the regression
//! should fail CI loudly.
//!
//! CI runs this with `--release` (scripts/ci.sh, gate `decode_perf_gate`).
//! Debug builds skip the timing assertion: unoptimised relative timings of
//! the two kernel sets are not meaningful.
//!
//! The gate pins ≥ 2× at the paper's operating point (100 trajectories per
//! car); the criterion `decode_backend` group and the committed
//! `BENCH_<date>.json` quantify the full margin (~3× measured).

use ranknet_core::features::extract_sequences;
use ranknet_core::instances::TrainingSet;
use ranknet_core::rank_model::{oracle_covariates, RankModel, TargetKind};
use ranknet_core::RankNetConfig;
use rpf_nn::RngStreams;
use rpf_racesim::{simulate_race, Event, EventConfig};
use std::hint::black_box;
use std::time::Instant;

/// Best-of-N wall time of one decode closure (minimum shaves scheduler
/// noise, which only ever inflates a sample).
fn best_of<F: FnMut()>(n: usize, mut f: F) -> f64 {
    (0..n)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .fold(f64::INFINITY, f64::min)
}

#[test]
fn batched_beats_per_row_at_serving_batch_sizes() {
    if cfg!(debug_assertions) {
        eprintln!("decode_perf_gate: skipped (debug build; CI runs it with --release)");
        return;
    }

    // The paper's operating shape: full-size network, full Indy500 field.
    let cfg = RankNetConfig {
        max_epochs: 1,
        ..Default::default()
    };
    let ctx = extract_sequences(&simulate_race(
        &EventConfig::for_race(Event::Indy500, 2019),
        1,
    ));
    let ts = TrainingSet::build(vec![ctx.clone()], &cfg, 16);
    let mut model = RankModel::new(cfg.clone(), TargetKind::RankOnly, ts.max_car_id);
    let _ = model.train(&ts, &ts);

    let (origin, horizon) = (100, 2);
    let cov = oracle_covariates(&ctx, origin, horizon, cfg.prediction_len);
    let enc = model.encode(&ctx, origin);
    let streams = RngStreams::new(0x6A7E);

    // (trajectories per car, required speedup). Measured ~3x at both sizes
    // (fused tile step + compacted first step); the floors leave ~30%
    // headroom for machine noise while still failing loudly if either the
    // kernels or the step-0 compaction regress.
    for (n_samples, floor) in [(16usize, 1.8f64), (100, 2.0)] {
        // Warm both paths once (first call pays lazy allocations).
        black_box(model.decode(&ctx, &cov, origin, horizon, n_samples, &enc, &streams, 1));
        black_box(model.decode_batched(&ctx, &cov, origin, horizon, n_samples, &enc, &streams, 1));

        let per_row = best_of(5, || {
            black_box(model.decode(&ctx, &cov, origin, horizon, n_samples, &enc, &streams, 1));
        });
        let batched = best_of(5, || {
            black_box(
                model.decode_batched(&ctx, &cov, origin, horizon, n_samples, &enc, &streams, 1),
            );
        });
        let speedup = per_row / batched;
        eprintln!(
            "decode_perf_gate: n_samples={n_samples} per_row={:.2}ms batched={:.2}ms \
             speedup={speedup:.2}x (floor {floor}x)",
            per_row / 1e6,
            batched / 1e6,
        );
        assert!(
            speedup > floor,
            "batched decode ({batched:.0} ns) must beat per-row ({per_row:.0} ns) \
             by more than {floor}x at {n_samples} trajectories/car, got {speedup:.2}x"
        );
    }
}
