//! Offline stand-in for `serde_json`.
//!
//! Serializes any stub-`serde` `Serialize` type to JSON text and parses
//! JSON text back into the stub's `Content` tree for `Deserialize`. The
//! public surface matches the subset this workspace calls: [`to_string`],
//! [`to_string_pretty`], [`from_str`], and [`Error`].

use serde::de::{from_content, DeError};
use serde::ser::to_content;
use serde::Content;
use std::fmt::{Display, Write as _};

/// JSON serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::ser::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let content = to_content(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_content(&mut out, &content, None, 0);
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let content = to_content(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_content(&mut out, &content, Some(2), 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<'de, T: serde::Deserialize<'de>>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    from_content::<T, DeError>(content).map_err(|e| Error(e.to_string()))
}

// ---- printer ---------------------------------------------------------------

fn write_content(out: &mut String, content: &Content, indent: Option<usize>, depth: usize) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::F64(v) => {
            if v.is_finite() {
                // Rust's shortest-roundtrip Display; ensure a decimal marker
                // so the value parses back as a float.
                let start = out.len();
                let _ = write!(out, "{v}");
                if !out[start..].contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no non-finite numbers; match serde_json's `null`.
                out.push_str("null");
            }
        }
        Content::Str(s) => write_json_string(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, value, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(Error(format!("{msg} at byte {}", self.pos)))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn consume_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => {
                if self.consume_literal("null") {
                    Ok(Content::Null)
                } else {
                    self.err("invalid literal")
                }
            }
            Some(b't') => {
                if self.consume_literal("true") {
                    Ok(Content::Bool(true))
                } else {
                    self.err("invalid literal")
                }
            }
            Some(b'f') => {
                if self.consume_literal("false") {
                    Ok(Content::Bool(false))
                } else {
                    self.err("invalid literal")
                }
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => self.err(&format!("unexpected character `{}`", b as char)),
        }
    }

    fn parse_seq(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("invalid \\u escape"),
                            }
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar from the source.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid utf-8 in string".into()))?;
                    let c = s.chars().next().expect("non-empty checked");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf-8 in number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let v: Vec<(String, f64)> = vec![("a".into(), 1.5), ("b".into(), -2.0)];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        let xs: Vec<f32> = vec![0.1, -3.4028235e38, 1.1754944e-38, 42.0, 0.0];
        let json = to_string(&xs).unwrap();
        let back: Vec<f32> = from_str(&json).unwrap();
        assert_eq!(
            back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn parses_nested_structures() {
        let json = r#"{ "name": "x", "data": [1, 2.5, -3], "flag": true, "opt": null }"#;
        let content: Vec<(String, serde::Content)> = match from_str::<TestProbe>(json) {
            Ok(TestProbe(c)) => match c {
                serde::Content::Map(m) => m,
                other => panic!("expected map, got {other:?}"),
            },
            Err(e) => panic!("parse failed: {e}"),
        };
        assert_eq!(content.len(), 4);
        assert_eq!(content[0].0, "name");
    }

    struct TestProbe(serde::Content);

    impl<'de> serde::Deserialize<'de> for TestProbe {
        fn deserialize<D: serde::Deserializer<'de>>(
            deserializer: D,
        ) -> std::result::Result<Self, D::Error> {
            deserializer.deserialize_content().map(TestProbe)
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\nwith \"quotes\" and \\ unicode é";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pretty_output_contains_newlines() {
        let v = vec![1u32, 2];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<u32> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Vec<u32>>("[1,2] extra").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
    }
}
