//! `prop::collection` — vector strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// Element count specification for [`vec`]: an exact length or a range.
#[derive(Clone, Debug)]
pub struct SizeRange(Range<usize>);

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange(n..n + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(!r.is_empty(), "empty size range for collection::vec");
        SizeRange(r)
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.0.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for a `Vec` whose elements come from `element` and whose length
/// comes from `size` (a fixed `usize` or a `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
