//! The [`Strategy`] trait and its combinators. A strategy here is simply a
//! deterministic value generator over a seeded RNG — no shrink trees.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// Generates values of `Self::Value` for property tests.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase for heterogeneous composition (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Object-safe shim so strategies of different concrete types can be boxed.
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice between boxed alternatives; built by `prop_oneof!`.
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        Union(alternatives)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

// ---- ranges as strategies --------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ---- tuples of strategies --------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}
