//! Test execution: config, deterministic RNG, case errors, and the
//! `proptest!` / `prop_assert*` macros.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Display;

/// The RNG handed to strategies. Deterministic per test function.
pub type TestRng = StdRng;

/// Runner configuration. Only `cases` matters to this stub.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — generate a fresh case instead.
    Reject(String),
    /// `prop_assert*!` failed — the property is violated.
    Fail(String),
}

impl TestCaseError {
    pub fn reject(msg: impl Display) -> Self {
        TestCaseError::Reject(msg.to_string())
    }

    pub fn fail(msg: impl Display) -> Self {
        TestCaseError::Fail(msg.to_string())
    }
}

impl Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Drives one property test: holds the config and the seeded RNG.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, seed: u64) -> Self {
        TestRunner {
            config,
            rng: TestRng::seed_from_u64(seed),
        }
    }

    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// FNV-1a over the test's full path: a stable per-test RNG seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @config ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            @config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let cases = config.cases;
            let seed = $crate::test_runner::seed_from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut runner = $crate::test_runner::TestRunner::new(config, seed);
            let mut executed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = cases.saturating_mul(20).max(1024);
            while executed < cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest {}: too many prop_assume! rejections ({} attempts for {} cases)",
                    stringify!($name), attempts, cases,
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $pat =
                                $crate::strategy::Strategy::generate(&($strategy), runner.rng());
                        )+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => executed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed on case {} (seed {:#x}): {}",
                            stringify!($name), executed, seed, msg,
                        );
                    }
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            stringify!($left), stringify!($right), l, r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` ({:?} vs {:?}): {}",
            stringify!($left), stringify!($right), l, r, ::std::format!($($fmt)+),
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
