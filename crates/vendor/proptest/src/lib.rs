//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace uses: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `boxed`, range and tuple
//! strategies, `collection::vec`, `sample::select`, `Just`, the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assume!` /
//! `prop_oneof!` macros, and `ProptestConfig`.
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking — a failing case reports its values via the assertion
//!   message instead of a minimized input;
//! * the RNG seed is derived from the test's module path and name, so runs
//!   are fully deterministic (no persistence file needed).

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// `use proptest::prelude::*;` — the only import the tests use.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn vec_strategy() -> impl Strategy<Value = Vec<u32>> {
        crate::collection::vec(0u32..100, 2..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in vec_strategy()) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn oneof_and_select_produce_members(
            pick in prop_oneof![Just(1u8), Just(2), 10u8..20],
            chosen in prop::sample::select(vec!["a", "b", "c"]),
        ) {
            prop_assert!(pick == 1 || pick == 2 || (10..20).contains(&pick));
            prop_assert!(["a", "b", "c"].contains(&chosen));
        }

        #[test]
        fn flat_map_links_dimensions(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0i32..10, n).prop_map(move |v| (n, v)))) {
            let (n, items) = v;
            prop_assert_eq!(items.len(), n);
        }

        #[test]
        fn assume_rejections_are_retried(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRunner;
        let gen = |seed: u64| {
            let mut runner = TestRunner::new(ProptestConfig::default(), seed);
            (0..16)
                .map(|_| (0u64..1000).generate(runner.rng()))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(42), gen(42));
        assert_ne!(gen(42), gen(43));
    }
}
