//! `prop::sample` — choosing from explicit value lists.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

pub struct Select<T>(Vec<T>);

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].clone()
    }
}

/// Uniformly select one of the given values.
pub fn select<T: Clone>(values: impl Into<Vec<T>>) -> Select<T> {
    let values = values.into();
    assert!(
        !values.is_empty(),
        "sample::select needs at least one value"
    );
    Select(values)
}
