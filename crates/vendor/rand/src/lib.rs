//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rand` to this local implementation of exactly the API subset
//! the repository uses: `StdRng` + `SeedableRng::{seed_from_u64, from_seed}`,
//! the `Rng` extension methods (`gen`, `gen_range`, `gen_bool`), and
//! `seq::SliceRandom::shuffle`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — not the ChaCha
//! generator real `rand` uses, so sampled values differ from upstream, but
//! every consumer in this workspace only relies on determinism and on
//! reasonable statistical quality, both of which xoshiro256++ provides.

/// Core generator trait: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: used to expand seeds into full generator state.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::from_rng(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

float_range!(f32, f64);

/// The user-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// Slice helpers, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn uniform_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..9);
            assert!((3..9).contains(&i));
            let j = rng.gen_range(-4i8..=4);
            assert!((-4..=4).contains(&j));
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.25).abs() < 0.01, "p {p}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(4);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move elements");
    }
}
