//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API: `lock`
//! / `read` / `write` return guards directly. A poisoned std lock means a
//! worker panicked while holding it; parking_lot would have continued, so
//! the wrapper recovers the inner guard instead of propagating.

use std::sync::{self, TryLockError};

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_guards_value() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
