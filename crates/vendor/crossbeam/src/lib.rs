//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::scope` + `Scope::spawn` + handle
//! `join`, which maps directly onto `std::thread::scope` (stable since Rust
//! 1.63). The wrapper preserves crossbeam's call shape: the spawn closure
//! receives a `&Scope` argument, `scope` returns a `Result`, and `join`
//! returns a `thread::Result`.

pub use crate::thread::{scope, Scope, ScopedJoinHandle};

pub mod thread {
    use std::marker::PhantomData;
    use std::thread as std_thread;

    /// Matches `crossbeam::thread::Scope`: the handle worker closures
    /// receive.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// A spawned worker handle.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
        _marker: PhantomData<&'scope ()>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker. As in crossbeam, the closure receives the scope
        /// so it could spawn further workers; callers here ignore it
        /// (`|_| ...`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            let handle = self.inner.spawn(move || {
                let scope = Scope { inner: inner_scope };
                f(&scope)
            });
            ScopedJoinHandle {
                inner: handle,
                _marker: PhantomData,
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    /// Create a scope for spawning borrowing threads, mirroring
    /// `crossbeam::scope`. Always returns `Ok` — panics in unjoined workers
    /// propagate as panics, matching how this workspace consumes the API
    /// (`.expect(...)` on the result).
    pub fn scope<'env, F, R>(f: F) -> std_thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data: Vec<usize> = (0..100).collect();
        let sum = AtomicUsize::new(0);
        super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(30)
                .map(|chunk| {
                    let sum = &sum;
                    s.spawn(move |_| {
                        sum.fetch_add(chunk.iter().sum::<usize>(), Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        })
        .unwrap();
        assert_eq!(sum.load(Ordering::SeqCst), (0..100).sum::<usize>());
    }

    #[test]
    fn results_returned_through_join() {
        let out = super::scope(|s| {
            let h1 = s.spawn(|_| 21usize);
            let h2 = s.spawn(|_| 21usize);
            h1.join().unwrap() + h2.join().unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
