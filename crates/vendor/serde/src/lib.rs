//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `serde` to this local implementation. It keeps the *trait shape* of real
//! serde that this repository uses — `Serialize` / `Serializer` /
//! `SerializeStruct`, `Deserialize` / `Deserializer` / `de::Error::custom`,
//! and the `#[derive(Serialize, Deserialize)]` macros — but replaces the
//! visitor-based data model with a concrete [`Content`] tree that the JSON
//! backend (`serde_json`) prints and parses.
//!
//! Anything outside the used subset is intentionally absent: new call sites
//! should fail to compile here rather than silently diverge from upstream
//! serde semantics.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The concrete data model every value serializes into: a JSON-shaped tree.
///
/// Maps preserve insertion order so serialized output is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

#[cfg(test)]
mod tests {
    use super::ser::to_content;
    use super::Content;

    #[test]
    fn primitives_serialize_to_expected_content() {
        assert_eq!(to_content(&true).unwrap(), Content::Bool(true));
        assert_eq!(to_content(&7u16).unwrap(), Content::U64(7));
        assert_eq!(to_content(&-3i32).unwrap(), Content::I64(-3));
        assert_eq!(to_content(&1.5f32).unwrap(), Content::F64(1.5));
        assert_eq!(
            to_content(&"hi".to_string()).unwrap(),
            Content::Str("hi".into())
        );
    }

    #[test]
    fn collections_serialize_structurally() {
        assert_eq!(
            to_content(&vec![1u32, 2]).unwrap(),
            Content::Seq(vec![Content::U64(1), Content::U64(2)])
        );
        assert_eq!(to_content(&Option::<u32>::None).unwrap(), Content::Null);
        assert_eq!(to_content(&Some(3u32)).unwrap(), Content::U64(3));
        assert_eq!(
            to_content(&("a".to_string(), 1u32)).unwrap(),
            Content::Seq(vec![Content::Str("a".into()), Content::U64(1)])
        );
    }

    #[test]
    fn roundtrip_through_content() {
        let v: Vec<(String, f32)> = vec![("x".into(), 1.25), ("y".into(), -2.0)];
        let content = to_content(&v).unwrap();
        let back: Vec<(String, f32)> =
            crate::de::from_content::<_, crate::de::DeError>(content).unwrap();
        assert_eq!(back, v);
    }
}
