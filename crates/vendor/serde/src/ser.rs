//! Serialization half of the stub: real serde's trait shape over the
//! concrete [`Content`] tree.

use crate::Content;
use std::fmt::Display;

/// Error constraint for serializers, mirroring `serde::ser::Error`.
pub trait Error: Sized + std::error::Error {
    fn custom<T: Display>(msg: T) -> Self;
}

/// A type that can serialize itself through any [`Serializer`].
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// The driver side. Only the methods this workspace's (derived or manual)
/// impls call are present.
pub trait Serializer: Sized {
    type Ok;
    type Error: Error;
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
}

pub trait SerializeSeq {
    type Ok;
    type Error: Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeTuple {
    type Ok;
    type Error: Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---- the one concrete serializer: into Content ----------------------------

/// Error type of [`ContentSerializer`]. Serializing into a tree cannot
/// actually fail in this stub, but the trait shape requires the plumbing.
#[derive(Clone, Debug)]
pub struct SerError(pub String);

impl Display for SerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SerError {}

impl Error for SerError {
    fn custom<T: Display>(msg: T) -> Self {
        SerError(msg.to_string())
    }
}

/// Serializes any `Serialize` value into a [`Content`] tree.
pub struct ContentSerializer;

/// Convenience entry point used by `serde_json`.
pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Result<Content, SerError> {
    value.serialize(ContentSerializer)
}

pub struct ContentSeq(Vec<Content>);
pub struct ContentStruct(Vec<(String, Content)>);

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = SerError;
    type SerializeSeq = ContentSeq;
    type SerializeTuple = ContentSeq;
    type SerializeStruct = ContentStruct;

    fn serialize_bool(self, v: bool) -> Result<Content, SerError> {
        Ok(Content::Bool(v))
    }

    fn serialize_i64(self, v: i64) -> Result<Content, SerError> {
        Ok(Content::I64(v))
    }

    fn serialize_u64(self, v: u64) -> Result<Content, SerError> {
        Ok(Content::U64(v))
    }

    fn serialize_f64(self, v: f64) -> Result<Content, SerError> {
        Ok(Content::F64(v))
    }

    fn serialize_str(self, v: &str) -> Result<Content, SerError> {
        Ok(Content::Str(v.to_string()))
    }

    fn serialize_unit(self) -> Result<Content, SerError> {
        Ok(Content::Null)
    }

    fn serialize_none(self) -> Result<Content, SerError> {
        Ok(Content::Null)
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Content, SerError> {
        value.serialize(ContentSerializer)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Content, SerError> {
        // Externally tagged, like real serde: a unit variant is its name.
        Ok(Content::Str(variant.to_string()))
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Content, SerError> {
        Ok(Content::Map(vec![(
            variant.to_string(),
            to_content(value)?,
        )]))
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<ContentSeq, SerError> {
        Ok(ContentSeq(Vec::with_capacity(len.unwrap_or(0))))
    }

    fn serialize_tuple(self, len: usize) -> Result<ContentSeq, SerError> {
        Ok(ContentSeq(Vec::with_capacity(len)))
    }

    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<ContentStruct, SerError> {
        Ok(ContentStruct(Vec::with_capacity(len)))
    }
}

impl SerializeSeq for ContentSeq {
    type Ok = Content;
    type Error = SerError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), SerError> {
        self.0.push(to_content(value)?);
        Ok(())
    }

    fn end(self) -> Result<Content, SerError> {
        Ok(Content::Seq(self.0))
    }
}

impl SerializeTuple for ContentSeq {
    type Ok = Content;
    type Error = SerError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), SerError> {
        self.0.push(to_content(value)?);
        Ok(())
    }

    fn end(self) -> Result<Content, SerError> {
        Ok(Content::Seq(self.0))
    }
}

impl SerializeStruct for ContentStruct {
    type Ok = Content;
    type Error = SerError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), SerError> {
        self.0.push((key.to_string(), to_content(value)?));
        Ok(())
    }

    fn end(self) -> Result<Content, SerError> {
        Ok(Content::Map(self.0))
    }
}

// ---- Serialize impls for std types ----------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self as f64)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_none(),
            Some(v) => serializer.serialize_some(v),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tup = serializer.serialize_tuple(0 $(+ { let _ = stringify!($t); 1 })+)?;
                $(tup.serialize_element(&self.$n)?;)+
                tup.end()
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
