//! Deserialization half of the stub. Real serde drives a visitor through
//! the deserializer; here a [`Deserializer`] simply surrenders a complete
//! [`Content`] tree and `Deserialize` impls convert out of it. Everything
//! this workspace deserializes (derived structs/enums, primitives,
//! collections) goes through this one path.

use crate::Content;
use std::fmt::Display;

/// Error constraint for deserializers, mirroring `serde::de::Error`.
pub trait Error: Sized + std::error::Error {
    fn custom<T: Display>(msg: T) -> Self;
}

/// A type that can be deserialized from any [`Deserializer`].
///
/// The `'de` lifetime is kept for signature compatibility with real serde;
/// this stub's data model is always owned.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// The driver side: yields the parsed value tree.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    /// Surrender the complete value. (This stub's replacement for serde's
    /// visitor protocol.)
    fn deserialize_content(self) -> Result<Content, Self::Error>;
}

/// Generic deserialization error for in-memory conversion.
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl Error for DeError {
    fn custom<T: Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

/// A deserializer over an in-memory [`Content`] tree, generic in the error
/// type so derived code can thread through the outer deserializer's error.
pub struct ContentDeserializer<E> {
    content: Content,
    _marker: std::marker::PhantomData<E>,
}

impl<E> ContentDeserializer<E> {
    pub fn new(content: Content) -> Self {
        ContentDeserializer {
            content,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<'de, E: Error> Deserializer<'de> for ContentDeserializer<E> {
    type Error = E;

    fn deserialize_content(self) -> Result<Content, E> {
        Ok(self.content)
    }
}

/// Deserialize a value out of an in-memory [`Content`] tree.
pub fn from_content<'de, T: Deserialize<'de>, E: Error>(content: Content) -> Result<T, E> {
    T::deserialize(ContentDeserializer::<E>::new(content))
}

/// Remove `key` from a struct's field map and deserialize it. Used by
/// derived `Deserialize` impls.
pub fn take_field<'de, T: Deserialize<'de>, E: Error>(
    fields: &mut Vec<(String, Content)>,
    key: &str,
) -> Result<T, E> {
    match fields.iter().position(|(k, _)| k == key) {
        Some(idx) => from_content(fields.swap_remove(idx).1),
        None => Err(E::custom(format!("missing field `{key}`"))),
    }
}

/// Like [`take_field`], but fall back to `default` when `key` is absent.
/// Hand-written `Deserialize` impls use this to stay loadable across schema
/// growth: a field added in format N+1 deserializes from older payloads as
/// its documented default instead of erroring. (The derive stub has no
/// `#[serde(default)]`; backward-compatible structs write their impl by
/// hand against this helper.)
pub fn take_field_or<'de, T: Deserialize<'de>, E: Error>(
    fields: &mut Vec<(String, Content)>,
    key: &str,
    default: T,
) -> Result<T, E> {
    match fields.iter().position(|(k, _)| k == key) {
        Some(idx) => from_content(fields.swap_remove(idx).1),
        None => Ok(default),
    }
}

// ---- Deserialize impls for std types --------------------------------------

fn number_as_f64(content: &Content) -> Option<f64> {
    match content {
        Content::U64(v) => Some(*v as f64),
        Content::I64(v) => Some(*v as f64),
        Content::F64(v) => Some(*v),
        _ => None,
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.deserialize_content()? {
                    Content::U64(v) => <$t>::try_from(v)
                        .map_err(|_| D::Error::custom(format!(
                            "integer {v} out of range for {}", stringify!($t)
                        ))),
                    Content::I64(v) => <$t>::try_from(v)
                        .map_err(|_| D::Error::custom(format!(
                            "integer {v} out of range for {}", stringify!($t)
                        ))),
                    other => Err(D::Error::custom(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.deserialize_content()? {
                    Content::I64(v) => <$t>::try_from(v)
                        .map_err(|_| D::Error::custom(format!(
                            "integer {v} out of range for {}", stringify!($t)
                        ))),
                    Content::U64(v) => i64::try_from(v)
                        .ok()
                        .and_then(|v| <$t>::try_from(v).ok())
                        .ok_or_else(|| D::Error::custom(format!(
                            "integer {v} out of range for {}", stringify!($t)
                        ))),
                    other => Err(D::Error::custom(format!(
                        "expected integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

de_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let content = deserializer.deserialize_content()?;
        number_as_f64(&content)
            .map(|v| v as f32)
            .ok_or_else(|| D::Error::custom(format!("expected number, got {content:?}")))
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let content = deserializer.deserialize_content()?;
        number_as_f64(&content)
            .ok_or_else(|| D::Error::custom(format!("expected number, got {content:?}")))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Bool(v) => Ok(v),
            other => Err(D::Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(s) => Ok(s),
            other => Err(D::Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Seq(items) => items.into_iter().map(from_content).collect(),
            other => Err(D::Error::custom(format!(
                "expected sequence, got {other:?}"
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(None),
            content => from_content(content).map(Some),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.deserialize_content()? {
                    Content::Seq(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($({
                            let _ = $n;
                            from_content::<$t, D::Error>(it.next().expect("length checked"))?
                        },)+))
                    }
                    other => Err(D::Error::custom(format!(
                        "expected {}-tuple, got {other:?}", $len
                    ))),
                }
            }
        }
    )*};
}

de_tuple! {
    (1; 0 T0)
    (2; 0 T0, 1 T1)
    (3; 0 T0, 1 T1, 2 T2)
    (4; 0 T0, 1 T1, 2 T2, 3 T3)
}
