//! Offline stand-in for `serde_derive`.
//!
//! Derives `Serialize` / `Deserialize` impls targeting the stub `serde`
//! crate's [`Content`] data model. Since `syn`/`quote` are unavailable
//! offline, parsing walks the raw token stream and code generation formats
//! Rust source which is re-parsed into a `TokenStream`.
//!
//! Supported shapes — exactly what this workspace derives on:
//!
//! * structs with named fields (no generics),
//! * enums whose variants are unit or tuple variants of arity ≤ 4.
//!
//! Anything else panics with a clear message at compile time rather than
//! generating subtly wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Input {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<(String, usize)>,
    },
}

/// Skip one attribute (`#[...]`) if present at `i`; returns the new index.
fn skip_attr(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility modifier (`pub`, `pub(...)`) if present.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_input(input: TokenStream, trait_name: &str) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    loop {
        i = skip_attr(&tokens, i);
        i = skip_vis(&tokens, i);
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = match tokens.get(i + 1) {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("derive({trait_name}): expected struct name, got {other:?}"),
                };
                match tokens.get(i + 2) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream(), trait_name);
                        return Input::Struct { name, fields };
                    }
                    other => panic!(
                        "derive({trait_name}) on `{name}`: only non-generic structs with \
                         named fields are supported, got {other:?}"
                    ),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = match tokens.get(i + 1) {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("derive({trait_name}): expected enum name, got {other:?}"),
                };
                match tokens.get(i + 2) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let variants = parse_variants(g.stream(), trait_name);
                        return Input::Enum { name, variants };
                    }
                    other => panic!(
                        "derive({trait_name}) on `{name}`: generics are not supported, \
                         got {other:?}"
                    ),
                }
            }
            Some(_) => i += 1,
            None => panic!("derive({trait_name}): no struct or enum found"),
        }
    }
}

fn parse_named_fields(stream: TokenStream, trait_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attr(&tokens, i);
        i = skip_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("derive({trait_name}): expected field name, got {other:?}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("derive({trait_name}): expected `:` after field, got {other:?}"),
        }
        // Consume the type up to the next comma outside angle brackets.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

fn parse_variants(stream: TokenStream, trait_name: &str) -> Vec<(String, usize)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attr(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("derive({trait_name}): expected variant name, got {other:?}"),
        };
        i += 1;
        let mut arity = 0usize;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    arity = tuple_arity(g.stream());
                    i += 1;
                }
                Delimiter::Brace => {
                    panic!("derive({trait_name}): struct variants are not supported ({name})")
                }
                _ => {}
            }
        }
        if arity > 4 {
            panic!("derive({trait_name}): variant {name} arity {arity} > 4 unsupported");
        }
        variants.push((name, arity));
        // Skip to and over the separating comma, tolerating discriminants.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

/// Number of top-level fields inside a tuple-variant's parens.
fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    commas + if trailing_comma { 0 } else { 1 }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_input(input, "Serialize") {
        Input::Struct { name, fields } => {
            let mut body = format!(
                "let mut __state = serde::Serializer::serialize_struct(\
                 __serializer, \"{name}\", {})?;\n",
                fields.len()
            );
            for f in &fields {
                body.push_str(&format!(
                    "serde::ser::SerializeStruct::serialize_field(\
                     &mut __state, \"{f}\", &self.{f})?;\n"
                ));
            }
            body.push_str("serde::ser::SerializeStruct::end(__state)\n");
            impl_serialize(&name, &body)
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for (idx, (v, arity)) in variants.iter().enumerate() {
                if *arity == 0 {
                    arms.push_str(&format!(
                        "{name}::{v} => serde::Serializer::serialize_unit_variant(\
                         __serializer, \"{name}\", {idx}u32, \"{v}\"),\n"
                    ));
                } else {
                    let binds: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                    let bind_list = binds.join(", ");
                    let value = if *arity == 1 {
                        "__f0".to_string()
                    } else {
                        format!("&({bind_list})")
                    };
                    arms.push_str(&format!(
                        "{name}::{v}({bind_list}) => \
                         serde::Serializer::serialize_newtype_variant(\
                         __serializer, \"{name}\", {idx}u32, \"{v}\", {value}),\n"
                    ));
                }
            }
            impl_serialize(&name, &format!("match self {{\n{arms}}}\n"))
        }
    };
    code.parse()
        .expect("derive(Serialize): generated code must parse")
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn serialize<__S: serde::Serializer>(&self, __serializer: __S) \
         -> ::std::result::Result<__S::Ok, __S::Error> {{\n{body}}}\n}}\n"
    )
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_input(input, "Deserialize") {
        Input::Struct { name, fields } => {
            let mut ctor = String::new();
            for f in &fields {
                ctor.push_str(&format!(
                    "{f}: serde::de::take_field(&mut __fields, \"{f}\")?,\n"
                ));
            }
            impl_deserialize(
                &name,
                &format!(
                    "match serde::Deserializer::deserialize_content(__deserializer)? {{\n\
                     serde::Content::Map(mut __fields) => {{\n\
                     let _ = &mut __fields;\n\
                     ::std::result::Result::Ok({name} {{\n{ctor}}})\n\
                     }}\n\
                     __other => ::std::result::Result::Err(\
                     <__D::Error as serde::de::Error>::custom(::std::format!(\
                     \"expected map for struct {name}, got {{:?}}\", __other))),\n\
                     }}\n"
                ),
            )
        }
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (v, arity) in &variants {
                if *arity == 0 {
                    unit_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"
                    ));
                } else {
                    let binds: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                    let bind_list = binds.join(", ");
                    // A newtype (arity-1) variant holds its value directly;
                    // higher arities round-trip through a tuple.
                    let pattern = if *arity == 1 {
                        bind_list.clone()
                    } else {
                        format!("({bind_list})")
                    };
                    data_arms.push_str(&format!(
                        "\"{v}\" => {{\n\
                         let {pattern} = serde::de::from_content(__value)?;\n\
                         ::std::result::Result::Ok({name}::{v}({bind_list}))\n\
                         }}\n"
                    ));
                }
            }
            impl_deserialize(
                &name,
                &format!(
                    "match serde::Deserializer::deserialize_content(__deserializer)? {{\n\
                     serde::Content::Str(__s) => match __s.as_str() {{\n\
                     {unit_arms}\
                     __other => ::std::result::Result::Err(\
                     <__D::Error as serde::de::Error>::custom(::std::format!(\
                     \"unknown variant `{{}}` of {name}\", __other))),\n\
                     }},\n\
                     serde::Content::Map(mut __m) if __m.len() == 1 => {{\n\
                     let (__k, __value) = __m.pop().expect(\"length checked\");\n\
                     let _ = &__value;\n\
                     match __k.as_str() {{\n\
                     {data_arms}\
                     __other => ::std::result::Result::Err(\
                     <__D::Error as serde::de::Error>::custom(::std::format!(\
                     \"unknown variant `{{}}` of {name}\", __other))),\n\
                     }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(\
                     <__D::Error as serde::de::Error>::custom(::std::format!(\
                     \"expected variant of {name}, got {{:?}}\", __other))),\n\
                     }}\n"
                ),
            )
        }
    };
    code.parse()
        .expect("derive(Deserialize): generated code must parse")
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) \
         -> ::std::result::Result<Self, __D::Error> {{\n{body}}}\n}}\n"
    )
}
