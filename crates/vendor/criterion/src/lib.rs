//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the bench suite uses — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `Throughput`, `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock loop: a warm-up
//! pass sizes the iteration count per sample, then the median over samples
//! is reported as ns/iter (plus derived throughput when declared).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identity function opaque to the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work per iteration, used to derive a rate from the time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark name with an attached parameter, e.g. `matmul/256`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.full)
    }
}

/// Top-level handle; holds defaults inherited by groups.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        run_one(name, self.sample_size, None, &mut f);
    }
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.sample_size,
            self.throughput,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` runs the routine and records time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Warm-up: time a single iteration to size per-sample iteration counts
    // so each sample lasts roughly 20ms without taking forever on slow runs.
    let mut bench = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bench);
    let once = bench.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(20);
    let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bench = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bench);
        per_iter_ns.push(bench.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let lo = per_iter_ns[0];
    let hi = per_iter_ns[per_iter_ns.len() - 1];

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!("{:>14}/s", format_rate(n as f64 / (median * 1e-9), "elem"))
        }
        Throughput::Bytes(n) => format!("{:>14}/s", format_rate(n as f64 / (median * 1e-9), "B")),
    });
    println!(
        "{label:<48} {:>12}/iter  [{} .. {}]{}",
        format_ns(median),
        format_ns(lo),
        format_ns(hi),
        rate.map(|r| format!("  {r}")).unwrap_or_default(),
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn format_rate(per_s: f64, unit: &str) -> String {
    if per_s >= 1e9 {
        format!("{:.2} G{unit}", per_s / 1e9)
    } else if per_s >= 1e6 {
        format!("{:.2} M{unit}", per_s / 1e6)
    } else if per_s >= 1e3 {
        format!("{:.2} K{unit}", per_s / 1e3)
    } else {
        format!("{per_s:.1} {unit}")
    }
}

/// Declare a group of benchmark functions, optionally with a configured
/// `Criterion` instance, mirroring real criterion's two invocation forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `fn main` running the given groups (bench targets set
/// `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("test");
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sized", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
