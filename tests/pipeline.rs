//! End-to-end integration: simulate → featurize → train → forecast → score,
//! crossing every crate in the workspace.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ranknet::core::baseline_adapters::CurRankForecaster;
use ranknet::core::eval::{eval_short_term, eval_stint, EvalConfig};
use ranknet::core::features::extract_sequences;
use ranknet::core::ranknet::{ranks_by_sorting, RankNet, RankNetVariant};
use ranknet::core::RankNetConfig;
use ranknet::racesim::{simulate_race, Dataset, Event, EventConfig, Split};

fn tiny_cfg() -> RankNetConfig {
    let mut cfg = RankNetConfig::tiny();
    cfg.max_epochs = 3;
    cfg
}

#[test]
fn full_pipeline_ranknet_mlp() {
    let dataset = Dataset::generate_event(Event::Indy500, 99);
    let train: Vec<_> = dataset
        .split(Event::Indy500, Split::Training)
        .iter()
        .take(2)
        .map(|(_, r)| extract_sequences(r))
        .collect();
    let val: Vec<_> = dataset
        .split(Event::Indy500, Split::Validation)
        .iter()
        .map(|(_, r)| extract_sequences(r))
        .collect();
    let test = extract_sequences(dataset.race(Event::Indy500, 2019));

    let (model, report) = RankNet::fit(train, val, tiny_cfg(), RankNetVariant::Mlp, 24);
    assert!(report.rank_model.best_val_loss.is_finite());
    assert!(report.pit_model.is_some());

    let mut rng = StdRng::seed_from_u64(1);
    let samples = model.forecast(&test, 60, 2, 8, &mut rng);
    let covered = samples.iter().filter(|s| !s.is_empty()).count();
    assert!(
        covered > 20,
        "forecast should cover most of the field, got {covered}"
    );

    // The sorted samples are valid rank permutations.
    let ranked = ranks_by_sorting(&samples, 1);
    let mut firsts = 0;
    for per_car in ranked.iter().filter(|r| !r.is_empty()) {
        assert_eq!(per_car.len(), 8);
        firsts += per_car.iter().filter(|&&r| r == 1.0).count();
    }
    assert_eq!(firsts, 8, "each sample must have exactly one leader");
}

#[test]
fn oracle_beats_currank_on_pit_laps_when_trained() {
    // The paper's core claim in miniature: given the true future race
    // status, the decomposed model forecasts pit-lap rank changes better
    // than persistence. Uses a modest but real training run.
    let dataset = Dataset::generate_event(Event::Indy500, 5);
    let train: Vec<_> = dataset
        .split(Event::Indy500, Split::Training)
        .iter()
        .map(|(_, r)| extract_sequences(r))
        .collect();
    let val: Vec<_> = dataset
        .split(Event::Indy500, Split::Validation)
        .iter()
        .map(|(_, r)| extract_sequences(r))
        .collect();
    let test = extract_sequences(dataset.race(Event::Indy500, 2019));

    let cfg = RankNetConfig {
        max_epochs: 6,
        context_len: 40,
        ..Default::default()
    };
    let (oracle, _) = RankNet::fit(train, val, cfg, RankNetVariant::Oracle, 12);

    // 48 samples: at 16 the Monte-Carlo error on pit-lap MAE (~±0.07) is
    // as large as the Oracle-vs-CurRank margin this asserts.
    let eval_cfg = EvalConfig {
        n_samples: 48,
        origin_step: 14,
        ..EvalConfig::fast()
    };
    let oracle_row = eval_short_term(&oracle, &test, &eval_cfg);
    let currank_row = eval_short_term(&CurRankForecaster, &test, &eval_cfg);

    assert!(
        oracle_row.pit_covered.mae < currank_row.pit_covered.mae,
        "Oracle pit-lap MAE {} must beat CurRank {}",
        oracle_row.pit_covered.mae,
        currank_row.pit_covered.mae
    );
}

#[test]
fn stint_eval_runs_end_to_end() {
    let race = simulate_race(&EventConfig::for_race(Event::Indy500, 2019), 3);
    let ctx = extract_sequences(&race);
    let row = eval_stint(&CurRankForecaster, &ctx, &EvalConfig::fast());
    assert!(row.n > 5, "found {} stints", row.n);
    assert!(row.sign_acc <= 1.0 && row.mae.is_finite());
}

#[test]
fn different_events_flow_through_the_same_pipeline() {
    for event in [Event::Iowa, Event::Texas, Event::Pocono] {
        let years = ranknet::racesim::EventConfig::years(event);
        let race = simulate_race(&EventConfig::for_race(event, years[0]), 11);
        let ctx = extract_sequences(&race);
        assert!(ctx.sequences.len() >= 15, "{event:?}");
        let row = eval_short_term(&CurRankForecaster, &ctx, &EvalConfig::fast());
        assert!(row.all.n > 0 && row.all.mae.is_finite(), "{event:?}");
    }
}
