//! Property-style integration tests of paper-level invariants that span
//! crates: forecast distributions, data statistics, and metric relations.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ranknet::core::baseline_adapters::{ArimaForecaster, CurRankForecaster, Forecaster};
use ranknet::core::eval::{window_has_pit, EvalConfig};
use ranknet::core::features::extract_sequences;
use ranknet::core::metrics::{quantile, rho_risk_from_samples};
use ranknet::core::ranknet::{median_ranks, ranks_by_sorting};
use ranknet::racesim::{simulate_race, Event, EventConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn ranks_by_sorting_is_always_a_permutation(seed in 0u64..500, origin in 30usize..150) {
        let race = simulate_race(&EventConfig::for_race(Event::Indy500, 2017), seed);
        let ctx = extract_sequences(&race);
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = ArimaForecaster::default().forecast(&ctx, origin, 2, 5, &mut rng);
        let ranked = ranks_by_sorting(&samples, 1);
        let n_present = ranked.iter().filter(|r| !r.is_empty()).count();
        for s in 0..5 {
            let mut seen: Vec<f32> = ranked
                .iter()
                .filter(|r| !r.is_empty())
                .map(|r| r[s])
                .collect();
            seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let expect: Vec<f32> = (1..=n_present).map(|v| v as f32).collect();
            prop_assert_eq!(&seen, &expect);
        }
    }

    #[test]
    fn quantiles_are_monotone_in_rho(seed in 0u64..500) {
        let race = simulate_race(&EventConfig::for_race(Event::Texas, 2016), seed);
        let ctx = extract_sequences(&race);
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        let samples = ArimaForecaster::default().forecast(&ctx, 60, 2, 12, &mut rng);
        for per_car in samples.iter().filter(|s| !s.is_empty()) {
            let finals: Vec<f32> = per_car.iter().map(|p| p[1]).collect();
            let q = [0.1, 0.5, 0.9].map(|r| quantile(&finals, r));
            prop_assert!(q[0] <= q[1] && q[1] <= q[2]);
        }
    }

    #[test]
    fn currank_risk_is_zero_only_when_ranks_frozen(seed in 0u64..200) {
        let race = simulate_race(&EventConfig::for_race(Event::Iowa, 2016), seed);
        let ctx = extract_sequences(&race);
        let mut rng = StdRng::seed_from_u64(seed);
        let origin = 100usize;
        let samples = CurRankForecaster.forecast(&ctx, origin, 2, 1, &mut rng);
        let mut per_point_samples = Vec::new();
        let mut actuals = Vec::new();
        for (c, seq) in ctx.sequences.iter().enumerate() {
            if samples[c].is_empty() || seq.len() <= origin + 1 {
                continue;
            }
            per_point_samples.push(vec![samples[c][0][1]]);
            actuals.push(seq.rank[origin + 1]);
        }
        let risk = rho_risk_from_samples(&per_point_samples, &actuals, 0.5);
        let frozen = per_point_samples
            .iter()
            .zip(&actuals)
            .all(|(s, &a)| s[0] == a);
        prop_assert_eq!(risk == 0.0, frozen);
    }
}

#[test]
fn median_ranks_align_with_forecast_cars() {
    let race = simulate_race(&EventConfig::for_race(Event::Indy500, 2016), 4);
    let ctx = extract_sequences(&race);
    let mut rng = StdRng::seed_from_u64(4);
    let samples = CurRankForecaster.forecast(&ctx, 80, 2, 1, &mut rng);
    let ranked = ranks_by_sorting(&samples, 1);
    let med = median_ranks(&ranked);
    for (c, m) in med.iter().enumerate() {
        assert_eq!(m.is_some(), !samples[c].is_empty());
    }
}

#[test]
fn pit_windows_are_a_minority_of_iowa_but_common_at_indy() {
    // Fig 6's qualitative claim as a cross-crate check.
    let indy = extract_sequences(&simulate_race(
        &EventConfig::for_race(Event::Indy500, 2018),
        8,
    ));
    let iowa = extract_sequences(&simulate_race(&EventConfig::for_race(Event::Iowa, 2018), 8));
    let count = |ctx: &ranknet::core::features::RaceContext| {
        let lo = 25;
        let hi = ctx.total_laps - 2;
        let n = (lo..hi).filter(|&o| window_has_pit(ctx, o, 2)).count();
        n as f32 / (hi - lo) as f32
    };
    assert!(
        count(&indy) > count(&iowa),
        "Indy500 should have more pit-covered windows"
    );
}

#[test]
fn eval_config_presets_are_consistent() {
    let fast = EvalConfig::fast();
    let full = EvalConfig::default();
    assert!(fast.n_samples <= full.n_samples);
    assert!(fast.origin_step >= full.origin_step);
    assert_eq!(fast.horizon, 2);
}
