/root/repo/target/release/deps/parking_lot-e18211aab5dff8f4.d: crates/vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-e18211aab5dff8f4.rlib: crates/vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-e18211aab5dff8f4.rmeta: crates/vendor/parking_lot/src/lib.rs

crates/vendor/parking_lot/src/lib.rs:
