/root/repo/target/release/deps/rand-f86c809d381969e9.d: crates/vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-f86c809d381969e9.rlib: crates/vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-f86c809d381969e9.rmeta: crates/vendor/rand/src/lib.rs

crates/vendor/rand/src/lib.rs:
