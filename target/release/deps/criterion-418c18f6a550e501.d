/root/repo/target/release/deps/criterion-418c18f6a550e501.d: crates/vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-418c18f6a550e501.rlib: crates/vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-418c18f6a550e501.rmeta: crates/vendor/criterion/src/lib.rs

crates/vendor/criterion/src/lib.rs:
