/root/repo/target/release/deps/rpf_tensor-95bd5539b9826626.d: crates/tensor/src/lib.rs crates/tensor/src/counters.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/par.rs

/root/repo/target/release/deps/librpf_tensor-95bd5539b9826626.rlib: crates/tensor/src/lib.rs crates/tensor/src/counters.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/par.rs

/root/repo/target/release/deps/librpf_tensor-95bd5539b9826626.rmeta: crates/tensor/src/lib.rs crates/tensor/src/counters.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/par.rs

crates/tensor/src/lib.rs:
crates/tensor/src/counters.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/par.rs:
