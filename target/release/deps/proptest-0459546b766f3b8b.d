/root/repo/target/release/deps/proptest-0459546b766f3b8b.d: crates/vendor/proptest/src/lib.rs crates/vendor/proptest/src/collection.rs crates/vendor/proptest/src/sample.rs crates/vendor/proptest/src/strategy.rs crates/vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-0459546b766f3b8b.rlib: crates/vendor/proptest/src/lib.rs crates/vendor/proptest/src/collection.rs crates/vendor/proptest/src/sample.rs crates/vendor/proptest/src/strategy.rs crates/vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-0459546b766f3b8b.rmeta: crates/vendor/proptest/src/lib.rs crates/vendor/proptest/src/collection.rs crates/vendor/proptest/src/sample.rs crates/vendor/proptest/src/strategy.rs crates/vendor/proptest/src/test_runner.rs

crates/vendor/proptest/src/lib.rs:
crates/vendor/proptest/src/collection.rs:
crates/vendor/proptest/src/sample.rs:
crates/vendor/proptest/src/strategy.rs:
crates/vendor/proptest/src/test_runner.rs:
