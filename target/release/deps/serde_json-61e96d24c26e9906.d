/root/repo/target/release/deps/serde_json-61e96d24c26e9906.d: crates/vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-61e96d24c26e9906.rlib: crates/vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-61e96d24c26e9906.rmeta: crates/vendor/serde_json/src/lib.rs

crates/vendor/serde_json/src/lib.rs:
