/root/repo/target/release/deps/rpf_nn-7b335f4654543676.d: crates/nn/src/lib.rs crates/nn/src/adam.rs crates/nn/src/attention.rs crates/nn/src/data.rs crates/nn/src/embedding.rs crates/nn/src/gaussian.rs crates/nn/src/init.rs crates/nn/src/linear.rs crates/nn/src/lstm.rs crates/nn/src/mlp.rs crates/nn/src/params.rs crates/nn/src/stream.rs crates/nn/src/train.rs

/root/repo/target/release/deps/librpf_nn-7b335f4654543676.rlib: crates/nn/src/lib.rs crates/nn/src/adam.rs crates/nn/src/attention.rs crates/nn/src/data.rs crates/nn/src/embedding.rs crates/nn/src/gaussian.rs crates/nn/src/init.rs crates/nn/src/linear.rs crates/nn/src/lstm.rs crates/nn/src/mlp.rs crates/nn/src/params.rs crates/nn/src/stream.rs crates/nn/src/train.rs

/root/repo/target/release/deps/librpf_nn-7b335f4654543676.rmeta: crates/nn/src/lib.rs crates/nn/src/adam.rs crates/nn/src/attention.rs crates/nn/src/data.rs crates/nn/src/embedding.rs crates/nn/src/gaussian.rs crates/nn/src/init.rs crates/nn/src/linear.rs crates/nn/src/lstm.rs crates/nn/src/mlp.rs crates/nn/src/params.rs crates/nn/src/stream.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/adam.rs:
crates/nn/src/attention.rs:
crates/nn/src/data.rs:
crates/nn/src/embedding.rs:
crates/nn/src/gaussian.rs:
crates/nn/src/init.rs:
crates/nn/src/linear.rs:
crates/nn/src/lstm.rs:
crates/nn/src/mlp.rs:
crates/nn/src/params.rs:
crates/nn/src/stream.rs:
crates/nn/src/train.rs:
