/root/repo/target/release/deps/rpf_baselines-4b24126ff2336c5b.d: crates/baselines/src/lib.rs crates/baselines/src/arima.rs crates/baselines/src/currank.rs crates/baselines/src/forest.rs crates/baselines/src/gbt.rs crates/baselines/src/linalg.rs crates/baselines/src/svr.rs crates/baselines/src/tree.rs

/root/repo/target/release/deps/librpf_baselines-4b24126ff2336c5b.rlib: crates/baselines/src/lib.rs crates/baselines/src/arima.rs crates/baselines/src/currank.rs crates/baselines/src/forest.rs crates/baselines/src/gbt.rs crates/baselines/src/linalg.rs crates/baselines/src/svr.rs crates/baselines/src/tree.rs

/root/repo/target/release/deps/librpf_baselines-4b24126ff2336c5b.rmeta: crates/baselines/src/lib.rs crates/baselines/src/arima.rs crates/baselines/src/currank.rs crates/baselines/src/forest.rs crates/baselines/src/gbt.rs crates/baselines/src/linalg.rs crates/baselines/src/svr.rs crates/baselines/src/tree.rs

crates/baselines/src/lib.rs:
crates/baselines/src/arima.rs:
crates/baselines/src/currank.rs:
crates/baselines/src/forest.rs:
crates/baselines/src/gbt.rs:
crates/baselines/src/linalg.rs:
crates/baselines/src/svr.rs:
crates/baselines/src/tree.rs:
