/root/repo/target/release/deps/ranknet-4bfe7efe41519d0e.d: src/lib.rs

/root/repo/target/release/deps/libranknet-4bfe7efe41519d0e.rlib: src/lib.rs

/root/repo/target/release/deps/libranknet-4bfe7efe41519d0e.rmeta: src/lib.rs

src/lib.rs:
