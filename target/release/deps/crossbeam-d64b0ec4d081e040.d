/root/repo/target/release/deps/crossbeam-d64b0ec4d081e040.d: crates/vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-d64b0ec4d081e040.rlib: crates/vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-d64b0ec4d081e040.rmeta: crates/vendor/crossbeam/src/lib.rs

crates/vendor/crossbeam/src/lib.rs:
