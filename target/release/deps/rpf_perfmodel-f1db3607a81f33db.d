/root/repo/target/release/deps/rpf_perfmodel-f1db3607a81f33db.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/breakdown.rs crates/perfmodel/src/devices.rs crates/perfmodel/src/roofline.rs crates/perfmodel/src/workload.rs

/root/repo/target/release/deps/librpf_perfmodel-f1db3607a81f33db.rlib: crates/perfmodel/src/lib.rs crates/perfmodel/src/breakdown.rs crates/perfmodel/src/devices.rs crates/perfmodel/src/roofline.rs crates/perfmodel/src/workload.rs

/root/repo/target/release/deps/librpf_perfmodel-f1db3607a81f33db.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/breakdown.rs crates/perfmodel/src/devices.rs crates/perfmodel/src/roofline.rs crates/perfmodel/src/workload.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/breakdown.rs:
crates/perfmodel/src/devices.rs:
crates/perfmodel/src/roofline.rs:
crates/perfmodel/src/workload.rs:
