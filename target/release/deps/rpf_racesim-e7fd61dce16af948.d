/root/repo/target/release/deps/rpf_racesim-e7fd61dce16af948.d: crates/racesim/src/lib.rs crates/racesim/src/car.rs crates/racesim/src/dataset.rs crates/racesim/src/sim.rs crates/racesim/src/stats.rs crates/racesim/src/track.rs crates/racesim/src/types.rs

/root/repo/target/release/deps/librpf_racesim-e7fd61dce16af948.rlib: crates/racesim/src/lib.rs crates/racesim/src/car.rs crates/racesim/src/dataset.rs crates/racesim/src/sim.rs crates/racesim/src/stats.rs crates/racesim/src/track.rs crates/racesim/src/types.rs

/root/repo/target/release/deps/librpf_racesim-e7fd61dce16af948.rmeta: crates/racesim/src/lib.rs crates/racesim/src/car.rs crates/racesim/src/dataset.rs crates/racesim/src/sim.rs crates/racesim/src/stats.rs crates/racesim/src/track.rs crates/racesim/src/types.rs

crates/racesim/src/lib.rs:
crates/racesim/src/car.rs:
crates/racesim/src/dataset.rs:
crates/racesim/src/sim.rs:
crates/racesim/src/stats.rs:
crates/racesim/src/track.rs:
crates/racesim/src/types.rs:
