/root/repo/target/release/deps/serde_derive-4a9c0ab3743c5ba5.d: crates/vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-4a9c0ab3743c5ba5.so: crates/vendor/serde_derive/src/lib.rs

crates/vendor/serde_derive/src/lib.rs:
