/root/repo/target/release/deps/rpf_tensor-c16a308da30f322e.d: crates/tensor/src/lib.rs crates/tensor/src/counters.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/par.rs

/root/repo/target/release/deps/librpf_tensor-c16a308da30f322e.rlib: crates/tensor/src/lib.rs crates/tensor/src/counters.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/par.rs

/root/repo/target/release/deps/librpf_tensor-c16a308da30f322e.rmeta: crates/tensor/src/lib.rs crates/tensor/src/counters.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/par.rs

crates/tensor/src/lib.rs:
crates/tensor/src/counters.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/par.rs:
