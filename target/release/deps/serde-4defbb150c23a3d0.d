/root/repo/target/release/deps/serde-4defbb150c23a3d0.d: crates/vendor/serde/src/lib.rs crates/vendor/serde/src/de.rs crates/vendor/serde/src/ser.rs

/root/repo/target/release/deps/libserde-4defbb150c23a3d0.rlib: crates/vendor/serde/src/lib.rs crates/vendor/serde/src/de.rs crates/vendor/serde/src/ser.rs

/root/repo/target/release/deps/libserde-4defbb150c23a3d0.rmeta: crates/vendor/serde/src/lib.rs crates/vendor/serde/src/de.rs crates/vendor/serde/src/ser.rs

crates/vendor/serde/src/lib.rs:
crates/vendor/serde/src/de.rs:
crates/vendor/serde/src/ser.rs:
