/root/repo/target/release/deps/rpf_autodiff-66ee465a31d51f3d.d: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/tape.rs

/root/repo/target/release/deps/librpf_autodiff-66ee465a31d51f3d.rlib: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/tape.rs

/root/repo/target/release/deps/librpf_autodiff-66ee465a31d51f3d.rmeta: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/tape.rs

crates/autodiff/src/lib.rs:
crates/autodiff/src/gradcheck.rs:
crates/autodiff/src/tape.rs:
