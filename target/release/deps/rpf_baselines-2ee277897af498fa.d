/root/repo/target/release/deps/rpf_baselines-2ee277897af498fa.d: crates/baselines/src/lib.rs crates/baselines/src/arima.rs crates/baselines/src/currank.rs crates/baselines/src/forest.rs crates/baselines/src/gbt.rs crates/baselines/src/linalg.rs crates/baselines/src/svr.rs crates/baselines/src/tree.rs

/root/repo/target/release/deps/librpf_baselines-2ee277897af498fa.rlib: crates/baselines/src/lib.rs crates/baselines/src/arima.rs crates/baselines/src/currank.rs crates/baselines/src/forest.rs crates/baselines/src/gbt.rs crates/baselines/src/linalg.rs crates/baselines/src/svr.rs crates/baselines/src/tree.rs

/root/repo/target/release/deps/librpf_baselines-2ee277897af498fa.rmeta: crates/baselines/src/lib.rs crates/baselines/src/arima.rs crates/baselines/src/currank.rs crates/baselines/src/forest.rs crates/baselines/src/gbt.rs crates/baselines/src/linalg.rs crates/baselines/src/svr.rs crates/baselines/src/tree.rs

crates/baselines/src/lib.rs:
crates/baselines/src/arima.rs:
crates/baselines/src/currank.rs:
crates/baselines/src/forest.rs:
crates/baselines/src/gbt.rs:
crates/baselines/src/linalg.rs:
crates/baselines/src/svr.rs:
crates/baselines/src/tree.rs:
