/root/repo/target/release/deps/rpf_perfmodel-12afccd08a70aaf1.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/breakdown.rs crates/perfmodel/src/devices.rs crates/perfmodel/src/roofline.rs crates/perfmodel/src/workload.rs

/root/repo/target/release/deps/librpf_perfmodel-12afccd08a70aaf1.rlib: crates/perfmodel/src/lib.rs crates/perfmodel/src/breakdown.rs crates/perfmodel/src/devices.rs crates/perfmodel/src/roofline.rs crates/perfmodel/src/workload.rs

/root/repo/target/release/deps/librpf_perfmodel-12afccd08a70aaf1.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/breakdown.rs crates/perfmodel/src/devices.rs crates/perfmodel/src/roofline.rs crates/perfmodel/src/workload.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/breakdown.rs:
crates/perfmodel/src/devices.rs:
crates/perfmodel/src/roofline.rs:
crates/perfmodel/src/workload.rs:
