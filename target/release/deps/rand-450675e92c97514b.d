/root/repo/target/release/deps/rand-450675e92c97514b.d: crates/vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-450675e92c97514b.rlib: crates/vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-450675e92c97514b.rmeta: crates/vendor/rand/src/lib.rs

crates/vendor/rand/src/lib.rs:
