/root/repo/target/release/deps/serde_derive-9ab251f099d3da75.d: crates/vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-9ab251f099d3da75.so: crates/vendor/serde_derive/src/lib.rs

crates/vendor/serde_derive/src/lib.rs:
