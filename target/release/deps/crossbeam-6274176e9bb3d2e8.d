/root/repo/target/release/deps/crossbeam-6274176e9bb3d2e8.d: crates/vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-6274176e9bb3d2e8.rlib: crates/vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-6274176e9bb3d2e8.rmeta: crates/vendor/crossbeam/src/lib.rs

crates/vendor/crossbeam/src/lib.rs:
