/root/repo/target/release/deps/serde-639178c0653e532f.d: crates/vendor/serde/src/lib.rs crates/vendor/serde/src/de.rs crates/vendor/serde/src/ser.rs

/root/repo/target/release/deps/libserde-639178c0653e532f.rlib: crates/vendor/serde/src/lib.rs crates/vendor/serde/src/de.rs crates/vendor/serde/src/ser.rs

/root/repo/target/release/deps/libserde-639178c0653e532f.rmeta: crates/vendor/serde/src/lib.rs crates/vendor/serde/src/de.rs crates/vendor/serde/src/ser.rs

crates/vendor/serde/src/lib.rs:
crates/vendor/serde/src/de.rs:
crates/vendor/serde/src/ser.rs:
