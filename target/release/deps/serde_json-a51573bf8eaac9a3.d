/root/repo/target/release/deps/serde_json-a51573bf8eaac9a3.d: crates/vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-a51573bf8eaac9a3.rlib: crates/vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-a51573bf8eaac9a3.rmeta: crates/vendor/serde_json/src/lib.rs

crates/vendor/serde_json/src/lib.rs:
