/root/repo/target/release/deps/forecasting-b1efc2a9ef4fc3b7.d: crates/bench/benches/forecasting.rs

/root/repo/target/release/deps/forecasting-b1efc2a9ef4fc3b7: crates/bench/benches/forecasting.rs

crates/bench/benches/forecasting.rs:
