/root/repo/target/release/deps/rpf_autodiff-607e0ce50f2f9e5a.d: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/tape.rs

/root/repo/target/release/deps/librpf_autodiff-607e0ce50f2f9e5a.rlib: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/tape.rs

/root/repo/target/release/deps/librpf_autodiff-607e0ce50f2f9e5a.rmeta: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/tape.rs

crates/autodiff/src/lib.rs:
crates/autodiff/src/gradcheck.rs:
crates/autodiff/src/tape.rs:
