/root/repo/target/release/deps/parking_lot-0e91ea5e63da3536.d: crates/vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-0e91ea5e63da3536.rlib: crates/vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-0e91ea5e63da3536.rmeta: crates/vendor/parking_lot/src/lib.rs

crates/vendor/parking_lot/src/lib.rs:
