/root/repo/target/release/examples/live_forecast-7a4c5ad626967645.d: examples/live_forecast.rs

/root/repo/target/release/examples/live_forecast-7a4c5ad626967645: examples/live_forecast.rs

examples/live_forecast.rs:
