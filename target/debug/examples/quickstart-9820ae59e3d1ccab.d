/root/repo/target/debug/examples/quickstart-9820ae59e3d1ccab.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-9820ae59e3d1ccab.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
