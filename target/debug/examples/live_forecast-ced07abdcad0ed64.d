/root/repo/target/debug/examples/live_forecast-ced07abdcad0ed64.d: examples/live_forecast.rs Cargo.toml

/root/repo/target/debug/examples/liblive_forecast-ced07abdcad0ed64.rmeta: examples/live_forecast.rs Cargo.toml

examples/live_forecast.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
