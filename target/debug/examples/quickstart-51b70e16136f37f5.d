/root/repo/target/debug/examples/quickstart-51b70e16136f37f5.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-51b70e16136f37f5: examples/quickstart.rs

examples/quickstart.rs:
