/root/repo/target/debug/examples/train_ranknet-cb0f36a7b9f0e88d.d: examples/train_ranknet.rs

/root/repo/target/debug/examples/train_ranknet-cb0f36a7b9f0e88d: examples/train_ranknet.rs

examples/train_ranknet.rs:
