/root/repo/target/debug/examples/live_forecast-c618ad03caa42f15.d: examples/live_forecast.rs

/root/repo/target/debug/examples/live_forecast-c618ad03caa42f15: examples/live_forecast.rs

examples/live_forecast.rs:
