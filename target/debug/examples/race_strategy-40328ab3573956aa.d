/root/repo/target/debug/examples/race_strategy-40328ab3573956aa.d: examples/race_strategy.rs

/root/repo/target/debug/examples/race_strategy-40328ab3573956aa: examples/race_strategy.rs

examples/race_strategy.rs:
