/root/repo/target/debug/examples/train_ranknet-dcd3c5eba6189d55.d: examples/train_ranknet.rs Cargo.toml

/root/repo/target/debug/examples/libtrain_ranknet-dcd3c5eba6189d55.rmeta: examples/train_ranknet.rs Cargo.toml

examples/train_ranknet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
