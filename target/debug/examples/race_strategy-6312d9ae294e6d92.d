/root/repo/target/debug/examples/race_strategy-6312d9ae294e6d92.d: examples/race_strategy.rs Cargo.toml

/root/repo/target/debug/examples/librace_strategy-6312d9ae294e6d92.rmeta: examples/race_strategy.rs Cargo.toml

examples/race_strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
