/root/repo/target/debug/deps/engine_robustness-61e4a6bcc92b05e1.d: crates/core/tests/engine_robustness.rs

/root/repo/target/debug/deps/engine_robustness-61e4a6bcc92b05e1: crates/core/tests/engine_robustness.rs

crates/core/tests/engine_robustness.rs:
