/root/repo/target/debug/deps/criterion-7c628032f838dfd6.d: crates/vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-7c628032f838dfd6.rlib: crates/vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-7c628032f838dfd6.rmeta: crates/vendor/criterion/src/lib.rs

crates/vendor/criterion/src/lib.rs:
