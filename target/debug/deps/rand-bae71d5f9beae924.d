/root/repo/target/debug/deps/rand-bae71d5f9beae924.d: crates/vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-bae71d5f9beae924.rmeta: crates/vendor/rand/src/lib.rs Cargo.toml

crates/vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
