/root/repo/target/debug/deps/engine_robustness-a300327a4f7d5724.d: crates/core/tests/engine_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libengine_robustness-a300327a4f7d5724.rmeta: crates/core/tests/engine_robustness.rs Cargo.toml

crates/core/tests/engine_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
