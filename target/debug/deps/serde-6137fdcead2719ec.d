/root/repo/target/debug/deps/serde-6137fdcead2719ec.d: crates/vendor/serde/src/lib.rs crates/vendor/serde/src/de.rs crates/vendor/serde/src/ser.rs

/root/repo/target/debug/deps/serde-6137fdcead2719ec: crates/vendor/serde/src/lib.rs crates/vendor/serde/src/de.rs crates/vendor/serde/src/ser.rs

crates/vendor/serde/src/lib.rs:
crates/vendor/serde/src/de.rs:
crates/vendor/serde/src/ser.rs:
