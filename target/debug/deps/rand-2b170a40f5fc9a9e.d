/root/repo/target/debug/deps/rand-2b170a40f5fc9a9e.d: crates/vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-2b170a40f5fc9a9e.rlib: crates/vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-2b170a40f5fc9a9e.rmeta: crates/vendor/rand/src/lib.rs

crates/vendor/rand/src/lib.rs:
