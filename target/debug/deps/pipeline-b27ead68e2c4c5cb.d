/root/repo/target/debug/deps/pipeline-b27ead68e2c4c5cb.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-b27ead68e2c4c5cb.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
