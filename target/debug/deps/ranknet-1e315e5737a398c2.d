/root/repo/target/debug/deps/ranknet-1e315e5737a398c2.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libranknet-1e315e5737a398c2.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
