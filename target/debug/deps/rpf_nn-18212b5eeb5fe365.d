/root/repo/target/debug/deps/rpf_nn-18212b5eeb5fe365.d: crates/nn/src/lib.rs crates/nn/src/adam.rs crates/nn/src/attention.rs crates/nn/src/data.rs crates/nn/src/embedding.rs crates/nn/src/gaussian.rs crates/nn/src/init.rs crates/nn/src/linear.rs crates/nn/src/lstm.rs crates/nn/src/mlp.rs crates/nn/src/params.rs crates/nn/src/stream.rs crates/nn/src/train.rs Cargo.toml

/root/repo/target/debug/deps/librpf_nn-18212b5eeb5fe365.rmeta: crates/nn/src/lib.rs crates/nn/src/adam.rs crates/nn/src/attention.rs crates/nn/src/data.rs crates/nn/src/embedding.rs crates/nn/src/gaussian.rs crates/nn/src/init.rs crates/nn/src/linear.rs crates/nn/src/lstm.rs crates/nn/src/mlp.rs crates/nn/src/params.rs crates/nn/src/stream.rs crates/nn/src/train.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/adam.rs:
crates/nn/src/attention.rs:
crates/nn/src/data.rs:
crates/nn/src/embedding.rs:
crates/nn/src/gaussian.rs:
crates/nn/src/init.rs:
crates/nn/src/linear.rs:
crates/nn/src/lstm.rs:
crates/nn/src/mlp.rs:
crates/nn/src/params.rs:
crates/nn/src/stream.rs:
crates/nn/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
