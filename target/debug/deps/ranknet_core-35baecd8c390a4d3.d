/root/repo/target/debug/deps/ranknet_core-35baecd8c390a4d3.d: crates/core/src/lib.rs crates/core/src/baseline_adapters.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/eval.rs crates/core/src/features.rs crates/core/src/instances.rs crates/core/src/metrics.rs crates/core/src/persist.rs crates/core/src/pit_model.rs crates/core/src/rank_model.rs crates/core/src/ranknet.rs crates/core/src/transformer_model.rs

/root/repo/target/debug/deps/libranknet_core-35baecd8c390a4d3.rlib: crates/core/src/lib.rs crates/core/src/baseline_adapters.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/eval.rs crates/core/src/features.rs crates/core/src/instances.rs crates/core/src/metrics.rs crates/core/src/persist.rs crates/core/src/pit_model.rs crates/core/src/rank_model.rs crates/core/src/ranknet.rs crates/core/src/transformer_model.rs

/root/repo/target/debug/deps/libranknet_core-35baecd8c390a4d3.rmeta: crates/core/src/lib.rs crates/core/src/baseline_adapters.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/eval.rs crates/core/src/features.rs crates/core/src/instances.rs crates/core/src/metrics.rs crates/core/src/persist.rs crates/core/src/pit_model.rs crates/core/src/rank_model.rs crates/core/src/ranknet.rs crates/core/src/transformer_model.rs

crates/core/src/lib.rs:
crates/core/src/baseline_adapters.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/eval.rs:
crates/core/src/features.rs:
crates/core/src/instances.rs:
crates/core/src/metrics.rs:
crates/core/src/persist.rs:
crates/core/src/pit_model.rs:
crates/core/src/rank_model.rs:
crates/core/src/ranknet.rs:
crates/core/src/transformer_model.rs:
