/root/repo/target/debug/deps/engine_determinism-d89c132e5e75d1ef.d: crates/core/tests/engine_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libengine_determinism-d89c132e5e75d1ef.rmeta: crates/core/tests/engine_determinism.rs Cargo.toml

crates/core/tests/engine_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
