/root/repo/target/debug/deps/parking_lot-27cdb9d8a32d03ac.d: crates/vendor/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-27cdb9d8a32d03ac.rmeta: crates/vendor/parking_lot/src/lib.rs Cargo.toml

crates/vendor/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
