/root/repo/target/debug/deps/gradients-aa0fd09a441e6a8f.d: crates/autodiff/tests/gradients.rs

/root/repo/target/debug/deps/gradients-aa0fd09a441e6a8f: crates/autodiff/tests/gradients.rs

crates/autodiff/tests/gradients.rs:
