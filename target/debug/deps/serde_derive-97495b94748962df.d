/root/repo/target/debug/deps/serde_derive-97495b94748962df.d: crates/vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-97495b94748962df.so: crates/vendor/serde_derive/src/lib.rs

crates/vendor/serde_derive/src/lib.rs:
