/root/repo/target/debug/deps/serde-b8c73003d15291a3.d: crates/vendor/serde/src/lib.rs crates/vendor/serde/src/de.rs crates/vendor/serde/src/ser.rs Cargo.toml

/root/repo/target/debug/deps/libserde-b8c73003d15291a3.rmeta: crates/vendor/serde/src/lib.rs crates/vendor/serde/src/de.rs crates/vendor/serde/src/ser.rs Cargo.toml

crates/vendor/serde/src/lib.rs:
crates/vendor/serde/src/de.rs:
crates/vendor/serde/src/ser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
