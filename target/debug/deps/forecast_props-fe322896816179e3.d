/root/repo/target/debug/deps/forecast_props-fe322896816179e3.d: crates/core/tests/forecast_props.rs Cargo.toml

/root/repo/target/debug/deps/libforecast_props-fe322896816179e3.rmeta: crates/core/tests/forecast_props.rs Cargo.toml

crates/core/tests/forecast_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
