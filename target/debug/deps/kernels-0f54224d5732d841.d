/root/repo/target/debug/deps/kernels-0f54224d5732d841.d: crates/bench/benches/kernels.rs

/root/repo/target/debug/deps/kernels-0f54224d5732d841: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
