/root/repo/target/debug/deps/gen_dataset-f1010a0f4305b4cf.d: crates/racesim/src/bin/gen-dataset.rs

/root/repo/target/debug/deps/gen_dataset-f1010a0f4305b4cf: crates/racesim/src/bin/gen-dataset.rs

crates/racesim/src/bin/gen-dataset.rs:
