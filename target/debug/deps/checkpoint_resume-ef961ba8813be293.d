/root/repo/target/debug/deps/checkpoint_resume-ef961ba8813be293.d: crates/core/tests/checkpoint_resume.rs

/root/repo/target/debug/deps/checkpoint_resume-ef961ba8813be293: crates/core/tests/checkpoint_resume.rs

crates/core/tests/checkpoint_resume.rs:
