/root/repo/target/debug/deps/golden_stats-236f34ba28501ebb.d: crates/racesim/tests/golden_stats.rs

/root/repo/target/debug/deps/golden_stats-236f34ba28501ebb: crates/racesim/tests/golden_stats.rs

crates/racesim/tests/golden_stats.rs:
