/root/repo/target/debug/deps/forecast_props-6c7e52db3f968fdc.d: crates/core/tests/forecast_props.rs

/root/repo/target/debug/deps/forecast_props-6c7e52db3f968fdc: crates/core/tests/forecast_props.rs

crates/core/tests/forecast_props.rs:
