/root/repo/target/debug/deps/criterion-dca00a7bf443539b.d: crates/vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-dca00a7bf443539b.rmeta: crates/vendor/criterion/src/lib.rs Cargo.toml

crates/vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
