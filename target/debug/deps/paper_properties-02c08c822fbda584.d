/root/repo/target/debug/deps/paper_properties-02c08c822fbda584.d: tests/paper_properties.rs

/root/repo/target/debug/deps/paper_properties-02c08c822fbda584: tests/paper_properties.rs

tests/paper_properties.rs:
