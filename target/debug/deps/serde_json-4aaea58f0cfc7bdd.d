/root/repo/target/debug/deps/serde_json-4aaea58f0cfc7bdd.d: crates/vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-4aaea58f0cfc7bdd: crates/vendor/serde_json/src/lib.rs

crates/vendor/serde_json/src/lib.rs:
