/root/repo/target/debug/deps/baselines-46e11e1b0ce96b20.d: crates/bench/benches/baselines.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-46e11e1b0ce96b20.rmeta: crates/bench/benches/baselines.rs Cargo.toml

crates/bench/benches/baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
