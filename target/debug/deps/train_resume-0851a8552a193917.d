/root/repo/target/debug/deps/train_resume-0851a8552a193917.d: crates/nn/tests/train_resume.rs

/root/repo/target/debug/deps/train_resume-0851a8552a193917: crates/nn/tests/train_resume.rs

crates/nn/tests/train_resume.rs:
