/root/repo/target/debug/deps/ranknet_core-e59ae92e4b9e8ec1.d: crates/core/src/lib.rs crates/core/src/baseline_adapters.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/eval.rs crates/core/src/features.rs crates/core/src/instances.rs crates/core/src/metrics.rs crates/core/src/persist.rs crates/core/src/pit_model.rs crates/core/src/rank_model.rs crates/core/src/ranknet.rs crates/core/src/transformer_model.rs Cargo.toml

/root/repo/target/debug/deps/libranknet_core-e59ae92e4b9e8ec1.rmeta: crates/core/src/lib.rs crates/core/src/baseline_adapters.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/eval.rs crates/core/src/features.rs crates/core/src/instances.rs crates/core/src/metrics.rs crates/core/src/persist.rs crates/core/src/pit_model.rs crates/core/src/rank_model.rs crates/core/src/ranknet.rs crates/core/src/transformer_model.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/baseline_adapters.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/eval.rs:
crates/core/src/features.rs:
crates/core/src/instances.rs:
crates/core/src/metrics.rs:
crates/core/src/persist.rs:
crates/core/src/pit_model.rs:
crates/core/src/rank_model.rs:
crates/core/src/ranknet.rs:
crates/core/src/transformer_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
