/root/repo/target/debug/deps/fault_inject-dfdaa5c5dae7bd33.d: crates/core/tests/fault_inject.rs

/root/repo/target/debug/deps/fault_inject-dfdaa5c5dae7bd33: crates/core/tests/fault_inject.rs

crates/core/tests/fault_inject.rs:
