/root/repo/target/debug/deps/rpf_autodiff-0a022b54699aeed5.d: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/tape.rs

/root/repo/target/debug/deps/rpf_autodiff-0a022b54699aeed5: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/tape.rs

crates/autodiff/src/lib.rs:
crates/autodiff/src/gradcheck.rs:
crates/autodiff/src/tape.rs:
