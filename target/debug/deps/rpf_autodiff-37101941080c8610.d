/root/repo/target/debug/deps/rpf_autodiff-37101941080c8610.d: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/tape.rs Cargo.toml

/root/repo/target/debug/deps/librpf_autodiff-37101941080c8610.rmeta: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/tape.rs Cargo.toml

crates/autodiff/src/lib.rs:
crates/autodiff/src/gradcheck.rs:
crates/autodiff/src/tape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
