/root/repo/target/debug/deps/proptests-60fef97a809c5253.d: crates/baselines/tests/proptests.rs

/root/repo/target/debug/deps/proptests-60fef97a809c5253: crates/baselines/tests/proptests.rs

crates/baselines/tests/proptests.rs:
