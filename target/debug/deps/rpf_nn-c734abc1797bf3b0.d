/root/repo/target/debug/deps/rpf_nn-c734abc1797bf3b0.d: crates/nn/src/lib.rs crates/nn/src/adam.rs crates/nn/src/attention.rs crates/nn/src/data.rs crates/nn/src/embedding.rs crates/nn/src/gaussian.rs crates/nn/src/init.rs crates/nn/src/linear.rs crates/nn/src/lstm.rs crates/nn/src/mlp.rs crates/nn/src/params.rs crates/nn/src/stream.rs crates/nn/src/train.rs

/root/repo/target/debug/deps/rpf_nn-c734abc1797bf3b0: crates/nn/src/lib.rs crates/nn/src/adam.rs crates/nn/src/attention.rs crates/nn/src/data.rs crates/nn/src/embedding.rs crates/nn/src/gaussian.rs crates/nn/src/init.rs crates/nn/src/linear.rs crates/nn/src/lstm.rs crates/nn/src/mlp.rs crates/nn/src/params.rs crates/nn/src/stream.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/adam.rs:
crates/nn/src/attention.rs:
crates/nn/src/data.rs:
crates/nn/src/embedding.rs:
crates/nn/src/gaussian.rs:
crates/nn/src/init.rs:
crates/nn/src/linear.rs:
crates/nn/src/lstm.rs:
crates/nn/src/mlp.rs:
crates/nn/src/params.rs:
crates/nn/src/stream.rs:
crates/nn/src/train.rs:
