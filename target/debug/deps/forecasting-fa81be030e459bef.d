/root/repo/target/debug/deps/forecasting-fa81be030e459bef.d: crates/bench/benches/forecasting.rs

/root/repo/target/debug/deps/forecasting-fa81be030e459bef: crates/bench/benches/forecasting.rs

crates/bench/benches/forecasting.rs:
