/root/repo/target/debug/deps/rpf_nn-28acfb4d43f72a1d.d: crates/nn/src/lib.rs crates/nn/src/adam.rs crates/nn/src/attention.rs crates/nn/src/data.rs crates/nn/src/embedding.rs crates/nn/src/gaussian.rs crates/nn/src/init.rs crates/nn/src/linear.rs crates/nn/src/lstm.rs crates/nn/src/mlp.rs crates/nn/src/params.rs crates/nn/src/stream.rs crates/nn/src/train.rs

/root/repo/target/debug/deps/librpf_nn-28acfb4d43f72a1d.rlib: crates/nn/src/lib.rs crates/nn/src/adam.rs crates/nn/src/attention.rs crates/nn/src/data.rs crates/nn/src/embedding.rs crates/nn/src/gaussian.rs crates/nn/src/init.rs crates/nn/src/linear.rs crates/nn/src/lstm.rs crates/nn/src/mlp.rs crates/nn/src/params.rs crates/nn/src/stream.rs crates/nn/src/train.rs

/root/repo/target/debug/deps/librpf_nn-28acfb4d43f72a1d.rmeta: crates/nn/src/lib.rs crates/nn/src/adam.rs crates/nn/src/attention.rs crates/nn/src/data.rs crates/nn/src/embedding.rs crates/nn/src/gaussian.rs crates/nn/src/init.rs crates/nn/src/linear.rs crates/nn/src/lstm.rs crates/nn/src/mlp.rs crates/nn/src/params.rs crates/nn/src/stream.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/adam.rs:
crates/nn/src/attention.rs:
crates/nn/src/data.rs:
crates/nn/src/embedding.rs:
crates/nn/src/gaussian.rs:
crates/nn/src/init.rs:
crates/nn/src/linear.rs:
crates/nn/src/lstm.rs:
crates/nn/src/mlp.rs:
crates/nn/src/params.rs:
crates/nn/src/stream.rs:
crates/nn/src/train.rs:
