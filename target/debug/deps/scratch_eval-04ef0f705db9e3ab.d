/root/repo/target/debug/deps/scratch_eval-04ef0f705db9e3ab.d: tests/scratch_eval.rs

/root/repo/target/debug/deps/scratch_eval-04ef0f705db9e3ab: tests/scratch_eval.rs

tests/scratch_eval.rs:
