/root/repo/target/debug/deps/checkpoint_corruption-f2df6790e44a9972.d: crates/core/tests/checkpoint_corruption.rs

/root/repo/target/debug/deps/checkpoint_corruption-f2df6790e44a9972: crates/core/tests/checkpoint_corruption.rs

crates/core/tests/checkpoint_corruption.rs:
