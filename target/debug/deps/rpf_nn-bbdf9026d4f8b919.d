/root/repo/target/debug/deps/rpf_nn-bbdf9026d4f8b919.d: crates/nn/src/lib.rs crates/nn/src/adam.rs crates/nn/src/attention.rs crates/nn/src/data.rs crates/nn/src/embedding.rs crates/nn/src/fault.rs crates/nn/src/gaussian.rs crates/nn/src/init.rs crates/nn/src/linear.rs crates/nn/src/lstm.rs crates/nn/src/mlp.rs crates/nn/src/params.rs crates/nn/src/stream.rs crates/nn/src/train.rs

/root/repo/target/debug/deps/rpf_nn-bbdf9026d4f8b919: crates/nn/src/lib.rs crates/nn/src/adam.rs crates/nn/src/attention.rs crates/nn/src/data.rs crates/nn/src/embedding.rs crates/nn/src/fault.rs crates/nn/src/gaussian.rs crates/nn/src/init.rs crates/nn/src/linear.rs crates/nn/src/lstm.rs crates/nn/src/mlp.rs crates/nn/src/params.rs crates/nn/src/stream.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/adam.rs:
crates/nn/src/attention.rs:
crates/nn/src/data.rs:
crates/nn/src/embedding.rs:
crates/nn/src/fault.rs:
crates/nn/src/gaussian.rs:
crates/nn/src/init.rs:
crates/nn/src/linear.rs:
crates/nn/src/lstm.rs:
crates/nn/src/mlp.rs:
crates/nn/src/params.rs:
crates/nn/src/stream.rs:
crates/nn/src/train.rs:
