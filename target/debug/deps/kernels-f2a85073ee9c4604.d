/root/repo/target/debug/deps/kernels-f2a85073ee9c4604.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-f2a85073ee9c4604.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
