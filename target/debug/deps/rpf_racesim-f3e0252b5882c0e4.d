/root/repo/target/debug/deps/rpf_racesim-f3e0252b5882c0e4.d: crates/racesim/src/lib.rs crates/racesim/src/car.rs crates/racesim/src/dataset.rs crates/racesim/src/sim.rs crates/racesim/src/stats.rs crates/racesim/src/track.rs crates/racesim/src/types.rs

/root/repo/target/debug/deps/rpf_racesim-f3e0252b5882c0e4: crates/racesim/src/lib.rs crates/racesim/src/car.rs crates/racesim/src/dataset.rs crates/racesim/src/sim.rs crates/racesim/src/stats.rs crates/racesim/src/track.rs crates/racesim/src/types.rs

crates/racesim/src/lib.rs:
crates/racesim/src/car.rs:
crates/racesim/src/dataset.rs:
crates/racesim/src/sim.rs:
crates/racesim/src/stats.rs:
crates/racesim/src/track.rs:
crates/racesim/src/types.rs:
