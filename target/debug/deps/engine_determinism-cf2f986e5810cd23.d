/root/repo/target/debug/deps/engine_determinism-cf2f986e5810cd23.d: crates/core/tests/engine_determinism.rs

/root/repo/target/debug/deps/engine_determinism-cf2f986e5810cd23: crates/core/tests/engine_determinism.rs

crates/core/tests/engine_determinism.rs:
