/root/repo/target/debug/deps/rpf_autodiff-a5834fbcac169a79.d: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/tape.rs

/root/repo/target/debug/deps/librpf_autodiff-a5834fbcac169a79.rlib: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/tape.rs

/root/repo/target/debug/deps/librpf_autodiff-a5834fbcac169a79.rmeta: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/tape.rs

crates/autodiff/src/lib.rs:
crates/autodiff/src/gradcheck.rs:
crates/autodiff/src/tape.rs:
