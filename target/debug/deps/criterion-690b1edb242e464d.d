/root/repo/target/debug/deps/criterion-690b1edb242e464d.d: crates/vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-690b1edb242e464d.rmeta: crates/vendor/criterion/src/lib.rs Cargo.toml

crates/vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
