/root/repo/target/debug/deps/repro-ee2ae02731b4ded2.d: crates/bench/src/main.rs crates/bench/src/ablations.rs crates/bench/src/ascii.rs crates/bench/src/dataset.rs crates/bench/src/figures.rs crates/bench/src/models.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/repro-ee2ae02731b4ded2: crates/bench/src/main.rs crates/bench/src/ablations.rs crates/bench/src/ascii.rs crates/bench/src/dataset.rs crates/bench/src/figures.rs crates/bench/src/models.rs crates/bench/src/tables.rs

crates/bench/src/main.rs:
crates/bench/src/ablations.rs:
crates/bench/src/ascii.rs:
crates/bench/src/dataset.rs:
crates/bench/src/figures.rs:
crates/bench/src/models.rs:
crates/bench/src/tables.rs:
