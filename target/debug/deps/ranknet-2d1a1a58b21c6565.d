/root/repo/target/debug/deps/ranknet-2d1a1a58b21c6565.d: src/lib.rs

/root/repo/target/debug/deps/libranknet-2d1a1a58b21c6565.rlib: src/lib.rs

/root/repo/target/debug/deps/libranknet-2d1a1a58b21c6565.rmeta: src/lib.rs

src/lib.rs:
