/root/repo/target/debug/deps/forecasting-ae5dee8c81ec0425.d: crates/bench/benches/forecasting.rs Cargo.toml

/root/repo/target/debug/deps/libforecasting-ae5dee8c81ec0425.rmeta: crates/bench/benches/forecasting.rs Cargo.toml

crates/bench/benches/forecasting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
