/root/repo/target/debug/deps/proptests-24264dca810522e3.d: crates/racesim/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-24264dca810522e3.rmeta: crates/racesim/tests/proptests.rs Cargo.toml

crates/racesim/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
