/root/repo/target/debug/deps/training-1262bf405d223894.d: crates/bench/benches/training.rs

/root/repo/target/debug/deps/training-1262bf405d223894: crates/bench/benches/training.rs

crates/bench/benches/training.rs:
