/root/repo/target/debug/deps/gen_dataset-3bc8d0256c732184.d: crates/racesim/src/bin/gen-dataset.rs Cargo.toml

/root/repo/target/debug/deps/libgen_dataset-3bc8d0256c732184.rmeta: crates/racesim/src/bin/gen-dataset.rs Cargo.toml

crates/racesim/src/bin/gen-dataset.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
