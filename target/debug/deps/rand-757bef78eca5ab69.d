/root/repo/target/debug/deps/rand-757bef78eca5ab69.d: crates/vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-757bef78eca5ab69.rmeta: crates/vendor/rand/src/lib.rs Cargo.toml

crates/vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
