/root/repo/target/debug/deps/ranknet-400ab1a6db591f99.d: src/lib.rs

/root/repo/target/debug/deps/ranknet-400ab1a6db591f99: src/lib.rs

src/lib.rs:
