/root/repo/target/debug/deps/rpf_racesim-3fe7b8ce82728411.d: crates/racesim/src/lib.rs crates/racesim/src/car.rs crates/racesim/src/dataset.rs crates/racesim/src/sim.rs crates/racesim/src/stats.rs crates/racesim/src/track.rs crates/racesim/src/types.rs

/root/repo/target/debug/deps/librpf_racesim-3fe7b8ce82728411.rlib: crates/racesim/src/lib.rs crates/racesim/src/car.rs crates/racesim/src/dataset.rs crates/racesim/src/sim.rs crates/racesim/src/stats.rs crates/racesim/src/track.rs crates/racesim/src/types.rs

/root/repo/target/debug/deps/librpf_racesim-3fe7b8ce82728411.rmeta: crates/racesim/src/lib.rs crates/racesim/src/car.rs crates/racesim/src/dataset.rs crates/racesim/src/sim.rs crates/racesim/src/stats.rs crates/racesim/src/track.rs crates/racesim/src/types.rs

crates/racesim/src/lib.rs:
crates/racesim/src/car.rs:
crates/racesim/src/dataset.rs:
crates/racesim/src/sim.rs:
crates/racesim/src/stats.rs:
crates/racesim/src/track.rs:
crates/racesim/src/types.rs:
