/root/repo/target/debug/deps/serde-1b644f837fa78564.d: crates/vendor/serde/src/lib.rs crates/vendor/serde/src/de.rs crates/vendor/serde/src/ser.rs Cargo.toml

/root/repo/target/debug/deps/libserde-1b644f837fa78564.rmeta: crates/vendor/serde/src/lib.rs crates/vendor/serde/src/de.rs crates/vendor/serde/src/ser.rs Cargo.toml

crates/vendor/serde/src/lib.rs:
crates/vendor/serde/src/de.rs:
crates/vendor/serde/src/ser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
