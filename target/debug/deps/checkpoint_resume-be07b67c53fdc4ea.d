/root/repo/target/debug/deps/checkpoint_resume-be07b67c53fdc4ea.d: crates/core/tests/checkpoint_resume.rs

/root/repo/target/debug/deps/checkpoint_resume-be07b67c53fdc4ea: crates/core/tests/checkpoint_resume.rs

crates/core/tests/checkpoint_resume.rs:
