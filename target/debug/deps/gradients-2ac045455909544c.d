/root/repo/target/debug/deps/gradients-2ac045455909544c.d: crates/autodiff/tests/gradients.rs Cargo.toml

/root/repo/target/debug/deps/libgradients-2ac045455909544c.rmeta: crates/autodiff/tests/gradients.rs Cargo.toml

crates/autodiff/tests/gradients.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
