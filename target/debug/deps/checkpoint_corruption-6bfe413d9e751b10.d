/root/repo/target/debug/deps/checkpoint_corruption-6bfe413d9e751b10.d: crates/core/tests/checkpoint_corruption.rs Cargo.toml

/root/repo/target/debug/deps/libcheckpoint_corruption-6bfe413d9e751b10.rmeta: crates/core/tests/checkpoint_corruption.rs Cargo.toml

crates/core/tests/checkpoint_corruption.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
