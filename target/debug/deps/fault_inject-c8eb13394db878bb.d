/root/repo/target/debug/deps/fault_inject-c8eb13394db878bb.d: crates/core/tests/fault_inject.rs

/root/repo/target/debug/deps/fault_inject-c8eb13394db878bb: crates/core/tests/fault_inject.rs

crates/core/tests/fault_inject.rs:
