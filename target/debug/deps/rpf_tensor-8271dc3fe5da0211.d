/root/repo/target/debug/deps/rpf_tensor-8271dc3fe5da0211.d: crates/tensor/src/lib.rs crates/tensor/src/counters.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/par.rs Cargo.toml

/root/repo/target/debug/deps/librpf_tensor-8271dc3fe5da0211.rmeta: crates/tensor/src/lib.rs crates/tensor/src/counters.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/par.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/counters.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/par.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
