/root/repo/target/debug/deps/rpf_tensor-4382347633ac3f33.d: crates/tensor/src/lib.rs crates/tensor/src/counters.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/par.rs

/root/repo/target/debug/deps/librpf_tensor-4382347633ac3f33.rlib: crates/tensor/src/lib.rs crates/tensor/src/counters.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/par.rs

/root/repo/target/debug/deps/librpf_tensor-4382347633ac3f33.rmeta: crates/tensor/src/lib.rs crates/tensor/src/counters.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/par.rs

crates/tensor/src/lib.rs:
crates/tensor/src/counters.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/par.rs:
