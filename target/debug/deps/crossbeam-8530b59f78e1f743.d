/root/repo/target/debug/deps/crossbeam-8530b59f78e1f743.d: crates/vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-8530b59f78e1f743: crates/vendor/crossbeam/src/lib.rs

crates/vendor/crossbeam/src/lib.rs:
