/root/repo/target/debug/deps/proptests-0fc3a093da649f97.d: crates/nn/tests/proptests.rs

/root/repo/target/debug/deps/proptests-0fc3a093da649f97: crates/nn/tests/proptests.rs

crates/nn/tests/proptests.rs:
