/root/repo/target/debug/deps/rpf_baselines-2872eff2495d9967.d: crates/baselines/src/lib.rs crates/baselines/src/arima.rs crates/baselines/src/currank.rs crates/baselines/src/forest.rs crates/baselines/src/gbt.rs crates/baselines/src/linalg.rs crates/baselines/src/svr.rs crates/baselines/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/librpf_baselines-2872eff2495d9967.rmeta: crates/baselines/src/lib.rs crates/baselines/src/arima.rs crates/baselines/src/currank.rs crates/baselines/src/forest.rs crates/baselines/src/gbt.rs crates/baselines/src/linalg.rs crates/baselines/src/svr.rs crates/baselines/src/tree.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/arima.rs:
crates/baselines/src/currank.rs:
crates/baselines/src/forest.rs:
crates/baselines/src/gbt.rs:
crates/baselines/src/linalg.rs:
crates/baselines/src/svr.rs:
crates/baselines/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
