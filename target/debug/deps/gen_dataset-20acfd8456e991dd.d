/root/repo/target/debug/deps/gen_dataset-20acfd8456e991dd.d: crates/racesim/src/bin/gen-dataset.rs

/root/repo/target/debug/deps/gen_dataset-20acfd8456e991dd: crates/racesim/src/bin/gen-dataset.rs

crates/racesim/src/bin/gen-dataset.rs:
