/root/repo/target/debug/deps/paper_properties-ca491564cc2b516c.d: tests/paper_properties.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_properties-ca491564cc2b516c.rmeta: tests/paper_properties.rs Cargo.toml

tests/paper_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
