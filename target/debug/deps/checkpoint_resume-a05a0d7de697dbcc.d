/root/repo/target/debug/deps/checkpoint_resume-a05a0d7de697dbcc.d: crates/core/tests/checkpoint_resume.rs Cargo.toml

/root/repo/target/debug/deps/libcheckpoint_resume-a05a0d7de697dbcc.rmeta: crates/core/tests/checkpoint_resume.rs Cargo.toml

crates/core/tests/checkpoint_resume.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
