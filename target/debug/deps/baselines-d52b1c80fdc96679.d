/root/repo/target/debug/deps/baselines-d52b1c80fdc96679.d: crates/bench/benches/baselines.rs

/root/repo/target/debug/deps/baselines-d52b1c80fdc96679: crates/bench/benches/baselines.rs

crates/bench/benches/baselines.rs:
