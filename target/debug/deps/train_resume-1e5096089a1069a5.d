/root/repo/target/debug/deps/train_resume-1e5096089a1069a5.d: crates/nn/tests/train_resume.rs

/root/repo/target/debug/deps/train_resume-1e5096089a1069a5: crates/nn/tests/train_resume.rs

crates/nn/tests/train_resume.rs:
