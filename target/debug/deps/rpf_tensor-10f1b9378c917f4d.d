/root/repo/target/debug/deps/rpf_tensor-10f1b9378c917f4d.d: crates/tensor/src/lib.rs crates/tensor/src/counters.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/par.rs

/root/repo/target/debug/deps/rpf_tensor-10f1b9378c917f4d: crates/tensor/src/lib.rs crates/tensor/src/counters.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/par.rs

crates/tensor/src/lib.rs:
crates/tensor/src/counters.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/par.rs:
