/root/repo/target/debug/deps/repro-7e062d137a224e7d.d: crates/bench/src/main.rs crates/bench/src/ablations.rs crates/bench/src/ascii.rs crates/bench/src/dataset.rs crates/bench/src/figures.rs crates/bench/src/models.rs crates/bench/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/librepro-7e062d137a224e7d.rmeta: crates/bench/src/main.rs crates/bench/src/ablations.rs crates/bench/src/ascii.rs crates/bench/src/dataset.rs crates/bench/src/figures.rs crates/bench/src/models.rs crates/bench/src/tables.rs Cargo.toml

crates/bench/src/main.rs:
crates/bench/src/ablations.rs:
crates/bench/src/ascii.rs:
crates/bench/src/dataset.rs:
crates/bench/src/figures.rs:
crates/bench/src/models.rs:
crates/bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
