/root/repo/target/debug/deps/proptest-2acd106f9acb680b.d: crates/vendor/proptest/src/lib.rs crates/vendor/proptest/src/collection.rs crates/vendor/proptest/src/sample.rs crates/vendor/proptest/src/strategy.rs crates/vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-2acd106f9acb680b: crates/vendor/proptest/src/lib.rs crates/vendor/proptest/src/collection.rs crates/vendor/proptest/src/sample.rs crates/vendor/proptest/src/strategy.rs crates/vendor/proptest/src/test_runner.rs

crates/vendor/proptest/src/lib.rs:
crates/vendor/proptest/src/collection.rs:
crates/vendor/proptest/src/sample.rs:
crates/vendor/proptest/src/strategy.rs:
crates/vendor/proptest/src/test_runner.rs:
