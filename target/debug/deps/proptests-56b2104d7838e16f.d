/root/repo/target/debug/deps/proptests-56b2104d7838e16f.d: crates/nn/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-56b2104d7838e16f.rmeta: crates/nn/tests/proptests.rs Cargo.toml

crates/nn/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
