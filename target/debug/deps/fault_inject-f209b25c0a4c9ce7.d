/root/repo/target/debug/deps/fault_inject-f209b25c0a4c9ce7.d: crates/nn/tests/fault_inject.rs Cargo.toml

/root/repo/target/debug/deps/libfault_inject-f209b25c0a4c9ce7.rmeta: crates/nn/tests/fault_inject.rs Cargo.toml

crates/nn/tests/fault_inject.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
