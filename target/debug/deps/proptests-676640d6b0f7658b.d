/root/repo/target/debug/deps/proptests-676640d6b0f7658b.d: crates/autodiff/tests/proptests.rs

/root/repo/target/debug/deps/proptests-676640d6b0f7658b: crates/autodiff/tests/proptests.rs

crates/autodiff/tests/proptests.rs:
