/root/repo/target/debug/deps/pipeline-2f62592cf27cb120.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-2f62592cf27cb120: tests/pipeline.rs

tests/pipeline.rs:
