/root/repo/target/debug/deps/fault_inject-60934cd21da6764a.d: crates/nn/tests/fault_inject.rs

/root/repo/target/debug/deps/fault_inject-60934cd21da6764a: crates/nn/tests/fault_inject.rs

crates/nn/tests/fault_inject.rs:
