/root/repo/target/debug/deps/crossbeam-96627407355202e7.d: crates/vendor/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-96627407355202e7.rmeta: crates/vendor/crossbeam/src/lib.rs Cargo.toml

crates/vendor/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
