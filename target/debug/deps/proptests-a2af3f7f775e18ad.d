/root/repo/target/debug/deps/proptests-a2af3f7f775e18ad.d: crates/autodiff/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-a2af3f7f775e18ad.rmeta: crates/autodiff/tests/proptests.rs Cargo.toml

crates/autodiff/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
