/root/repo/target/debug/deps/parking_lot-7dc1e6a8daddef9b.d: crates/vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-7dc1e6a8daddef9b: crates/vendor/parking_lot/src/lib.rs

crates/vendor/parking_lot/src/lib.rs:
