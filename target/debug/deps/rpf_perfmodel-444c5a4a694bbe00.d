/root/repo/target/debug/deps/rpf_perfmodel-444c5a4a694bbe00.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/breakdown.rs crates/perfmodel/src/devices.rs crates/perfmodel/src/roofline.rs crates/perfmodel/src/workload.rs

/root/repo/target/debug/deps/rpf_perfmodel-444c5a4a694bbe00: crates/perfmodel/src/lib.rs crates/perfmodel/src/breakdown.rs crates/perfmodel/src/devices.rs crates/perfmodel/src/roofline.rs crates/perfmodel/src/workload.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/breakdown.rs:
crates/perfmodel/src/devices.rs:
crates/perfmodel/src/roofline.rs:
crates/perfmodel/src/workload.rs:
