/root/repo/target/debug/deps/forecast_props-71cc8ff9a21a8630.d: crates/core/tests/forecast_props.rs

/root/repo/target/debug/deps/forecast_props-71cc8ff9a21a8630: crates/core/tests/forecast_props.rs

crates/core/tests/forecast_props.rs:
