/root/repo/target/debug/deps/rpf_perfmodel-e197b7e43764ef42.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/breakdown.rs crates/perfmodel/src/devices.rs crates/perfmodel/src/roofline.rs crates/perfmodel/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/librpf_perfmodel-e197b7e43764ef42.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/breakdown.rs crates/perfmodel/src/devices.rs crates/perfmodel/src/roofline.rs crates/perfmodel/src/workload.rs Cargo.toml

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/breakdown.rs:
crates/perfmodel/src/devices.rs:
crates/perfmodel/src/roofline.rs:
crates/perfmodel/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
