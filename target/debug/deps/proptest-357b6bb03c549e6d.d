/root/repo/target/debug/deps/proptest-357b6bb03c549e6d.d: crates/vendor/proptest/src/lib.rs crates/vendor/proptest/src/collection.rs crates/vendor/proptest/src/sample.rs crates/vendor/proptest/src/strategy.rs crates/vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-357b6bb03c549e6d.rlib: crates/vendor/proptest/src/lib.rs crates/vendor/proptest/src/collection.rs crates/vendor/proptest/src/sample.rs crates/vendor/proptest/src/strategy.rs crates/vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-357b6bb03c549e6d.rmeta: crates/vendor/proptest/src/lib.rs crates/vendor/proptest/src/collection.rs crates/vendor/proptest/src/sample.rs crates/vendor/proptest/src/strategy.rs crates/vendor/proptest/src/test_runner.rs

crates/vendor/proptest/src/lib.rs:
crates/vendor/proptest/src/collection.rs:
crates/vendor/proptest/src/sample.rs:
crates/vendor/proptest/src/strategy.rs:
crates/vendor/proptest/src/test_runner.rs:
