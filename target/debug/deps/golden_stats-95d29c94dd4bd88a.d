/root/repo/target/debug/deps/golden_stats-95d29c94dd4bd88a.d: crates/racesim/tests/golden_stats.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_stats-95d29c94dd4bd88a.rmeta: crates/racesim/tests/golden_stats.rs Cargo.toml

crates/racesim/tests/golden_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
