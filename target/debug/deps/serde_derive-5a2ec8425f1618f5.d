/root/repo/target/debug/deps/serde_derive-5a2ec8425f1618f5.d: crates/vendor/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-5a2ec8425f1618f5.rmeta: crates/vendor/serde_derive/src/lib.rs Cargo.toml

crates/vendor/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
