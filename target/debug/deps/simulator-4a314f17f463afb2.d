/root/repo/target/debug/deps/simulator-4a314f17f463afb2.d: crates/bench/benches/simulator.rs

/root/repo/target/debug/deps/simulator-4a314f17f463afb2: crates/bench/benches/simulator.rs

crates/bench/benches/simulator.rs:
