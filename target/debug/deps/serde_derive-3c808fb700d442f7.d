/root/repo/target/debug/deps/serde_derive-3c808fb700d442f7.d: crates/vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-3c808fb700d442f7: crates/vendor/serde_derive/src/lib.rs

crates/vendor/serde_derive/src/lib.rs:
