/root/repo/target/debug/deps/fault_inject-97e97853138fddab.d: crates/nn/tests/fault_inject.rs

/root/repo/target/debug/deps/fault_inject-97e97853138fddab: crates/nn/tests/fault_inject.rs

crates/nn/tests/fault_inject.rs:
