/root/repo/target/debug/deps/proptests-06a013d78aadc959.d: crates/racesim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-06a013d78aadc959: crates/racesim/tests/proptests.rs

crates/racesim/tests/proptests.rs:
