/root/repo/target/debug/deps/train_resume-c15f20201ef6902e.d: crates/nn/tests/train_resume.rs Cargo.toml

/root/repo/target/debug/deps/libtrain_resume-c15f20201ef6902e.rmeta: crates/nn/tests/train_resume.rs Cargo.toml

crates/nn/tests/train_resume.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
