/root/repo/target/debug/deps/serde-d3cb7ec594542f88.d: crates/vendor/serde/src/lib.rs crates/vendor/serde/src/de.rs crates/vendor/serde/src/ser.rs

/root/repo/target/debug/deps/libserde-d3cb7ec594542f88.rlib: crates/vendor/serde/src/lib.rs crates/vendor/serde/src/de.rs crates/vendor/serde/src/ser.rs

/root/repo/target/debug/deps/libserde-d3cb7ec594542f88.rmeta: crates/vendor/serde/src/lib.rs crates/vendor/serde/src/de.rs crates/vendor/serde/src/ser.rs

crates/vendor/serde/src/lib.rs:
crates/vendor/serde/src/de.rs:
crates/vendor/serde/src/ser.rs:
