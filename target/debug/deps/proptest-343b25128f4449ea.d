/root/repo/target/debug/deps/proptest-343b25128f4449ea.d: crates/vendor/proptest/src/lib.rs crates/vendor/proptest/src/collection.rs crates/vendor/proptest/src/sample.rs crates/vendor/proptest/src/strategy.rs crates/vendor/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-343b25128f4449ea.rmeta: crates/vendor/proptest/src/lib.rs crates/vendor/proptest/src/collection.rs crates/vendor/proptest/src/sample.rs crates/vendor/proptest/src/strategy.rs crates/vendor/proptest/src/test_runner.rs Cargo.toml

crates/vendor/proptest/src/lib.rs:
crates/vendor/proptest/src/collection.rs:
crates/vendor/proptest/src/sample.rs:
crates/vendor/proptest/src/strategy.rs:
crates/vendor/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
