/root/repo/target/debug/deps/rpf_racesim-60a3f8033d529590.d: crates/racesim/src/lib.rs crates/racesim/src/car.rs crates/racesim/src/dataset.rs crates/racesim/src/sim.rs crates/racesim/src/stats.rs crates/racesim/src/track.rs crates/racesim/src/types.rs Cargo.toml

/root/repo/target/debug/deps/librpf_racesim-60a3f8033d529590.rmeta: crates/racesim/src/lib.rs crates/racesim/src/car.rs crates/racesim/src/dataset.rs crates/racesim/src/sim.rs crates/racesim/src/stats.rs crates/racesim/src/track.rs crates/racesim/src/types.rs Cargo.toml

crates/racesim/src/lib.rs:
crates/racesim/src/car.rs:
crates/racesim/src/dataset.rs:
crates/racesim/src/sim.rs:
crates/racesim/src/stats.rs:
crates/racesim/src/track.rs:
crates/racesim/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
