/root/repo/target/debug/deps/serde_json-661b03be8cc5b8f0.d: crates/vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-661b03be8cc5b8f0.rlib: crates/vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-661b03be8cc5b8f0.rmeta: crates/vendor/serde_json/src/lib.rs

crates/vendor/serde_json/src/lib.rs:
