/root/repo/target/debug/deps/parking_lot-056a9f9b4af247b5.d: crates/vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-056a9f9b4af247b5.rlib: crates/vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-056a9f9b4af247b5.rmeta: crates/vendor/parking_lot/src/lib.rs

crates/vendor/parking_lot/src/lib.rs:
