/root/repo/target/debug/deps/crossbeam-003dba3c52345ace.d: crates/vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-003dba3c52345ace.rlib: crates/vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-003dba3c52345ace.rmeta: crates/vendor/crossbeam/src/lib.rs

crates/vendor/crossbeam/src/lib.rs:
