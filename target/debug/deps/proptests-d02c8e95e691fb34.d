/root/repo/target/debug/deps/proptests-d02c8e95e691fb34.d: crates/nn/tests/proptests.rs

/root/repo/target/debug/deps/proptests-d02c8e95e691fb34: crates/nn/tests/proptests.rs

crates/nn/tests/proptests.rs:
