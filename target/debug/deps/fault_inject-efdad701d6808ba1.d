/root/repo/target/debug/deps/fault_inject-efdad701d6808ba1.d: crates/core/tests/fault_inject.rs Cargo.toml

/root/repo/target/debug/deps/libfault_inject-efdad701d6808ba1.rmeta: crates/core/tests/fault_inject.rs Cargo.toml

crates/core/tests/fault_inject.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
