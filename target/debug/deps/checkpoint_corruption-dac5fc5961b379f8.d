/root/repo/target/debug/deps/checkpoint_corruption-dac5fc5961b379f8.d: crates/core/tests/checkpoint_corruption.rs

/root/repo/target/debug/deps/checkpoint_corruption-dac5fc5961b379f8: crates/core/tests/checkpoint_corruption.rs

crates/core/tests/checkpoint_corruption.rs:
