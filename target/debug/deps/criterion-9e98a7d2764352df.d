/root/repo/target/debug/deps/criterion-9e98a7d2764352df.d: crates/vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-9e98a7d2764352df: crates/vendor/criterion/src/lib.rs

crates/vendor/criterion/src/lib.rs:
