/root/repo/target/debug/deps/rpf_baselines-c2937dbb818dadd8.d: crates/baselines/src/lib.rs crates/baselines/src/arima.rs crates/baselines/src/currank.rs crates/baselines/src/forest.rs crates/baselines/src/gbt.rs crates/baselines/src/linalg.rs crates/baselines/src/svr.rs crates/baselines/src/tree.rs

/root/repo/target/debug/deps/librpf_baselines-c2937dbb818dadd8.rlib: crates/baselines/src/lib.rs crates/baselines/src/arima.rs crates/baselines/src/currank.rs crates/baselines/src/forest.rs crates/baselines/src/gbt.rs crates/baselines/src/linalg.rs crates/baselines/src/svr.rs crates/baselines/src/tree.rs

/root/repo/target/debug/deps/librpf_baselines-c2937dbb818dadd8.rmeta: crates/baselines/src/lib.rs crates/baselines/src/arima.rs crates/baselines/src/currank.rs crates/baselines/src/forest.rs crates/baselines/src/gbt.rs crates/baselines/src/linalg.rs crates/baselines/src/svr.rs crates/baselines/src/tree.rs

crates/baselines/src/lib.rs:
crates/baselines/src/arima.rs:
crates/baselines/src/currank.rs:
crates/baselines/src/forest.rs:
crates/baselines/src/gbt.rs:
crates/baselines/src/linalg.rs:
crates/baselines/src/svr.rs:
crates/baselines/src/tree.rs:
