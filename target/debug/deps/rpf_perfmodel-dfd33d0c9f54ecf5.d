/root/repo/target/debug/deps/rpf_perfmodel-dfd33d0c9f54ecf5.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/breakdown.rs crates/perfmodel/src/devices.rs crates/perfmodel/src/roofline.rs crates/perfmodel/src/workload.rs

/root/repo/target/debug/deps/librpf_perfmodel-dfd33d0c9f54ecf5.rlib: crates/perfmodel/src/lib.rs crates/perfmodel/src/breakdown.rs crates/perfmodel/src/devices.rs crates/perfmodel/src/roofline.rs crates/perfmodel/src/workload.rs

/root/repo/target/debug/deps/librpf_perfmodel-dfd33d0c9f54ecf5.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/breakdown.rs crates/perfmodel/src/devices.rs crates/perfmodel/src/roofline.rs crates/perfmodel/src/workload.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/breakdown.rs:
crates/perfmodel/src/devices.rs:
crates/perfmodel/src/roofline.rs:
crates/perfmodel/src/workload.rs:
