/root/repo/target/debug/deps/proptests-bc93723ad0753e73.d: crates/baselines/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-bc93723ad0753e73.rmeta: crates/baselines/tests/proptests.rs Cargo.toml

crates/baselines/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
