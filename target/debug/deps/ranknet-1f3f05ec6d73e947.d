/root/repo/target/debug/deps/ranknet-1f3f05ec6d73e947.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libranknet-1f3f05ec6d73e947.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
