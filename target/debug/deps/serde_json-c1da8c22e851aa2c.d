/root/repo/target/debug/deps/serde_json-c1da8c22e851aa2c.d: crates/vendor/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-c1da8c22e851aa2c.rmeta: crates/vendor/serde_json/src/lib.rs Cargo.toml

crates/vendor/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
