/root/repo/target/debug/deps/engine_determinism-991cfe182811a6f7.d: crates/core/tests/engine_determinism.rs

/root/repo/target/debug/deps/engine_determinism-991cfe182811a6f7: crates/core/tests/engine_determinism.rs

crates/core/tests/engine_determinism.rs:
