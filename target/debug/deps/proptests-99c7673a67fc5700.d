/root/repo/target/debug/deps/proptests-99c7673a67fc5700.d: crates/tensor/tests/proptests.rs

/root/repo/target/debug/deps/proptests-99c7673a67fc5700: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
