/root/repo/target/debug/deps/ranknet_core-58befe9c674b6b0c.d: crates/core/src/lib.rs crates/core/src/baseline_adapters.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/eval.rs crates/core/src/features.rs crates/core/src/instances.rs crates/core/src/metrics.rs crates/core/src/persist.rs crates/core/src/pit_model.rs crates/core/src/rank_model.rs crates/core/src/ranknet.rs crates/core/src/transformer_model.rs

/root/repo/target/debug/deps/ranknet_core-58befe9c674b6b0c: crates/core/src/lib.rs crates/core/src/baseline_adapters.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/eval.rs crates/core/src/features.rs crates/core/src/instances.rs crates/core/src/metrics.rs crates/core/src/persist.rs crates/core/src/pit_model.rs crates/core/src/rank_model.rs crates/core/src/ranknet.rs crates/core/src/transformer_model.rs

crates/core/src/lib.rs:
crates/core/src/baseline_adapters.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/eval.rs:
crates/core/src/features.rs:
crates/core/src/instances.rs:
crates/core/src/metrics.rs:
crates/core/src/persist.rs:
crates/core/src/pit_model.rs:
crates/core/src/rank_model.rs:
crates/core/src/ranknet.rs:
crates/core/src/transformer_model.rs:
