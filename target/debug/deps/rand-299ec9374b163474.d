/root/repo/target/debug/deps/rand-299ec9374b163474.d: crates/vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-299ec9374b163474: crates/vendor/rand/src/lib.rs

crates/vendor/rand/src/lib.rs:
