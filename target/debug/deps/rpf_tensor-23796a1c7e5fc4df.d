/root/repo/target/debug/deps/rpf_tensor-23796a1c7e5fc4df.d: crates/tensor/src/lib.rs crates/tensor/src/counters.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/par.rs Cargo.toml

/root/repo/target/debug/deps/librpf_tensor-23796a1c7e5fc4df.rmeta: crates/tensor/src/lib.rs crates/tensor/src/counters.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/par.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/counters.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/par.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
