/root/repo/target/debug/deps/proptests-5a4102bed5a825b3.d: crates/tensor/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-5a4102bed5a825b3.rmeta: crates/tensor/tests/proptests.rs Cargo.toml

crates/tensor/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
