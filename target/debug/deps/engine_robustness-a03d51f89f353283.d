/root/repo/target/debug/deps/engine_robustness-a03d51f89f353283.d: crates/core/tests/engine_robustness.rs

/root/repo/target/debug/deps/engine_robustness-a03d51f89f353283: crates/core/tests/engine_robustness.rs

crates/core/tests/engine_robustness.rs:
