//! Serving-layer walkthrough — stand up the micro-batching scheduler over
//! a trained model, throw a burst of duplicated live-race queries at it,
//! watch one request degrade on a deadline, and read the metrics.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```
//!
//! The one property to take away: every non-degraded response below is
//! **bit-identical** to a direct `ForecastEngine` call — batching, worker
//! scheduling and arrival order move time, never bits (DESIGN.md §11).
//!
//! The run ends with one unified Prometheus exposition: training counters
//! (from the fit report), engine phase counters and spans, serving
//! scheduler metrics, and the per-kernel operator breakdown with time
//! shares — all merged through `rpf_obs::MetricsSnapshot` (DESIGN.md §12).

use ranknet::core::engine::ForecastEngine;
use ranknet::core::features::extract_sequences;
use ranknet::core::ranknet::{RankNet, RankNetVariant};
use ranknet::core::RankNetConfig;
use ranknet::racesim::{simulate_race, Event, EventConfig};
use ranknet::serve::{serve, ServeConfig, ServeRequest};
use std::time::Duration;

fn main() {
    // A quickly trained model and one unseen race to serve forecasts for.
    let ctx = |seed| {
        extract_sequences(&simulate_race(
            &EventConfig::for_race(Event::Indy500, 2018),
            seed,
        ))
    };
    let cfg = RankNetConfig {
        max_epochs: 2,
        ..RankNetConfig::tiny()
    };
    println!("Training a small RankNet ...");
    let train = vec![ctx(1)];
    let (model, report) = RankNet::fit(train.clone(), train, cfg, RankNetVariant::Oracle, 33);
    let live = ctx(2);

    // Operator-level profiling is off by default (near-zero disabled
    // overhead); turn it on for the serving burst so the exposition below
    // carries the paper's per-kernel breakdown. Same for phase spans.
    ranknet::obs::ops::reset();
    ranknet::obs::ops::set_enabled(true);
    let engine = ForecastEngine::new(&model, 42);
    engine.set_tracing(true);
    let serve_cfg = ServeConfig {
        workers: 2,
        max_batch: 16,
        max_delay: Duration::from_millis(5),
        queue_capacity: 256,
    };

    // The live-race hot spot: many clients asking the same two questions
    // (leader forecast at lap 90), plus one caller with a zero time budget
    // who gets the flagged CurRank fallback instead of waiting.
    let questions: Vec<ServeRequest> = (0..12)
        .map(|i| ServeRequest::new(0, 90 + (i % 2), 2, 50))
        .chain(std::iter::once(
            ServeRequest::new(0, 95, 2, 50).with_deadline(Duration::ZERO),
        ))
        .collect();

    let (responses, metrics) = serve(&engine, &[&live], &serve_cfg, |client| {
        let pending: Vec<_> = questions
            .iter()
            .map(|&q| client.submit(q).expect("queue has room"))
            .collect();
        pending.into_iter().map(|p| p.wait()).collect::<Vec<_>>()
    });

    for (req, resp) in questions.iter().zip(&responses) {
        match resp {
            Ok(r) => {
                // Mean predicted rank of the current leader, over samples.
                let leader = r
                    .forecast
                    .samples
                    .iter()
                    .filter(|car| !car.is_empty())
                    .min_by_key(|car| car[0].last().map(|v| *v as i64).unwrap_or(i64::MAX));
                let mean_rank = leader
                    .map(|car| {
                        car.iter().filter_map(|path| path.last()).sum::<f32>() / car.len() as f32
                    })
                    .unwrap_or(f32::NAN);
                println!(
                    "origin {:>2}: leader mean rank {:>5.2} over {} samples, \
                     batch of {}{}",
                    req.origin,
                    mean_rank,
                    req.n_samples,
                    r.batch_size,
                    match r.fallback {
                        Some(reason) => format!("  [degraded: {reason:?}]"),
                        None => String::new(),
                    }
                );
            }
            Err(e) => println!("origin {:>2}: rejected ({e})", req.origin),
        }
    }

    // The scoreboard: 13 submissions, 12 of them over 2 distinct queries
    // (coalesced inside batches), 1 deadline fallback.
    println!(
        "\nmean batch size {:.2}\n{}",
        metrics.mean_batch_size(),
        metrics.render()
    );
    let t = engine.timings();
    println!(
        "engine: {} calls, {} coalesced, {} encoder reuses, {} evictions",
        t.calls, t.coalesced_requests, t.encoder_reuses, t.cache_evictions
    );

    // One exposition across every layer: training counters from the fit
    // report, engine phase counters + spans, serving scheduler metrics,
    // and the operator breakdown captured while profiling was on.
    let mut unified = report.rank_model.metrics.clone();
    unified.merge(&engine.obs_snapshot());
    unified.merge(&metrics.to_obs());
    let unified = unified.with_ops();
    println!("\n--- unified Prometheus exposition ---");
    print!("{}", unified.render_prometheus());
}
