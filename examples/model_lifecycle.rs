//! Model-lifecycle walkthrough — the full zero-downtime loop from
//! DESIGN.md §14: train a base model, **publish** it as a versioned
//! artifact, **fine-tune** online on newly arrived laps, **stage** the
//! candidate for shadow evaluation under live traffic, watch it get
//! **promoted** by an atomic hot-swap, then stage a divergent candidate
//! and watch the gate **roll it back** into quarantine. Ends with a
//! crash-recovery vignette: a torn artifact swept aside on store open.
//!
//! ```text
//! cargo run --release --example model_lifecycle
//! ```
//!
//! Nothing here blocks serving: swaps are a pointer replace behind a
//! lock-free read, in-flight batches finish on the version they loaded,
//! and a failed candidate leaves the old version serving untouched.

use ranknet::core::engine::ForecastEngine;
use ranknet::core::features::extract_sequences;
use ranknet::core::lifecycle::{
    FineTuneConfig, ModelSlot, ModelStore, OnlineFineTuner, VersionedModel,
};
use ranknet::core::ranknet::{RankNet, RankNetVariant};
use ranknet::core::RankNetConfig;
use ranknet::racesim::{simulate_race, Event, EventConfig};
use ranknet::serve::{
    serve_with_lifecycle, LifecycleConfig, LifecycleController, ServeConfig, ServeRequest,
};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let ctx = |seed| {
        extract_sequences(&simulate_race(
            &EventConfig::for_race(Event::Indy500, 2018),
            seed,
        ))
    };

    // ---- 1. Train the base model and publish it as version 1 -----------
    let cfg = RankNetConfig {
        max_epochs: 2,
        ..RankNetConfig::tiny()
    };
    println!("Training the base RankNet ...");
    let train = vec![ctx(1)];
    let (base, _) = RankNet::fit(train.clone(), train, cfg, RankNetVariant::Oracle, 33);

    let root = std::env::temp_dir().join(format!("rpf_lifecycle_demo_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = ModelStore::open(&root).expect("store opens");
    let v1 = store.publish(&base, None, "base model").expect("publish");
    store.set_current(v1.version).expect("promote");
    println!(
        "Published v{} ({} bytes, checksum {:#018x}); CURRENT -> v{}",
        v1.version, v1.bytes, v1.checksum, v1.version
    );

    // ---- 2. Fine-tune online on newly arrived laps ---------------------
    println!("\nFine-tuning on fresh laps ...");
    let mut tuner = OnlineFineTuner::new(&base, Some(v1.version), FineTuneConfig::default());
    tuner.ingest(vec![ctx(3)], vec![ctx(4)]);
    for round in 0..2 {
        let report = tuner.round().expect("fine-tune round");
        println!(
            "  round {round}: {} epochs run, val loss {:.4}",
            report.epochs_run, report.best_val_loss
        );
    }
    let v2 = tuner
        .publish(&store, "fine-tuned on laps 3-4")
        .expect("publish");
    println!(
        "Published candidate v{} (parent v{})",
        v2.version,
        v2.parent.expect("fine-tune candidates carry a parent")
    );

    // ---- 3. Shadow-evaluate and hot-swap under live traffic ------------
    // Serve from the store's CURRENT version on a versioned slot, so every
    // response carries the version that produced it.
    let (current, current_manifest) = store.load_current().expect("load current");
    let engine = ForecastEngine::with_slot(
        ModelSlot::new(VersionedModel::new(
            current_manifest.version,
            Arc::new(current),
        )),
        42,
    );
    let live_race = ctx(2);
    let serve_cfg = ServeConfig {
        workers: 2,
        max_batch: 8,
        max_delay: Duration::from_micros(300),
        queue_capacity: 256,
    };

    // Shadow every request; decide after 6 comparisons. Two fine-tune
    // rounds on unseen races genuinely move this tiny model (several rank
    // positions of drift), so the promotion gate must budget for the
    // drift the retrain was *supposed* to cause — here up to 15 positions.
    // The zero-tolerance gate below shows the other side.
    let promote_gate = LifecycleController::new(LifecycleConfig {
        shadow_sample_every: 1,
        shadow_min_samples: 6,
        max_divergence_milli: 15_000,
    })
    .with_store(ModelStore::open(&root).expect("store opens"));

    let candidate = Arc::new(store.load(v2.version).expect("load").0);
    println!("\nServing on v1 with candidate v2 in shadow ...");
    let (_, metrics) = serve_with_lifecycle(
        &engine,
        &[&live_race],
        &serve_cfg,
        &promote_gate,
        |client| {
            promote_gate.stage_candidate(&engine, v2.version, Arc::clone(&candidate));
            for i in 0..8u64 {
                let resp = client
                    .forecast(ServeRequest::new(0, 60 + i as usize, 2, 8))
                    .expect("accepted")
                    .expect("valid");
                println!(
                    "  request {i}: served on v{} (batch of {})",
                    resp.forecast.model_version, resp.batch_size
                );
            }
        },
    );
    for d in promote_gate.decisions() {
        println!("decision: {d:?}");
    }
    println!(
        "region: {} swaps, {} shadow comparisons; serving v{}",
        metrics.swaps, metrics.shadow_comparisons, metrics.model_version
    );
    assert_eq!(engine.model_version(), v2.version);

    // ---- 4. A divergent candidate is rolled back and quarantined -------
    println!("\nStaging a deliberately divergent candidate ...");
    let cfg = RankNetConfig {
        max_epochs: 1,
        ..RankNetConfig::tiny()
    };
    let other = vec![ctx(9)];
    let (divergent, _) = RankNet::fit(other.clone(), other, cfg, RankNetVariant::Oracle, 77);
    let v3 = store
        .publish(&divergent, None, "unrelated weights")
        .expect("publish");

    let rollback_gate = LifecycleController::new(LifecycleConfig {
        shadow_sample_every: 1,
        shadow_min_samples: 4,
        max_divergence_milli: 0, // zero tolerance: any drift rolls back
    })
    .with_store(ModelStore::open(&root).expect("store opens"));
    let (_, metrics) = serve_with_lifecycle(
        &engine,
        &[&live_race],
        &serve_cfg,
        &rollback_gate,
        |client| {
            rollback_gate.stage_candidate(&engine, v3.version, Arc::new(divergent.clone()));
            for i in 0..5u64 {
                let _ = client
                    .forecast(ServeRequest::new(0, 70 + i as usize, 2, 8))
                    .expect("accepted")
                    .expect("valid");
            }
        },
    );
    for d in rollback_gate.decisions() {
        println!("decision: {d:?}");
    }
    println!(
        "region: {} rollbacks; still serving v{}",
        metrics.rollbacks, metrics.model_version
    );
    assert_eq!(
        engine.model_version(),
        v2.version,
        "old version keeps serving"
    );

    // ---- 5. Crash recovery: a torn artifact is swept on open -----------
    println!("\nSimulating a crash between artifact write and manifest commit ...");
    let torn_dir = root.join("versions").join("v000099");
    std::fs::create_dir_all(&torn_dir).expect("mkdir");
    std::fs::write(torn_dir.join("model.json"), b"{\"partial\":").expect("write");
    let store = ModelStore::open(&root).expect("reopen sweeps torn artifacts");
    println!(
        "committed versions: {:?}",
        store.versions().expect("readable")
    );
    println!(
        "quarantine:         {:?}",
        store.quarantined().expect("readable")
    );

    let _ = std::fs::remove_dir_all(&root);
}
