//! Train RankNet-MLP on simulated Indy500 seasons and compare it against
//! CurRank on the held-out 2019 race — a miniature of the paper's Table V.
//!
//! ```text
//! cargo run --release --example train_ranknet
//! ```

use ranknet::core::baseline_adapters::CurRankForecaster;
use ranknet::core::eval::{eval_short_term, EvalConfig};
use ranknet::core::features::extract_sequences;
use ranknet::core::ranknet::{RankNet, RankNetVariant};
use ranknet::core::RankNetConfig;
use ranknet::racesim::{Dataset, Event, Split};

fn main() {
    // Table II's Indy500 slice: 2013-2017 train, 2018 validation, 2019 test.
    let dataset = Dataset::generate_event(Event::Indy500, 7);
    let train: Vec<_> = dataset
        .split(Event::Indy500, Split::Training)
        .iter()
        .map(|(_, r)| extract_sequences(r))
        .collect();
    let val: Vec<_> = dataset
        .split(Event::Indy500, Split::Validation)
        .iter()
        .map(|(_, r)| extract_sequences(r))
        .collect();
    let test = extract_sequences(dataset.race(Event::Indy500, 2019));

    // A reduced configuration so this example finishes in ~2 minutes;
    // `crates/bench` has the full-scale version.
    let cfg = RankNetConfig {
        max_epochs: 12,
        ..Default::default()
    };
    println!("Training RankNet-MLP (PitModel + RankModel) ...");
    let (model, report) = RankNet::fit(train, val, cfg, RankNetVariant::Mlp, 12);
    println!(
        "  rank model: {} epochs, best validation NLL {:.4}, {:.0} us/sample",
        report.rank_model.epochs_run,
        report.rank_model.best_val_loss,
        report.rank_model.us_per_sample
    );
    if let Some(pit) = &report.pit_model {
        println!(
            "  pit model:  {} epochs, best validation NLL {:.4}",
            pit.epochs_run, pit.best_val_loss
        );
    }

    let eval_cfg = EvalConfig {
        n_samples: 30,
        origin_step: 8,
        ..Default::default()
    };
    let ranknet_row = eval_short_term(&model, &test, &eval_cfg);
    let currank_row = eval_short_term(&CurRankForecaster, &test, &eval_cfg);

    println!("\nTwo-lap forecasting on Indy500-2019 (paper Table V protocol):");
    println!(
        "  {:<12} {:>8} {:>8} {:>10} {:>10}",
        "model", "Top1Acc", "MAE", "pit MAE", "90-risk"
    );
    for row in [&currank_row, &ranknet_row] {
        println!(
            "  {:<12} {:>8.2} {:>8.2} {:>10.2} {:>10.3}",
            row.model, row.all.top1_acc, row.all.mae, row.pit_covered.mae, row.all.risk90
        );
    }
    let imp = 100.0 * (currank_row.pit_covered.mae - ranknet_row.pit_covered.mae)
        / currank_row.pit_covered.mae;
    println!("\nRankNet-MLP improves pit-lap MAE by {imp:+.0}% over CurRank.");
    println!("(Train longer / stride 1 — the bench harness — for the paper-scale gains.)");
}
