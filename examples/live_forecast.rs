//! Live race forecasting — replay a race lap by lap and keep a running
//! two-lap forecast of the leader and of one tracked car, the way the
//! paper's system would sit on the IndyCar timing feed.
//!
//! ```text
//! cargo run --release --example live_forecast
//! ```

use ranknet::core::engine::ForecastEngine;
use ranknet::core::features::extract_sequences;
use ranknet::core::metrics::quantile;
use ranknet::core::ranknet::{ranks_by_sorting, RankNet, RankNetVariant};
use ranknet::core::RankNetConfig;
use ranknet::racesim::{Dataset, Event, Split};

fn main() {
    let dataset = Dataset::generate_event(Event::Indy500, 7);
    let train: Vec<_> = dataset
        .split(Event::Indy500, Split::Training)
        .iter()
        .map(|(_, r)| extract_sequences(r))
        .collect();
    let val: Vec<_> = dataset
        .split(Event::Indy500, Split::Validation)
        .iter()
        .map(|(_, r)| extract_sequences(r))
        .collect();
    let live = extract_sequences(dataset.race(Event::Indy500, 2019));

    let cfg = RankNetConfig {
        max_epochs: 10,
        ..Default::default()
    };
    println!("Training RankNet-MLP for live duty ...");
    let (model, _) = RankNet::fit(train, val, cfg, RankNetVariant::Mlp, 14);

    // Track the eventual winner from mid-race.
    let winner_slot = (0..live.sequences.len())
        .find(|&c| {
            let s = &live.sequences[c];
            s.len() == live.total_laps && *s.rank.last().unwrap() == 1.0
        })
        .expect("winner ran the full distance");
    let tracked = &live.sequences[winner_slot];
    println!("Tracking car {} (the eventual winner).\n", tracked.car_id);

    println!(
        "  {:>5} {:>12} {:>14} {:>16} {:>12}",
        "lap", "cur leader", "pred leader+2", "tracked med+2", "tracked act+2"
    );
    // The engine replaces the hand-threaded rng: draws derive from
    // (seed, race, origin), so a re-run — or a differently-threaded run —
    // reprints this table exactly.
    let engine = ForecastEngine::new(&model, 3);
    let mut leader_hits = 0usize;
    let mut calls = 0usize;
    for origin in (70..190).step_by(12) {
        // A live loop can't afford a panic mid-race: the validating API
        // returns a typed error for a bad request, and flags trajectories
        // that degraded to the CurRank fallback instead of failing.
        let forecast = match engine.try_forecast(&live, origin, 2, 20) {
            Ok(f) => f,
            Err(e) => {
                println!("  {origin:>5} request rejected: {e}");
                continue;
            }
        };
        if forecast.degraded {
            println!(
                "  {:>5} serving degraded: {} trajectorie(s) on CurRank fallback",
                origin, forecast.degraded_trajectories
            );
        }
        let samples = forecast.samples;
        let ranked = ranks_by_sorting(&samples, 1);

        // Predicted leader: most frequent rank-1 car across samples.
        let pred_leader = (0..live.sequences.len())
            .filter(|&c| !ranked[c].is_empty())
            .max_by_key(|&c| ranked[c].iter().filter(|&&r| r == 1.0).count())
            .unwrap();
        let cur_leader = (0..live.sequences.len())
            .find(|&c| {
                let s = &live.sequences[c];
                s.len() > origin - 1 && s.rank[origin - 1] == 1.0
            })
            .unwrap();
        let actual_leader = (0..live.sequences.len())
            .find(|&c| {
                let s = &live.sequences[c];
                s.len() > origin + 1 && s.rank[origin + 1] == 1.0
            })
            .unwrap();

        let med = quantile(&ranked[winner_slot], 0.5);
        println!(
            "  {:>5} {:>12} {:>14} {:>16.1} {:>12}",
            origin,
            live.sequences[cur_leader].car_id,
            live.sequences[pred_leader].car_id,
            med,
            tracked.rank[origin + 1]
        );
        calls += 1;
        if live.sequences[pred_leader].car_id == live.sequences[actual_leader].car_id {
            leader_hits += 1;
        }
    }
    println!(
        "\nLive leader prediction accuracy over the stint: {}/{} ({:.0}%)",
        leader_hits,
        calls,
        100.0 * leader_hits as f32 / calls as f32
    );

    let t = engine.timings();
    println!(
        "Engine: {} calls on {} thread(s) — encode {:.1}ms, covariates {:.1}ms, \
         decode {:.1}ms ({:.0} trajectories/s)",
        t.calls,
        engine.threads(),
        t.encode.as_secs_f64() * 1e3,
        t.covariates.as_secs_f64() * 1e3,
        t.decode.as_secs_f64() * 1e3,
        t.trajectories_per_sec()
    );
    println!(
        "Health: {} rejected request(s), {} degraded trajectorie(s)",
        t.rejected_requests, t.degraded_trajectories
    );
}
