//! Pit-strategy exploration — the use case the paper's conclusion points
//! at: "providing probabilistic forecasting that enables racing strategy
//! optimizations".
//!
//! We train a RankNet-Oracle model, then, for one car mid-race, compare the
//! forecast rank distribution under *different hypothetical pit plans* by
//! editing the future covariates the decoder sees. Because the Oracle
//! variant conditions on future race status, it answers "what if we pit on
//! lap L?" directly.
//!
//! ```text
//! cargo run --release --example race_strategy
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use ranknet::core::features::extract_sequences;
use ranknet::core::instances::Covariates;
use ranknet::core::metrics::quantile;
use ranknet::core::rank_model::{oracle_covariates, CovariateFuture};
use ranknet::core::ranknet::{ranks_by_sorting, RankNet, RankNetVariant};
use ranknet::core::RankNetConfig;
use ranknet::racesim::{Dataset, Event, Split};

fn main() {
    let dataset = Dataset::generate_event(Event::Indy500, 7);
    let train: Vec<_> = dataset
        .split(Event::Indy500, Split::Training)
        .iter()
        .map(|(_, r)| extract_sequences(r))
        .collect();
    let val: Vec<_> = dataset
        .split(Event::Indy500, Split::Validation)
        .iter()
        .map(|(_, r)| extract_sequences(r))
        .collect();
    let test = extract_sequences(dataset.race(Event::Indy500, 2019));

    let cfg = RankNetConfig {
        max_epochs: 12,
        ..Default::default()
    };
    println!("Training RankNet-Oracle (conditions on future race status) ...");
    let (model, _) = RankNet::fit(train, val, cfg.clone(), RankNetVariant::Oracle, 12);

    // Pick a car deep into its stint at lap 80 — a pit decision is imminent.
    let origin = 80usize;
    let horizon = 10usize;
    let car = (0..test.sequences.len())
        .filter(|&c| test.sequences[c].len() > origin + horizon)
        .max_by(|&a, &b| {
            test.sequences[a].pit_age[origin - 1]
                .partial_cmp(&test.sequences[b].pit_age[origin - 1])
                .unwrap()
        })
        .expect("no candidate car");
    let seq = &test.sequences[car];
    println!(
        "\nCar {}: lap {}, rank {}, pit age {} laps — when should it stop?",
        seq.car_id,
        seq.laps[origin - 1],
        seq.rank[origin - 1],
        seq.pit_age[origin - 1]
    );

    // Baseline future: ground truth for everyone else, and we will overwrite
    // OUR car's plan with each scenario.
    let base = oracle_covariates(&test, origin, horizon, cfg.prediction_len);

    println!(
        "\n  {:>16} {:>12} {:>10} {:>10}",
        "scenario", "median rank", "q10", "q90"
    );
    for pit_in in [2usize, 5, 8] {
        let mut cov: CovariateFuture = base.clone();
        // Rewrite this car's future: one stop, `pit_in` laps from now.
        let mut age = seq.pit_age[origin - 1];
        cov.rows[car] = (0..horizon)
            .map(|s| {
                let pit = s == pit_in;
                let c = Covariates {
                    lap_status: if pit { 1.0 } else { 0.0 },
                    pit_age: age,
                    shift_lap_status: if s + cfg.prediction_len == pit_in {
                        1.0
                    } else {
                        0.0
                    },
                    ..cov.rows[car][s]
                };
                if pit {
                    age = 0.0;
                } else {
                    age += 1.0;
                }
                c
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(9);
        let samples = model
            .rank_model
            .forecast(&test, &cov, origin, horizon, 40, &mut rng);
        let ranked = ranks_by_sorting(&samples, horizon - 1);
        let med = quantile(&ranked[car], 0.5);
        let q10 = quantile(&ranked[car], 0.1);
        let q90 = quantile(&ranked[car], 0.9);
        println!(
            "  {:>16} {:>12.1} {:>10.1} {:>10.1}",
            format!("pit in {pit_in} laps"),
            med,
            q10,
            q90
        );
    }
    println!(
        "\nActual outcome at lap {}: rank {}",
        seq.laps[origin + horizon - 1],
        seq.rank[origin + horizon - 1]
    );
    println!("A team can compare these distributions to time the stop.");
}
