//! Network-edge walkthrough — put the HTTP/1.1 gateway in front of the
//! serving layer, then talk to it the way an operator would: POST a JSON
//! forecast request, scrape `/metrics`, and tail a race's SSE lap stream.
//!
//! ```text
//! cargo run --release --example gateway_demo
//! ```
//!
//! The demo drives its own requests over real loopback sockets, but the
//! gateway speaks plain HTTP/1.1 — while it runs you could equally point
//! `curl` at the printed address. Every forecast answered over the wire is
//! bit-identical to a direct `ForecastEngine` call: the JSON codec writes
//! floats as shortest-round-trip decimals, so the network edge moves
//! time, never bits (DESIGN.md §11, §16).

use ranknet::core::engine::ForecastEngine;
use ranknet::core::features::extract_sequences;
use ranknet::core::ranknet::{RankNet, RankNetVariant};
use ranknet::core::RankNetConfig;
use ranknet::gateway::{routes, serve_http, GatewayConfig, HttpClient, LapBus};
use ranknet::racesim::{simulate_race, Event, EventConfig};
use ranknet::serve::{serve, ServeConfig, ServeRequest};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn main() {
    // A quickly trained model and one unseen race to serve forecasts for.
    let ctx = |seed| {
        extract_sequences(&simulate_race(
            &EventConfig::for_race(Event::Indy500, 2018),
            seed,
        ))
    };
    let cfg = RankNetConfig {
        max_epochs: 2,
        ..RankNetConfig::tiny()
    };
    println!("Training a small RankNet ...");
    let train = vec![ctx(1)];
    let (model, _) = RankNet::fit(train.clone(), train, cfg, RankNetVariant::Oracle, 33);
    let live = ctx(2);

    let engine = ForecastEngine::new(&model, 42);
    let serve_cfg = ServeConfig {
        workers: 2,
        max_batch: 16,
        max_delay: Duration::from_millis(5),
        queue_capacity: 256,
    };

    // `/metrics` merges the engine's registry into the gateway's own, so
    // one scrape shows the whole stack the way a real deployment would.
    let engine_ref = &engine;
    let source = move |own: ranknet::obs::MetricsSnapshot| {
        let mut merged = engine_ref.obs_snapshot();
        merged.merge(&own);
        merged
    };

    let bus = LapBus::new();
    let gw_cfg = GatewayConfig::default();
    let ((), _serve_metrics) = serve(&engine, &[&live], &serve_cfg, |client| {
        let ((), _gw_metrics) = serve_http(client, 1, &bus, &gw_cfg, Some(&source), |gw| {
            let addr = gw.addr();
            println!("\ngateway listening on http://{addr}");
            println!("try it yourself while this demo runs:");
            println!(
                "  curl -s http://{addr}/forecast -d \
                 '{{\"race\":0,\"origin\":90,\"horizon\":2,\"n_samples\":20}}'"
            );
            println!("  curl -s http://{addr}/metrics");
            println!("  curl -sN http://{addr}/races/0/stream");

            // --- POST /forecast ------------------------------------------
            let mut http =
                HttpClient::connect(addr, Duration::from_secs(5)).expect("gateway on loopback");
            let req = ServeRequest::new(0, 90, 2, 20);
            let resp = http
                .post_json("/forecast", &routes::render_forecast_body(&req))
                .expect("gateway answers");
            println!("\nPOST /forecast -> {}", resp.status);
            let served = routes::parse_forecast_response(&resp.body_str())
                .expect("well-formed forecast body");
            println!(
                "  {} cars forecast from lap {} over {} laps, batch of {}",
                served.forecast.samples.len(),
                req.origin,
                req.horizon,
                served.batch_size
            );

            // A malformed request maps to a typed 400, not a dropped
            // connection.
            let resp = http
                .post_json("/forecast", "{\"race\":0}")
                .expect("gateway answers");
            println!("POST /forecast (missing fields) -> {}", resp.status);

            // --- GET /races/0/stream -------------------------------------
            // Tail the lap stream from a raw socket while the main thread
            // publishes per-lap payloads rendered from live forecasts.
            let tail = std::thread::spawn(move || {
                let mut sub = TcpStream::connect(addr).expect("connect");
                sub.set_read_timeout(Some(Duration::from_secs(5)))
                    .expect("timeout");
                sub.write_all(b"GET /races/0/stream HTTP/1.1\r\nHost: demo\r\n\r\n")
                    .expect("subscribe");
                let mut seen = 0usize;
                let mut buf = Vec::new();
                let mut chunk = [0u8; 1024];
                while seen < 3 {
                    match sub.read(&mut chunk) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    }
                    while let Some(pos) = buf.windows(2).position(|w| w == b"\n\n") {
                        let frame = String::from_utf8_lossy(&buf[..pos]).to_string();
                        buf.drain(..pos + 2);
                        if let Some(data) = frame.lines().find_map(|l| l.strip_prefix("data: ")) {
                            println!("  SSE <- {data}");
                            seen += 1;
                        }
                    }
                }
                seen
            });
            for lap in [92u64, 94, 96] {
                let forecast = engine_ref
                    .try_forecast_keyed(0, &live, lap as usize, 2, 20)
                    .expect("valid origin");
                bus.publish(routes::lap_payload(0, lap, &forecast));
                std::thread::sleep(Duration::from_millis(30));
            }
            let seen = tail.join().expect("tail thread");
            println!("GET /races/0/stream -> {seen} lap updates");

            // --- GET /metrics --------------------------------------------
            let resp = http.get("/metrics").expect("gateway answers");
            println!("\nGET /metrics -> {} (excerpt)", resp.status);
            for line in resp
                .body_str()
                .lines()
                .filter(|l| {
                    l.starts_with("rpf_gateway_requests")
                        || l.starts_with("rpf_gateway_responses")
                        || l.starts_with("rpf_gateway_sse_events")
                        || l.starts_with("rpf_engine_calls")
                })
                .take(8)
            {
                println!("  {line}");
            }
        })
        .expect("gateway binds loopback");
    });
    println!("\ngateway drained; every accepted request was answered.");
}
