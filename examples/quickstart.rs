//! Quickstart: simulate a race, look at the data, make a naive forecast.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the five-minute tour of the library: the race simulator (the
//! substitute for the paper's IndyCar timing logs), the Table I feature
//! extraction, and the CurRank baseline that every model in the paper is
//! measured against.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ranknet::core::baseline_adapters::{CurRankForecaster, Forecaster};
use ranknet::core::eval::{eval_short_term, EvalConfig};
use ranknet::core::features::extract_sequences;
use ranknet::racesim::{simulate_race, Event, EventConfig};

fn main() {
    // 1. Simulate the Indy500: 33 cars, 200 laps, pit stops, cautions.
    let cfg = EventConfig::for_race(Event::Indy500, 2019);
    let race = simulate_race(&cfg, 42);
    println!(
        "Simulated {}-{}: {} records",
        cfg.event.name(),
        cfg.year,
        race.records.len()
    );
    println!("Winner: car {}", race.winner());
    println!("Caution laps: {}", race.caution_lap_count());

    // 2. The raw data looks like the paper's Fig 1a.
    println!("\nFirst laps of the timing feed:");
    println!("  Rank CarId  Lap   LapTime  BehindLeader LapStatus TrackStatus");
    for rec in race.records.iter().filter(|r| r.lap == 31).take(5) {
        println!("  {}", rec.display_row());
    }

    // 3. Featurize into the Table I feature set.
    let ctx = extract_sequences(&race);
    let seq = &ctx.sequences[0];
    println!(
        "\nCar {} features at lap 40: rank={} lap_time={:.1}s pit_age={} caution_laps={}",
        seq.car_id, seq.rank[39], seq.lap_time[39], seq.pit_age[39], seq.caution_laps[39]
    );

    // 4. Forecast with the naive baseline and score it the paper's way.
    let mut rng = StdRng::seed_from_u64(1);
    let samples = CurRankForecaster.forecast(&ctx, 100, 2, 1, &mut rng);
    let with_forecast = samples.iter().filter(|s| !s.is_empty()).count();
    println!("\nCurRank forecast at lap 100 covers {with_forecast} cars");

    let row = eval_short_term(&CurRankForecaster, &ctx, &EvalConfig::fast());
    println!(
        "CurRank two-lap forecast: Top1Acc {:.2}, MAE {:.2} (normal laps {:.2}, pit laps {:.2})",
        row.all.top1_acc, row.all.mae, row.normal.mae, row.pit_covered.mae
    );
    println!("\nPit-stop laps are where forecasting is hard — that is what RankNet fixes.");
    println!("Next: run `cargo run --release --example train_ranknet`.");
}
